package core

import (
	"fmt"

	"deact/internal/broker"
	"deact/internal/cpu"
	"deact/internal/fabric"
	"deact/internal/memdev"
	"deact/internal/node"
	"deact/internal/sim"
)

// Snapshot is a deep copy of a System's mutable simulation state, captured
// at the warmup/measure boundary — the one quiescent point where the event
// queue is empty and every core has retired, so the whole system reduces to
// plain data: cache tags and LRU rank words, TLB/STU/ACM contents,
// translation-cache lines, the page-table arenas, the broker's ownership
// and free-pool state, per-node direct-backing tables, core counters and
// generator stream positions, RNG draw counts, device and link calendars,
// and the engine clock.
//
// A snapshot shares no storage with the system it came from (or with any
// system it is restored into), so one warmed-up prefix can fork many
// measured runs: each fork restores the snapshot into a freshly built
// System and proceeds bit-identically to a cold run that simulated the
// warmup itself. Restoring is guarded by the config's WarmupFingerprint.
type Snapshot struct {
	// warmFP is Config.WarmupFingerprint() of the captured system: the
	// identity of everything that shaped the state, which is every exported
	// field except the measured-phase length.
	warmFP string

	engine sim.EngineState
	fab    fabric.State
	fam    memdev.State
	brk    broker.ShardedState
	nodes  []node.State
	cores  [][]cpu.State
}

// WarmupFingerprint returns the fingerprint of the configuration the
// snapshot was captured under. Restore accepts the snapshot only into a
// system whose config fingerprints equal.
func (sn *Snapshot) WarmupFingerprint() string { return sn.warmFP }

// Snapshot captures the system into a fresh Snapshot. The system must be
// quiescent — in practice that means calling it from a WithWarmupHook
// callback, which Run invokes exactly at the warmup/measure boundary;
// capturing mid-flight panics (the in-flight events cannot be copied).
func (s *System) Snapshot() *Snapshot {
	sn := &Snapshot{}
	s.SnapshotInto(sn, nil)
	return sn
}

// SnapshotInto is Snapshot capturing into an existing sn, reusing its
// backing storage where it fits and drawing large copies from pool (nil
// allocates normally). Recycling snapshots this way makes repeated captures
// across a sweep allocation-free.
func (s *System) SnapshotInto(sn *Snapshot, pool *SystemPool) {
	a := pool.arenaOf()
	sn.warmFP = s.cfg.WarmupFingerprint()
	s.engine.CaptureState(&sn.engine)
	s.fab.CaptureState(&sn.fab)
	s.fam.CaptureState(&sn.fam)
	s.brk.CaptureState(a, &sn.brk)
	if cap(sn.nodes) < len(s.nodes) {
		grown := make([]node.State, len(s.nodes))
		copy(grown, sn.nodes)
		sn.nodes = grown
	}
	sn.nodes = sn.nodes[:len(s.nodes)]
	for i, n := range s.nodes {
		n.CaptureState(a, &sn.nodes[i])
	}
	if cap(sn.cores) < len(s.cores) {
		grown := make([][]cpu.State, len(s.cores))
		copy(grown, sn.cores)
		sn.cores = grown
	}
	sn.cores = sn.cores[:len(s.cores)]
	for ni, row := range s.cores {
		if cap(sn.cores[ni]) < len(row) {
			sn.cores[ni] = make([]cpu.State, len(row))
		}
		sn.cores[ni] = sn.cores[ni][:len(row)]
		for ci, c := range row {
			c.CaptureState(&sn.cores[ni][ci])
		}
	}
}

// Restore rewinds the system to sn's warmup/measure boundary. The system
// must be freshly built from a config whose WarmupFingerprint matches the
// captured one; everything mutable is overwritten, nothing is aliased, and
// a subsequent measured phase is bit-identical to one run on the system the
// snapshot was captured from. Run calls this automatically for systems
// built WithSnapshot.
func (s *System) Restore(sn *Snapshot) error {
	if got := s.cfg.WarmupFingerprint(); got != sn.warmFP {
		return fmt.Errorf("core: Restore: config warmup fingerprint %s does not match snapshot's %s", got, sn.warmFP)
	}
	if len(sn.nodes) != len(s.nodes) || len(sn.cores) != len(s.cores) {
		return fmt.Errorf("core: Restore: system shape mismatch")
	}
	s.engine.RestoreState(&sn.engine)
	s.fab.RestoreState(&sn.fab)
	s.fam.RestoreState(&sn.fam)
	if err := s.brk.RestoreState(&sn.brk); err != nil {
		return err
	}
	for i, n := range s.nodes {
		n.RestoreState(&sn.nodes[i])
	}
	for ni, row := range s.cores {
		for ci, c := range row {
			c.RestoreState(&sn.cores[ni][ci])
		}
	}
	return nil
}

// Release returns the snapshot's large copies to pool for reuse by later
// captures (or system constructions). The snapshot must not be restored
// from afterwards. A nil pool is a no-op.
func (sn *Snapshot) Release(pool *SystemPool) {
	a := pool.arenaOf()
	if a == nil {
		return
	}
	sn.brk.Release(a)
	for i := range sn.nodes {
		sn.nodes[i].Release(a)
	}
}
