package core

import (
	"context"
	"strings"
	"testing"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/broker"
)

// TestSystemMigrationEndToEnd drives the §VI migration flow through the
// public API: run a job, migrate it, verify access control flips and the
// node-side caches were shot down.
func TestSystemMigrationEndToEnd(t *testing.T) {
	cfg := quickConfig(DeACTN, "pf")
	cfg.CoresPerNode = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	brk := sys.Broker()
	if brk.OwnedPages(1) == 0 {
		t.Fatal("job owns nothing after running")
	}

	// Find a page the job owns.
	tbl, err := brk.NodeTable(1)
	if err != nil {
		t.Fatal(err)
	}
	var sample addr.FPage
	found := false
	for np := uint64(0); np < 1<<21 && !found; np++ {
		if fp, ok := tbl.Lookup(np); ok {
			sample, found = addr.FPage(fp), true
		}
	}
	if !found {
		t.Fatal("no mapped page found")
	}

	dirty := sys.Node(0).FlushTranslations()
	if dirty == 0 {
		t.Fatal("translation cache was empty after a run")
	}
	cost, err := brk.MigrateJob(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cost.ACMRewrites == 0 || cost.TranslationsMoved == 0 {
		t.Fatalf("migration cost empty: %+v", cost)
	}
	if d := brk.Meta().Check(sample, 1, acm.PermR); d.Allowed {
		t.Fatal("old node still allowed after migration")
	}
	if d := brk.Meta().Check(sample, 7, acm.PermR); !d.Allowed {
		t.Fatal("new node denied after migration")
	}
}

// TestLogicalIDMigrationAvoidsACMWrites contrasts §VI's two migration
// mechanisms: physical-ID migration rewrites one ACM entry per page, while
// logical-ID rebinding touches none.
func TestLogicalIDMigrationAvoidsACMWrites(t *testing.T) {
	cfg := quickConfig(DeACTN, "pf")
	cfg.CoresPerNode = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	brk := sys.Broker()

	// With logical IDs, the ACM stores the job's logical ID; moving the
	// job is a directory rebind.
	writesBefore := brk.Meta().Writes()
	ld := broker.NewLogicalDirectory()
	if err := ld.Assign(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ld.Rebind(1, 5); err != nil {
		t.Fatal(err)
	}
	if brk.Meta().Writes() != writesBefore {
		t.Fatal("logical rebind touched the metadata store")
	}
	if p, ok := ld.PhysicalOf(1); !ok || p != 5 {
		t.Fatal("rebind lost the job")
	}
}

// TestExhaustionSurfacesAsError: a FAM pool too small for the workload
// must produce a diagnosable error, not a panic or silent wrap-around.
func TestExhaustionSurfacesAsError(t *testing.T) {
	cfg := quickConfig(DeACTN, "sssp")
	// Shrink the pool below the footprint.
	cfg.Layout.FAMSize = 32 << 20
	cfg.Layout.FAMZoneSize = 24 << 20
	cfg.Layout.DRAMSize = 8 << 20
	_, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("exhausted pool did not error")
	}
	if !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDenialAbortsDeterministically: corrupt a translation mid-run through
// the system accessors and confirm the run aborts with a denial.
func TestDenialAbortsDeterministically(t *testing.T) {
	cfg := quickConfig(DeACTN, "pf")
	cfg.CoresPerNode = 1
	cfg.WarmupInstructions = 10_000
	cfg.MeasureInstructions = 10_000
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Victim page owned by a foreign node.
	victim, err := sys.Broker().AllocatePage(9)
	if err != nil {
		t.Fatal(err)
	}
	// Forge translations for a swath of FAM-zone node pages.
	tr := sys.Node(0).Translator()
	base := cfg.Layout.FAMZoneBase().Page()
	for i := uint64(0); i < 4096; i++ {
		tr.Corrupt(base+addr.NPPage(i), victim)
	}
	_, err = sys.Run(context.Background())
	if err == nil {
		t.Fatal("run completed despite forged translations to foreign data")
	}
	if !strings.Contains(err.Error(), "denied") {
		t.Fatalf("unexpected error: %v", err)
	}
}
