package core

import (
	"context"
	"fmt"

	"deact/internal/broker"
	"deact/internal/cpu"
	"deact/internal/fabric"
	"deact/internal/memdev"
	"deact/internal/node"
	"deact/internal/sim"
	"deact/internal/stu"
	"deact/internal/translator"
	"deact/internal/workload"
)

// System is one fully assembled FAM system: a shared broker, fabric and
// FAM pool, with Nodes compute nodes each running the configured benchmark
// on CoresPerNode cores.
type System struct {
	cfg    Config
	engine *sim.Engine
	brk    *broker.Broker
	fab    *fabric.Fabric
	fam    *memdev.Device
	nodes  []*node.Node
	cores  [][]*cpu.Core
}

// NewSystem builds a system from cfg.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := workload.Get(cfg.Benchmark)
	if err != nil {
		return nil, err
	}

	s := &System{cfg: cfg, engine: sim.NewEngine()}
	s.brk, err = broker.New(cfg.Layout, cfg.Seed)
	if err != nil {
		return nil, err
	}
	s.fab = fabric.New(fabric.Config{Latency: cfg.FabricLatency, PacketTime: cfg.FabricPacketTime})
	s.fam = memdev.New(cfg.FAMCfg)

	total := cfg.WarmupInstructions + cfg.MeasureInstructions
	for ni := 0; ni < cfg.Nodes; ni++ {
		// Node IDs start at 1; the broker reserves 0 for itself.
		n, err := node.New(cfg.nodeConfig(uint16(ni+1)), s.brk, s.fab, s.fam)
		if err != nil {
			return nil, err
		}
		s.nodes = append(s.nodes, n)
		var row []*cpu.Core
		for ci := 0; ci < cfg.CoresPerNode; ci++ {
			gen, err := workload.NewGenerator(prof, cfg.Seed+int64(ni)*100+int64(ci))
			if err != nil {
				return nil, err
			}
			c, err := cpu.New(cpu.Config{
				ID: ci, CycleTime: cfg.CycleTime, IssueWidth: cfg.IssueWidth,
				MaxOutstanding: cfg.MaxOutstanding, Instructions: total,
			}, gen, n.Access)
			if err != nil {
				return nil, err
			}
			row = append(row, c)
		}
		s.cores = append(s.cores, row)
	}
	// Bind the engine clock into every contended resource: calendars prune
	// themselves against the engine's current time (no future access chain
	// can start before it), keeping Acquire O(1) amortized for arbitrarily
	// long runs.
	s.fab.Bind(s.engine)
	s.fam.Bind(s.engine)
	for _, n := range s.nodes {
		n.Bind(s.engine)
	}
	return s, nil
}

// Broker exposes the system broker (examples: shared pages, migration).
func (s *System) Broker() *broker.Broker { return s.brk }

// Node returns node i (0-based).
func (s *System) Node(i int) *node.Node { return s.nodes[i] }

// Nodes returns the node count.
func (s *System) Nodes() int { return len(s.nodes) }

// Engine returns the simulation engine.
func (s *System) Engine() *sim.Engine { return s.engine }

// snapshot captures every counter the Result diffing needs.
type snapshot struct {
	time          sim.Time
	instrs        uint64
	memOps        uint64
	nodes         []node.Stats
	stus          []stu.Stats
	trs           []translator.Stats
	famReads      uint64
	famWrites     uint64
	l3Misses      uint64
	fabricPackets uint64
}

func (s *System) snap() snapshot {
	sn := snapshot{
		time:          s.engine.Now(),
		famReads:      s.fam.Reads(),
		famWrites:     s.fam.Writes(),
		fabricPackets: s.fab.Packets(),
	}
	for ni, n := range s.nodes {
		sn.nodes = append(sn.nodes, n.Stats())
		if st := n.STU(); st != nil {
			sn.stus = append(sn.stus, st.Stats())
		} else {
			sn.stus = append(sn.stus, stu.Stats{})
		}
		if tr := n.Translator(); tr != nil {
			sn.trs = append(sn.trs, tr.Stats())
		} else {
			sn.trs = append(sn.trs, translator.Stats{})
		}
		sn.l3Misses += n.Hierarchy().L3Cache().Misses()
		for _, c := range s.cores[ni] {
			sn.instrs += c.Instructions()
			sn.memOps += c.MemOps()
		}
	}
	return sn
}

// ctxStride is the simulated-time slice between cooperative-cancellation
// checks while the engine drains. Coarse enough to be free (a run covers
// thousands of strides' worth of events between wall-clock milliseconds),
// fine enough that cancelling a multi-minute report run aborts the
// in-flight simulations in well under a second of wall time.
const ctxStride = 5 * sim.Microsecond

// runPhase drains the engine and verifies every core retired cleanly. The
// engine runs in ctxStride slices of simulated time with a cancellation
// check between slices; slicing dispatches exactly the same events in the
// same order as one uncancelled drain, so results stay byte-identical.
func (s *System) runPhase(ctx context.Context) error {
	for s.engine.Pending() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.engine.Run(s.engine.Now() + ctxStride)
	}
	for ni, row := range s.cores {
		for ci, c := range row {
			if err := c.Err(); err != nil {
				return fmt.Errorf("node %d core %d: %w", ni+1, ci, err)
			}
			if !c.Done() {
				return fmt.Errorf("node %d core %d: engine drained before retirement", ni+1, ci)
			}
		}
	}
	return nil
}

// Run executes the warmup phase (if configured) and then the measured
// phase, returning steady-state metrics. Cancelling ctx aborts the
// simulation at the next stride boundary and returns ctx.Err().
func (s *System) Run(ctx context.Context) (Result, error) {
	// Phase 1: warmup. Cores are built with the total budget; we trim it
	// to the warmup length, run, then extend for measurement.
	warm := s.cfg.WarmupInstructions
	if warm > 0 {
		for _, row := range s.cores {
			for _, c := range row {
				c.SetBudget(warm)
			}
		}
		for _, row := range s.cores {
			for _, c := range row {
				c.Start(s.engine)
			}
		}
		if err := s.runPhase(ctx); err != nil {
			return Result{}, err
		}
	}
	before := s.snap()

	for _, row := range s.cores {
		for _, c := range row {
			c.SetBudget(warm + s.cfg.MeasureInstructions)
			c.Start(s.engine)
		}
	}
	if err := s.runPhase(ctx); err != nil {
		return Result{}, err
	}
	after := s.snap()
	return s.cfg.buildResult(before, after), nil
}

// Run builds and runs a system in one call. ctx cancellation is observed
// cooperatively inside the event loop (see System.Run).
func Run(ctx context.Context, cfg Config) (Result, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.Run(ctx)
}
