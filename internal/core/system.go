package core

import (
	"context"
	"fmt"

	"deact/internal/arena"
	"deact/internal/broker"
	"deact/internal/cpu"
	"deact/internal/fabric"
	"deact/internal/memdev"
	"deact/internal/node"
	"deact/internal/sim"
	"deact/internal/stu"
	"deact/internal/trace"
	"deact/internal/translator"
	"deact/internal/workload"
)

// SystemPool recycles the large construction-time allocations of a System
// — cache line arrays, page-table arenas, the broker's owner table, ACM
// chunk slabs, translator lines, OS backing tables (~2.5MB zeroed per run)
// — across the hundreds of runs of a sweep: build with
// NewSystem(cfg, WithPool(pool)), run, then Recycle, and the next
// same-shaped system reuses the memory,
// clearing instead of reallocating. Results are byte-identical to unpooled
// runs (recycled buffers are zeroed on reuse; the golden-report CI job
// holds this).
//
// A pool is not safe for concurrent use: give each concurrently running
// simulation its own (the experiments Runner keeps one per worker slot).
// A nil *SystemPool is valid everywhere and means "allocate normally".
type SystemPool struct {
	a *arena.Arena
}

// NewSystemPool returns an empty pool.
func NewSystemPool() *SystemPool {
	return &SystemPool{a: arena.New()}
}

// arenaOf unwraps the pool's arena, tolerating a nil pool.
func (p *SystemPool) arenaOf() *arena.Arena {
	if p == nil {
		return nil
	}
	return p.a
}

// RunOption configures how a System is built and run. Options compose:
// core.Run(ctx, cfg, WithPool(pool), WithSnapshot(snap)) builds a pooled
// system and forks it from a warmup snapshot instead of simulating the
// warmup phase again.
type RunOption func(*runOptions)

type runOptions struct {
	pool        *SystemPool
	snap        *Snapshot
	afterWarmup func(*System)
	trace       *trace.Trace
	recorder    *trace.Recorder
}

// WithPool draws the system's large backing arrays from pool (nil allocates
// normally). After the run, Recycle hands the memory back for the pool's
// next construction.
func WithPool(pool *SystemPool) RunOption {
	return func(o *runOptions) { o.pool = pool }
}

// WithSnapshot forks the run from snap instead of simulating the warmup
// phase: Run restores the system to snap's warmup/measure boundary and
// proceeds directly to measurement. The snapshot must come from a config
// with the same WarmupFingerprint; the forked run's Result is bit-identical
// to a cold run's. The snapshot is read-only here and may fork any number
// of runs, concurrently or not.
func WithSnapshot(snap *Snapshot) RunOption {
	return func(o *runOptions) { o.snap = snap }
}

// WithWarmupHook calls fn at the warmup/measure boundary, after the warmup
// phase has fully drained and before measurement starts — the one point
// where the system is quiescent and Snapshot is legal. The experiments
// Runner uses it to capture the shared warmup prefix once per sweep group.
func WithWarmupHook(fn func(*System)) RunOption {
	return func(o *runOptions) { o.afterWarmup = fn }
}

// WithTrace replays t instead of synthesizing workloads: core i consumes
// trace stream i verbatim (tenant tags re-stamped from cfg). The config
// must carry cfg.TraceID == t.ID() — replay runs fingerprint per trace —
// and the trace must have exactly Nodes×CoresPerNode streams. Replay
// sources are snapshot/fork-compatible, so WithSnapshot and the shared
// warmup path compose with replay.
func WithTrace(t *trace.Trace) RunOption {
	return func(o *runOptions) { o.trace = t }
}

// WithTraceRecorder taps every core's workload source so rec captures the
// exact Op stream the run consumed (stream i = global core i). Recording
// changes nothing about the run itself; encode or save rec afterwards. A
// recording run cannot be snapshotted or replayed at the same time.
func WithTraceRecorder(rec *trace.Recorder) RunOption {
	return func(o *runOptions) { o.recorder = rec }
}

// System is one fully assembled FAM system: a shared broker, fabric and
// FAM pool, with Nodes compute nodes each running the configured benchmark
// on CoresPerNode cores.
type System struct {
	cfg    Config
	engine *sim.Engine
	brk    broker.Sharded
	fab    *fabric.Fabric
	fam    *memdev.Device
	nodes  []*node.Node
	cores  [][]*cpu.Core

	restoreFrom *Snapshot
	afterWarmup func(*System)
}

// NewSystem builds a system from cfg, applying any options.
func NewSystem(cfg Config, opts ...RunOption) (*System, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	return newSystem(cfg, o)
}

func newSystem(cfg Config, o runOptions) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, err := workload.Get(cfg.Benchmark)
	if err != nil {
		return nil, err
	}
	// The noisy-neighbor mix swaps tenant 0's workload; all other tenants
	// run the steady benchmark.
	noisyProf := prof
	if cfg.NoisyBenchmark != "" {
		if noisyProf, err = workload.Get(cfg.NoisyBenchmark); err != nil {
			return nil, err
		}
	}
	a := o.pool.arenaOf()

	totalCores := cfg.Nodes * cfg.CoresPerNode
	switch {
	case o.trace != nil && o.recorder != nil:
		return nil, fmt.Errorf("core: cannot record and replay a trace in the same run")
	case o.trace == nil && cfg.TraceID != "":
		return nil, fmt.Errorf("core: Config.TraceID %q set but no trace supplied (core.WithTrace)", cfg.TraceID)
	case o.trace != nil && cfg.TraceID == "":
		return nil, fmt.Errorf("core: replaying a trace requires Config.TraceID = trace ID %q", o.trace.ID())
	case o.trace != nil && cfg.TraceID != o.trace.ID():
		return nil, fmt.Errorf("core: Config.TraceID %q does not match trace ID %q", cfg.TraceID, o.trace.ID())
	case o.trace != nil && o.trace.Streams() != totalCores:
		return nil, fmt.Errorf("core: trace has %d streams, run has %d cores (Nodes×CoresPerNode)",
			o.trace.Streams(), totalCores)
	case o.recorder != nil && o.recorder.Streams() != totalCores:
		return nil, fmt.Errorf("core: recorder has %d streams, run has %d cores (Nodes×CoresPerNode)",
			o.recorder.Streams(), totalCores)
	}

	s := &System{cfg: cfg, engine: sim.NewEngine(),
		restoreFrom: o.snap, afterWarmup: o.afterWarmup}
	s.brk, err = broker.NewShardedInArena(a, cfg.Layout, cfg.Seed, cfg.brokerShards())
	if err != nil {
		return nil, err
	}
	s.fab = fabric.New(fabric.Config{Latency: cfg.FabricLatency, PacketTime: cfg.FabricPacketTime})
	s.fam = memdev.New(cfg.FAMCfg)

	total := cfg.WarmupInstructions + cfg.MeasureInstructions
	for ni := 0; ni < cfg.Nodes; ni++ {
		// Node IDs start at 1; the broker reserves 0 for itself. Each node
		// is served by its shard of the (possibly unsharded) broker.
		id := uint16(ni + 1)
		n, err := node.NewInArena(a, cfg.nodeConfig(id), s.brk.For(id), s.fab, s.fam)
		if err != nil {
			return nil, err
		}
		s.nodes = append(s.nodes, n)
		var row []*cpu.Core
		for ci := 0; ci < cfg.CoresPerNode; ci++ {
			tenant := cfg.tenantFor(ni, ci)
			globalCore := ni*cfg.CoresPerNode + ci
			var src workload.Source
			if o.trace != nil {
				src = o.trace.Source(globalCore)
			} else {
				p := prof
				if tenant == 0 && cfg.NoisyBenchmark != "" {
					p = noisyProf
				}
				// The config-level pattern override rides on the profile; ""
				// leaves the catalog profile untouched (the skew model).
				p.Pattern = cfg.Pattern
				p.PatternDegree = cfg.PatternDegree
				src, err = workload.NewSource(p, cfg.Seed+int64(ni)*100+int64(ci))
				if err != nil {
					return nil, err
				}
			}
			src.SetTenant(tenant)
			if o.recorder != nil {
				src = o.recorder.Tap(globalCore, src)
			}
			c, err := cpu.New(cpu.Config{
				ID: ci, CycleTime: cfg.CycleTime, IssueWidth: cfg.IssueWidth,
				MaxOutstanding: cfg.MaxOutstanding, Instructions: total,
				OoO:        cfg.CoreModel == CoreOoO,
				WindowSize: cfg.WindowSize, SchedulerLatency: cfg.SchedulerLatency,
			}, src, n.Access)
			if err != nil {
				return nil, err
			}
			row = append(row, c)
		}
		s.cores = append(s.cores, row)
	}
	// Bind the engine clock into every contended resource: calendars prune
	// themselves against the engine's current time (no future access chain
	// can start before it), keeping Acquire O(1) amortized for arbitrarily
	// long runs.
	s.fab.Bind(s.engine)
	s.fam.Bind(s.engine)
	for _, n := range s.nodes {
		n.Bind(s.engine)
	}
	return s, nil
}

// Broker exposes the system broker (examples: shared pages, migration). In
// an unsharded configuration (BrokerShards ≤ 1, the default) this is the
// single full-pool broker; with sharding on it is shard 0 — use BrokerFor
// to reach the shard serving a specific node.
func (s *System) Broker() *broker.Broker { return s.brk.Shard(0) }

// BrokerFor returns the broker shard serving the given node ID.
func (s *System) BrokerFor(node uint16) *broker.Broker { return s.brk.For(node) }

// BrokerShards returns the effective broker shard count.
func (s *System) BrokerShards() int { return s.brk.Shards() }

// Node returns node i (0-based).
func (s *System) Node(i int) *node.Node { return s.nodes[i] }

// Nodes returns the node count.
func (s *System) Nodes() int { return len(s.nodes) }

// Engine returns the simulation engine.
func (s *System) Engine() *sim.Engine { return s.engine }

// counters captures every counter the Result diffing needs.
type counters struct {
	time          sim.Time
	instrs        uint64
	memOps        uint64
	nodes         []node.Stats
	stus          []stu.Stats
	trs           []translator.Stats
	famReads      uint64
	famWrites     uint64
	l3Misses      uint64
	fabricPackets uint64
}

func (s *System) readCounters() counters {
	sn := counters{
		time:          s.engine.Now(),
		famReads:      s.fam.Reads(),
		famWrites:     s.fam.Writes(),
		fabricPackets: s.fab.Packets(),
	}
	for ni, n := range s.nodes {
		sn.nodes = append(sn.nodes, n.Stats())
		if st := n.STU(); st != nil {
			sn.stus = append(sn.stus, st.Stats())
		} else {
			sn.stus = append(sn.stus, stu.Stats{})
		}
		if tr := n.Translator(); tr != nil {
			sn.trs = append(sn.trs, tr.Stats())
		} else {
			sn.trs = append(sn.trs, translator.Stats{})
		}
		sn.l3Misses += n.Hierarchy().L3Cache().Misses()
		for _, c := range s.cores[ni] {
			sn.instrs += c.Instructions()
			sn.memOps += c.MemOps()
		}
	}
	return sn
}

// ctxStride is the simulated-time slice between cooperative-cancellation
// checks while the engine drains. Coarse enough to be free (a run covers
// thousands of strides' worth of events between wall-clock milliseconds),
// fine enough that cancelling a multi-minute report run aborts the
// in-flight simulations in well under a second of wall time.
const ctxStride = 5 * sim.Microsecond

// runPhase drains the engine and verifies every core retired cleanly. The
// engine runs in ctxStride slices of simulated time with a cancellation
// check between slices; slicing dispatches exactly the same events in the
// same order as one uncancelled drain, so results stay byte-identical.
func (s *System) runPhase(ctx context.Context) error {
	for s.engine.Pending() > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.engine.Run(s.engine.Now() + ctxStride)
	}
	for ni, row := range s.cores {
		for ci, c := range row {
			if err := c.Err(); err != nil {
				return fmt.Errorf("node %d core %d: %w", ni+1, ci, err)
			}
			if !c.Done() {
				return fmt.Errorf("node %d core %d: engine drained before retirement", ni+1, ci)
			}
		}
	}
	return nil
}

// Run executes the warmup phase (if configured) and then the measured
// phase, returning steady-state metrics. Cancelling ctx aborts the
// simulation at the next stride boundary and returns ctx.Err().
//
// A system built WithSnapshot skips the warmup simulation: it restores the
// snapshot's warmup/measure boundary and runs only the measured phase. A
// system built WithWarmupHook has the hook invoked at that same boundary.
func (s *System) Run(ctx context.Context) (Result, error) {
	// Phase 1: warmup. Cores are built with the total budget; we trim it
	// to the warmup length, run, then extend for measurement. A snapshot
	// fork replaces the whole phase with a state restore.
	warm := s.cfg.WarmupInstructions
	switch {
	case s.restoreFrom != nil:
		if err := s.Restore(s.restoreFrom); err != nil {
			return Result{}, err
		}
	case warm > 0:
		for _, row := range s.cores {
			for _, c := range row {
				c.SetBudget(warm)
			}
		}
		for _, row := range s.cores {
			for _, c := range row {
				c.Start(s.engine)
			}
		}
		if err := s.runPhase(ctx); err != nil {
			return Result{}, err
		}
	}
	if s.afterWarmup != nil {
		s.afterWarmup(s)
	}
	before := s.readCounters()

	for _, row := range s.cores {
		for _, c := range row {
			c.SetBudget(warm + s.cfg.MeasureInstructions)
			c.Start(s.engine)
		}
	}
	if err := s.runPhase(ctx); err != nil {
		return Result{}, err
	}
	after := s.readCounters()
	return s.cfg.buildResult(before, after), nil
}

// Recycle returns the system's large backing arrays to pool for its next
// construction. The system — including anything reached through it, such
// as broker page tables — must not be used afterwards. A nil pool is a
// no-op.
func (s *System) Recycle(pool *SystemPool) {
	a := pool.arenaOf()
	if a == nil {
		return
	}
	s.brk.Recycle(a)
	for _, n := range s.nodes {
		n.Recycle(a)
	}
}

// Run builds and runs a system in one call — the unit of work the
// experiments Runner schedules. ctx cancellation is observed cooperatively
// inside the event loop (see System.Run). Options select pooled
// construction (WithPool), warmup forking (WithSnapshot) and the
// warmup-boundary hook (WithWarmupHook).
func Run(ctx context.Context, cfg Config, opts ...RunOption) (Result, error) {
	var o runOptions
	for _, opt := range opts {
		opt(&o)
	}
	s, err := newSystem(cfg, o)
	if err != nil {
		return Result{}, err
	}
	res, err := s.Run(ctx)
	// Recycle on the error path too (including cancellation): the system
	// is discarded either way and nothing else references its arrays. A
	// panicking run skips recycling — the pool stays consistent, it just
	// forgets the in-flight buffers.
	s.Recycle(o.pool)
	return res, err
}
