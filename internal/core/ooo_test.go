package core

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"deact/internal/workload"
)

// oooQuickConfig returns a fast OoO configuration.
func oooQuickConfig(scheme Scheme, bench string, window, schedLat int) Config {
	cfg := quickConfig(scheme, bench)
	cfg.CoreModel = CoreOoO
	cfg.WindowSize = window
	cfg.SchedulerLatency = schedLat
	return cfg
}

// TestOoODegeneratesToInOrder is the randomized degeneracy oracle: the OoO
// model with a one-entry window and a zero-latency scheduler cannot run
// ahead of any dependent load, so its schedule must be bit-identical to the
// in-order model's — across schemes, access patterns and random seeds.
// stepOoO and step are separate implementations, so this is a genuine
// cross-implementation check, not a tautology.
func TestOoODegeneratesToInOrder(t *testing.T) {
	prng := rand.New(rand.NewSource(20260808))
	patterns := []string{"", workload.PatternPointerChase, workload.PatternGraphFrontier, workload.PatternStencil}
	benches := []string{"mcf", "canl", "dc", "sp"}
	for _, scheme := range Schemes() {
		for _, pattern := range patterns {
			cfg := quickConfig(scheme, benches[prng.Intn(len(benches))])
			cfg.Pattern = pattern
			cfg.WarmupInstructions = 4_000 + uint64(prng.Intn(3))*2_000
			cfg.MeasureInstructions = 4_000
			cfg.Seed = prng.Int63n(1 << 30)

			ooo := cfg
			ooo.CoreModel = CoreOoO
			ooo.WindowSize = 1
			ooo.SchedulerLatency = 0

			name := scheme.String() + "/" + pattern
			if pattern == "" {
				name = scheme.String() + "/skew"
			}
			t.Run(name, func(t *testing.T) {
				want, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatalf("in-order run: %v", err)
				}
				got, err := Run(context.Background(), ooo)
				if err != nil {
					t.Fatalf("OoO run: %v", err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("OoO(W=1, schedLat=0) diverged from in-order:\nin-order: %+v\nOoO:      %+v", want, got)
				}
			})
		}
	}
}

// TestOoODivergesFromInOrder is the counterpart sanity check: with a real
// window the OoO model must NOT reproduce the in-order schedule on a
// dependence-mixed workload — otherwise the degeneracy oracle above proves
// nothing.
func TestOoODivergesFromInOrder(t *testing.T) {
	cfg := quickConfig(DeACTN, "mcf")
	cfg.WarmupInstructions, cfg.MeasureInstructions = 5_000, 5_000
	inorder, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wide := cfg
	wide.CoreModel, wide.WindowSize, wide.SchedulerLatency = CoreOoO, 32, 0
	ooo, err := Run(context.Background(), wide)
	if err != nil {
		t.Fatal(err)
	}
	if inorder.Duration == ooo.Duration {
		t.Fatal("window=32 OoO run matched the in-order schedule exactly; run-ahead is inert")
	}
	if ooo.IPC <= inorder.IPC {
		t.Fatalf("OoO IPC %v not above in-order IPC %v on a mixed workload", ooo.IPC, inorder.IPC)
	}
}

// TestOoOPatternsDiverge pins the mechanism the MLP sweep plots: widening
// the window (with matching miss-window capacity) must speed up a stencil
// stream's core, while a degree-1 pointer chase — a pure dependence chain —
// must not gain from run-ahead at all.
func TestOoOPatternsDiverge(t *testing.T) {
	run := func(pattern string, degree, window int) Result {
		cfg := oooQuickConfig(DeACTN, "mcf", window, 2)
		cfg.CoresPerNode = 1
		cfg.Pattern = pattern
		cfg.PatternDegree = degree
		cfg.MaxOutstanding = window
		cfg.WarmupInstructions, cfg.MeasureInstructions = 4_000, 8_000
		r, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s W=%d: %v", pattern, window, err)
		}
		return r
	}
	stNarrow := run(workload.PatternStencil, 4, 1)
	stWide := run(workload.PatternStencil, 4, 32)
	if stWide.IPC <= stNarrow.IPC {
		t.Fatalf("stencil IPC did not rise with the window: W=1 %v, W=32 %v", stNarrow.IPC, stWide.IPC)
	}
	chNarrow := run(workload.PatternPointerChase, 1, 1)
	chWide := run(workload.PatternPointerChase, 1, 32)
	// The chase is fully serialized: the wide window may not buy a speedup
	// remotely comparable to the stencil's.
	chGain := chWide.IPC / chNarrow.IPC
	stGain := stWide.IPC / stNarrow.IPC
	if chGain > 1.05 {
		t.Fatalf("degree-1 pointer chase sped up %.3fx with the window; the chain should pin it", chGain)
	}
	if stGain < 1.5 {
		t.Fatalf("stencil gained only %.3fx from W=1 to W=32; MLP scaling broken", stGain)
	}
}

// TestOoOConfigJSONRoundTrip: the new core-model fields must survive the
// versioned JSON envelope and preserve run identity through it.
func TestOoOConfigJSONRoundTrip(t *testing.T) {
	cfg := oooQuickConfig(IFAM, "canl", 16, 3)
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.CoreModel != CoreOoO || back.WindowSize != 16 || back.SchedulerLatency != 3 {
		t.Fatalf("core-model fields lost in round trip: %+v", back)
	}
	if back.Fingerprint() != cfg.Fingerprint() {
		t.Fatal("JSON round trip changed the fingerprint")
	}
}

// TestFingerprintCoreModelDefaultMerges pins the normalization: "" and
// CoreInOrder are two spellings of the default timing model and must not
// split run identity, while the OoO knobs must all be part of it.
func TestFingerprintCoreModelDefaultMerges(t *testing.T) {
	blank := DefaultConfig()
	spelled := DefaultConfig()
	spelled.CoreModel = CoreInOrder
	if blank.Fingerprint() != spelled.Fingerprint() {
		t.Fatal(`CoreModel "" and "in-order" split run identity; they simulate identically`)
	}
	mk := func(window, schedLat int) string {
		c := DefaultConfig()
		c.CoreModel, c.WindowSize, c.SchedulerLatency = CoreOoO, window, schedLat
		return c.Fingerprint()
	}
	variants := []string{blank.Fingerprint(), mk(1, 0), mk(8, 0), mk(8, 2)}
	fps := map[string]int{}
	for i, fp := range variants {
		if j, dup := fps[fp]; dup {
			t.Errorf("core-model variants %d and %d alias", i, j)
		}
		fps[fp] = i
	}
}
