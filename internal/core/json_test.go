package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestConfigJSONRoundTripPreservesFingerprint holds the canonical-form
// contract against the fingerprint reflection walk: for the default config
// and for every single-leaf perturbation of it (the same enumeration
// TestFingerprintCoversEveryField uses, so a newly added field is covered
// automatically), marshal → unmarshal must land on a config with the same
// Fingerprint, and re-marshaling must be byte-identical (the encoding is
// canonical, not merely equivalent).
func TestConfigJSONRoundTripPreservesFingerprint(t *testing.T) {
	base := DefaultConfig()
	var leaves []leafField
	collectLeaves(t, reflect.TypeOf(base), "Config", nil, &leaves)

	variants := []Config{base}
	for _, lf := range leaves {
		if lf.path == "Config.Scheme" {
			// perturb's +1 would leave the enum's valid range, which the
			// marshaler rightly rejects; cover every other scheme instead.
			for _, s := range Schemes() {
				if s != base.Scheme {
					v := base
					v.Scheme = s
					variants = append(variants, v)
				}
			}
			continue
		}
		variants = append(variants, perturb(t, base, lf))
	}
	for i, cfg := range variants {
		enc, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("variant %d: marshal: %v", i, err)
		}
		var back Config
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("variant %d: unmarshal: %v", i, err)
		}
		if got, want := back.Fingerprint(), cfg.Fingerprint(); got != want {
			t.Errorf("variant %d: fingerprint drifted across JSON round-trip:\n got %s\nwant %s\n%s", i, got, want, enc)
		}
		re, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("variant %d: re-marshal: %v", i, err)
		}
		if !bytes.Equal(enc, re) {
			t.Errorf("variant %d: encoding not canonical:\n first %s\nsecond %s", i, enc, re)
		}
	}
}

// TestConfigJSONSchemeIsNamed pins the external schema: schemes travel as
// their canonical lowercase names, not iota values.
func TestConfigJSONSchemeIsNamed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = IFAM
	enc, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(enc, []byte(`"Scheme":"i-fam"`)) {
		t.Fatalf("scheme not encoded by name: %s", enc)
	}
	for _, s := range Schemes() {
		if got, err := ParseScheme(s.Name()); err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", s.Name(), got, err, s)
		}
		if got, err := ParseScheme(s.String()); err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	var bad Config
	if err := json.Unmarshal([]byte(`{"Scheme":"fam-e"}`), &bad); err == nil {
		t.Fatal("unknown scheme name accepted")
	}
}

// TestConfigJSONSparseOverlay pins the serve-API decode mode: absent fields
// keep the target's values, so a sparse request overlays DefaultConfig.
func TestConfigJSONSparseOverlay(t *testing.T) {
	cfg := DefaultConfig()
	if err := json.Unmarshal([]byte(`{"Benchmark":"dc","Scheme":"e-fam","Seed":7}`), &cfg); err != nil {
		t.Fatal(err)
	}
	want := DefaultConfig()
	want.Benchmark, want.Scheme, want.Seed = "dc", EFAM, 7
	if cfg.Fingerprint() != want.Fingerprint() {
		t.Fatalf("sparse overlay drifted: got %+v", cfg)
	}
}

// TestConfigJSONStrict: misspelled fields and trailing garbage must be
// rejected, not silently dropped — in the HTTP API a dropped field would
// simulate the wrong system under the wrong identity.
func TestConfigJSONStrict(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(`{"Benchmrak":"dc"}`), &cfg); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := cfg.UnmarshalJSON([]byte(`{"Seed":1} {"Seed":2}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

// TestResultJSONRoundTrip holds the store's byte-identity requirement end
// to end on a real multi-tenant run: the Result — histograms included —
// must round-trip through JSON to a deeply equal value with a
// byte-identical re-encoding.
func TestResultJSONRoundTrip(t *testing.T) {
	cfg := quickConfig(DeACTN, "mcf")
	cfg.Tenants = 2
	cfg.WarmupInstructions, cfg.MeasureInstructions = 5_000, 5_000
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lat := res.TenantLatency(1); lat.FAM.Count() == 0 {
		t.Fatal("test run recorded no tenant-1 FAM samples; histogram round-trip untested")
	}
	enc, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, back) {
		t.Fatalf("result did not round-trip:\n got %+v\nwant %+v", back, res)
	}
	re, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatal("result encoding not canonical across a round-trip")
	}
	if !strings.Contains(string(enc), `"Scheme":"deact-n"`) {
		t.Fatalf("result scheme not encoded by name: %.120s", enc)
	}
}
