package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"
)

// Fingerprint returns the canonical run identity of the configuration: a
// hex-encoded 128-bit digest over every exported field, after
// normalization. Two configs that would simulate identically (differing
// only in fields Run derives, like Hierarchy.Cores) fingerprint equal;
// any other exported-field difference produces a different fingerprint.
//
// The experiment Runner keys its deduplication cache solely on this value,
// so run identity can never drift from the configuration the way a
// hand-written string key could.
func (c Config) Fingerprint() string {
	h := sha256.New()
	writeCanonical(h, "Config", reflect.ValueOf(c.normalized()), nil)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// warmupSkip lists the exported fields that cannot influence the system's
// state at the warmup/measure boundary: today only the measured-phase
// length. Every other field — geometry, latencies, seed, warmup length —
// shapes construction or the warmup simulation itself.
var warmupSkip = map[string]bool{"Config.MeasureInstructions": true}

// WarmupFingerprint is Fingerprint over only the warmup-relevant fields:
// two configs with equal WarmupFingerprints build identical systems and
// simulate identical warmup phases, differing at most in how long the
// measured phase runs afterwards. The experiments Runner groups sweep
// points by this value so a shared warmup prefix is simulated once and
// forked (via Snapshot/Restore) into each point's measured phase.
func (c Config) WarmupFingerprint() string {
	h := sha256.New()
	writeCanonical(h, "Config", reflect.ValueOf(c.normalized()), warmupSkip)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// normalized returns the config with derived fields rewritten to the values
// Run will actually use, so they cannot split or alias run identities.
func (c Config) normalized() Config {
	// nodeConfig overwrites the hierarchy's core count with CoresPerNode;
	// a stale Hierarchy.Cores never reaches the simulation.
	c.Hierarchy.Cores = c.CoresPerNode
	// 0 and 1 are two spellings of "single-tenant" and "one broker shard"
	// (tenantFor and brokerShards treat them identically); normalize so the
	// spellings cannot split run identity in the dedup cache.
	if c.Tenants == 0 {
		c.Tenants = 1
	}
	if c.BrokerShards == 0 {
		c.BrokerShards = 1
	}
	// "" and CoreInOrder are two spellings of the default timing model;
	// normalize so they cannot split run identity.
	if c.CoreModel == "" {
		c.CoreModel = CoreInOrder
	}
	return c
}

// writeCanonical emits an injective, deterministic encoding of v: every
// exported field in declaration order, tagged with its full path. Walking
// the struct by reflection means a newly added Config field changes the
// fingerprint automatically — it cannot be silently omitted the way a
// hand-maintained field list could. Unsupported field kinds (slices, maps,
// floats — none exist in Config today) panic so the mistake is caught by
// the first Fingerprint call in tests rather than by silent aliasing.
// Fields whose full path is in skip are left out entirely (nil skips
// nothing); a new field is therefore included in every fingerprint unless
// deliberately added to a skip set.
func writeCanonical(w io.Writer, path string, v reflect.Value, skip map[string]bool) {
	if skip[path] {
		return
	}
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				panic(fmt.Sprintf("core: Fingerprint: unexported field %s.%s cannot carry run identity", path, f.Name))
			}
			writeCanonical(w, path+"."+f.Name, v.Field(i), skip)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "%s=%d;", path, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(w, "%s=%d;", path, v.Uint())
	case reflect.Bool:
		fmt.Fprintf(w, "%s=%t;", path, v.Bool())
	case reflect.String:
		fmt.Fprintf(w, "%s=%q;", path, v.String())
	default:
		panic(fmt.Sprintf("core: Fingerprint: unsupported field kind %s at %s", v.Kind(), path))
	}
}
