package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"
)

// Fingerprint returns the canonical run identity of the configuration: a
// hex-encoded 128-bit digest over every exported field, after
// normalization. Two configs that would simulate identically (differing
// only in fields Run derives, like Hierarchy.Cores) fingerprint equal;
// any other exported-field difference produces a different fingerprint.
//
// The experiment Runner keys its deduplication cache solely on this value,
// so run identity can never drift from the configuration the way a
// hand-written string key could.
func (c Config) Fingerprint() string {
	h := sha256.New()
	writeCanonical(h, "Config", reflect.ValueOf(c.normalized()))
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// normalized returns the config with derived fields rewritten to the values
// Run will actually use, so they cannot split or alias run identities.
func (c Config) normalized() Config {
	// nodeConfig overwrites the hierarchy's core count with CoresPerNode;
	// a stale Hierarchy.Cores never reaches the simulation.
	c.Hierarchy.Cores = c.CoresPerNode
	return c
}

// writeCanonical emits an injective, deterministic encoding of v: every
// exported field in declaration order, tagged with its full path. Walking
// the struct by reflection means a newly added Config field changes the
// fingerprint automatically — it cannot be silently omitted the way a
// hand-maintained field list could. Unsupported field kinds (slices, maps,
// floats — none exist in Config today) panic so the mistake is caught by
// the first Fingerprint call in tests rather than by silent aliasing.
func writeCanonical(w io.Writer, path string, v reflect.Value) {
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				panic(fmt.Sprintf("core: Fingerprint: unexported field %s.%s cannot carry run identity", path, f.Name))
			}
			writeCanonical(w, path+"."+f.Name, v.Field(i))
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "%s=%d;", path, v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		fmt.Fprintf(w, "%s=%d;", path, v.Uint())
	case reflect.Bool:
		fmt.Fprintf(w, "%s=%t;", path, v.Bool())
	case reflect.String:
		fmt.Fprintf(w, "%s=%q;", path, v.String())
	default:
		panic(fmt.Sprintf("core: Fingerprint: unsupported field kind %s at %s", v.Kind(), path))
	}
}
