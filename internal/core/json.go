package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"deact/internal/node"
)

// ModelVersion names the current simulation semantics. It is bumped
// whenever a modeling change regenerates testdata/golden-report-short.md —
// the same "intentional change" boundary the golden-report CI gate
// enforces — and the persistent result store embeds it in every entry, so
// results computed under older semantics auto-invalidate as cache misses
// instead of being served stale. Pure refactors (byte-identical goldens)
// must not bump it: the stored results are still exact.
const ModelVersion = "pr7-capacity"

// ParseScheme parses a scheme name in any accepted spelling ("deact-n",
// "DeACT-N", "deactn", "deact", ...). It is the inverse of Scheme.Name and
// the parser behind both the cmds' -scheme flags and Scheme's JSON form.
func ParseScheme(s string) (Scheme, error) { return node.ParseScheme(s) }

// MarshalJSON encodes the configuration in its canonical external form:
// every exported field under its Go name, schemes as their lowercase
// canonical names, and derived fields normalized exactly the way
// Fingerprint normalizes them — so the serve API, the persistent result
// store and the fingerprint walk all see one schema. Encoding is
// deterministic (struct field order) and round-trips through UnmarshalJSON
// to a config with an identical Fingerprint.
func (c Config) MarshalJSON() ([]byte, error) {
	type plain Config // strips the marshaler; field types keep theirs
	return json.Marshal(plain(c.normalized()))
}

// UnmarshalJSON decodes a canonical config. Unknown fields are rejected —
// in an HTTP API a silently dropped misspelled field would simulate the
// wrong system and cache the result under the wrong identity. Fields
// absent from the JSON keep the values the target already holds, so
// callers decode over DefaultConfig() (as cmd/deact-serve does) to accept
// sparse requests like {"Benchmark":"mcf","Scheme":"i-fam"}.
func (c *Config) UnmarshalJSON(b []byte) error {
	type plain Config
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	p := (*plain)(c)
	if err := dec.Decode(p); err != nil {
		return fmt.Errorf("core: invalid config JSON: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("core: invalid config JSON: trailing data after config object")
	}
	return nil
}
