package core

import (
	"context"
	"reflect"
	"testing"
)

// poolTestConfig is a small-but-real run: big enough to materialize ACM
// chunks, grow page tables and evict through all three cache levels.
func poolTestConfig(scheme Scheme, bench string) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = bench
	cfg.CoresPerNode = 1
	cfg.WarmupInstructions = 2000
	cfg.MeasureInstructions = 4000
	return cfg
}

// TestPooledRunMatchesUnpooled is the arena determinism gate: a run built
// from recycled memory must be bit-identical to a fresh one, for every
// scheme (each exercises a different subset of pooled structures), both on
// the pool's first use and after the pool has been dirtied by runs of
// *other* configurations.
func TestPooledRunMatchesUnpooled(t *testing.T) {
	ctx := context.Background()
	pool := NewSystemPool()
	for _, scheme := range Schemes() {
		cfg := poolTestConfig(scheme, "mcf")
		want, err := Run(ctx, cfg)
		if err != nil {
			t.Fatalf("%v unpooled: %v", scheme, err)
		}
		for round := 0; round < 3; round++ {
			got, err := Run(ctx, cfg, WithPool(pool))
			if err != nil {
				t.Fatalf("%v pooled round %d: %v", scheme, round, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v pooled round %d diverged from unpooled:\n got %+v\nwant %+v", scheme, round, got, want)
			}
			// Dirty the pool with a different benchmark and geometry
			// before the next round, so reuse crosses run shapes.
			other := poolTestConfig(scheme, "sp")
			other.STUEntries = 512
			if _, err := Run(ctx, other, WithPool(pool)); err != nil {
				t.Fatalf("%v dirtying run: %v", scheme, err)
			}
		}
	}
}

// TestNilPoolIsValid pins the documented "pooling off" mode.
func TestNilPoolIsValid(t *testing.T) {
	ctx := context.Background()
	cfg := poolTestConfig(IFAM, "mcf")
	if _, err := Run(ctx, cfg, WithPool(nil)); err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(cfg, WithPool(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	s.Recycle(nil) // no-op, must not panic
}

// TestOptionsFormIsTheOnlyAPI is the compile-time guard left behind by the
// removal of the deprecated RunPooled/NewSystemPooled wrappers: the options
// form covers both the run and construct paths, a nil pool means "allocate
// fresh", and pooled runs are bit-identical to plain ones.
func TestOptionsFormIsTheOnlyAPI(t *testing.T) {
	ctx := context.Background()
	cfg := poolTestConfig(DeACTN, "mcf")
	want, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(ctx, cfg, WithPool(NewSystemPool()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Run(WithPool) diverged from Run")
	}
	if _, err := NewSystem(cfg, WithPool(nil)); err != nil {
		t.Fatal(err)
	}
}
