package core

import (
	"context"
	"reflect"
	"testing"

	"deact/internal/workload"
)

// TestRunDeterministicFixedSeed: two serial runs of an identical config
// must produce bit-identical Results — the invariant every experiment
// (and the Runner's fingerprint-keyed dedup cache) rests on.
func TestRunDeterministicFixedSeed(t *testing.T) {
	for _, scheme := range []Scheme{IFAM, DeACTN} {
		cfg := quickConfig(scheme, "canl")
		cfg.WarmupInstructions = 5_000
		cfg.MeasureInstructions = 5_000
		a, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		b, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: fixed-seed runs diverged:\n%+v\n%+v", scheme, a, b)
		}
	}
}

// quickConfig returns a small, fast configuration for tests.
func quickConfig(scheme Scheme, bench string) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = bench
	cfg.CoresPerNode = 2
	cfg.WarmupInstructions = 20_000
	cfg.MeasureInstructions = 20_000
	return cfg
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = 0 },
		func(c *Config) { c.MeasureInstructions = 0 },
		func(c *Config) { c.STUEntries = 0 },
		func(c *Config) { c.Benchmark = "nope" },
		func(c *Config) { c.Layout.ACMBits = 9 },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSchemesList(t *testing.T) {
	s := Schemes()
	if len(s) != 4 || s[0] != EFAM || s[3] != DeACTN {
		t.Fatalf("Schemes() = %v", s)
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	for _, scheme := range Schemes() {
		r, err := Run(context.Background(), quickConfig(scheme, "mcf"))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if r.Instructions == 0 || r.Duration == 0 {
			t.Fatalf("%v: empty result %+v", scheme, r)
		}
		if r.IPC <= 0 || r.IPC > 2 {
			t.Fatalf("%v: IPC %v outside (0,2]", scheme, r.IPC)
		}
		if r.MemOps == 0 || r.MPKI <= 0 {
			t.Fatalf("%v: no memory activity", scheme)
		}
		if scheme != EFAM && r.FAMAT == 0 {
			t.Fatalf("%v: no AT traffic", scheme)
		}
		if r.FAMData == 0 {
			t.Fatalf("%v: no data traffic", scheme)
		}
		if r.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestDeterminism(t *testing.T) {
	r1, err := Run(context.Background(), quickConfig(DeACTN, "canl"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), quickConfig(DeACTN, "canl"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.IPC != r2.IPC || r1.FAMAT != r2.FAMAT || r1.Duration != r2.Duration {
		t.Fatalf("nondeterministic: %v vs %v", r1, r2)
	}
}

// TestPaperOrdering checks the headline qualitative result (Table I and
// Figure 12): E-FAM ≥ DeACT-N ≥ I-FAM for an AT-sensitive benchmark.
func TestPaperOrdering(t *testing.T) {
	ipc := map[Scheme]float64{}
	for _, scheme := range Schemes() {
		r, err := Run(context.Background(), quickConfig(scheme, "canl"))
		if err != nil {
			t.Fatal(err)
		}
		ipc[scheme] = r.IPC
	}
	if !(ipc[EFAM] > ipc[IFAM]) {
		t.Errorf("E-FAM (%.4f) must beat I-FAM (%.4f)", ipc[EFAM], ipc[IFAM])
	}
	if !(ipc[DeACTN] > ipc[IFAM]) {
		t.Errorf("DeACT-N (%.4f) must beat I-FAM (%.4f) on an AT-sensitive benchmark", ipc[DeACTN], ipc[IFAM])
	}
	if !(ipc[EFAM] >= ipc[DeACTN]) {
		t.Errorf("E-FAM (%.4f) must bound DeACT-N (%.4f)", ipc[EFAM], ipc[DeACTN])
	}
}

// TestDeACTTranslationHitRateHigh verifies §V-A: the in-DRAM translation
// cache reaches far higher hit rates than I-FAM's STU cache.
func TestDeACTTranslationHitRateHigh(t *testing.T) {
	warm := func(s Scheme) Config {
		c := quickConfig(s, "canl")
		// canl touches ~12k pages; warm long enough that the measured phase
		// reflects steady state (the paper reports >90% there).
		c.WarmupInstructions = 100_000
		return c
	}
	rI, err := Run(context.Background(), warm(IFAM))
	if err != nil {
		t.Fatal(err)
	}
	rD, err := Run(context.Background(), warm(DeACTN))
	if err != nil {
		t.Fatal(err)
	}
	if rD.TranslationHitRate <= rI.TranslationHitRate {
		t.Fatalf("DeACT xlate hit %.3f not above I-FAM %.3f",
			rD.TranslationHitRate, rI.TranslationHitRate)
	}
	if rD.TranslationHitRate < 0.85 {
		t.Fatalf("DeACT xlate hit %.3f; paper reports >90%% steady state", rD.TranslationHitRate)
	}
}

// TestDeACTNBeatsDeACTWOnACM verifies the Figure 9 mechanism under random
// FAM placement.
func TestDeACTNBeatsDeACTWOnACM(t *testing.T) {
	rW, err := Run(context.Background(), quickConfig(DeACTW, "canl"))
	if err != nil {
		t.Fatal(err)
	}
	rN, err := Run(context.Background(), quickConfig(DeACTN, "canl"))
	if err != nil {
		t.Fatal(err)
	}
	if rN.ACMHitRate <= rW.ACMHitRate {
		t.Fatalf("DeACT-N ACM hit %.3f not above DeACT-W %.3f", rN.ACMHitRate, rW.ACMHitRate)
	}
}

// TestIFAMIncreasesATFraction verifies the Figure 4 effect: indirection
// turns modest AT traffic into the dominant FAM request class.
func TestIFAMIncreasesATFraction(t *testing.T) {
	rE, err := Run(context.Background(), quickConfig(EFAM, "canl"))
	if err != nil {
		t.Fatal(err)
	}
	rI, err := Run(context.Background(), quickConfig(IFAM, "canl"))
	if err != nil {
		t.Fatal(err)
	}
	if rI.ATFraction <= rE.ATFraction {
		t.Fatalf("I-FAM AT fraction %.3f not above E-FAM %.3f", rI.ATFraction, rE.ATFraction)
	}
}

// TestDeACTNReducesATRequests verifies the Figure 11 effect.
func TestDeACTNReducesATRequests(t *testing.T) {
	rI, err := Run(context.Background(), quickConfig(IFAM, "canl"))
	if err != nil {
		t.Fatal(err)
	}
	rN, err := Run(context.Background(), quickConfig(DeACTN, "canl"))
	if err != nil {
		t.Fatal(err)
	}
	if rN.ATFraction >= rI.ATFraction {
		t.Fatalf("DeACT-N AT fraction %.3f not below I-FAM %.3f", rN.ATFraction, rI.ATFraction)
	}
}

func TestMultiNodeRuns(t *testing.T) {
	cfg := quickConfig(DeACTN, "pf")
	cfg.Nodes = 2
	cfg.WarmupInstructions = 10_000
	cfg.MeasureInstructions = 10_000
	r, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NodeStats) != 2 {
		t.Fatalf("node stats = %d", len(r.NodeStats))
	}
	if r.NodeStats[0].FAMData == 0 || r.NodeStats[1].FAMData == 0 {
		t.Fatal("a node did no FAM work")
	}
}

func TestAllBenchmarksRunUnderDeACTN(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range workload.Names() {
		cfg := quickConfig(DeACTN, name)
		cfg.WarmupInstructions = 5_000
		cfg.MeasureInstructions = 10_000
		if _, err := Run(context.Background(), cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTrustReadsAtMostHelps(t *testing.T) {
	cfg := quickConfig(DeACTN, "mcf")
	base, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TrustReads = true
	trusted, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trusted.IPC < base.IPC*0.97 {
		t.Fatalf("trusted reads slowed the run: %.5f vs %.5f", trusted.IPC, base.IPC)
	}
	var tr uint64
	for _, st := range trusted.STUStats {
		tr += st.TrustedReads
	}
	if tr == 0 {
		t.Fatal("no trusted reads recorded")
	}
}
