package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// coldAndSnapshot runs cfg cold, capturing a warmup snapshot at the
// boundary on the way through, and returns both.
func coldAndSnapshot(t *testing.T, cfg Config) (Result, *Snapshot) {
	t.Helper()
	var snap *Snapshot
	cold, err := Run(context.Background(), cfg,
		WithWarmupHook(func(s *System) { snap = s.Snapshot() }))
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if snap == nil {
		t.Fatal("warmup hook never fired")
	}
	return cold, snap
}

// TestForkedRunMatchesCold is the snapshot oracle: a run forked from a
// warmup snapshot must produce a bit-identical Result to the cold run that
// simulated the same warmup itself — across schemes, seeds, benchmarks and
// geometry variations drawn from a fixed-seed generator.
func TestForkedRunMatchesCold(t *testing.T) {
	prng := rand.New(rand.NewSource(20260807))
	benches := []string{"mcf", "canl", "dc", "sp"}
	for i, scheme := range Schemes() {
		for trial := 0; trial < 2; trial++ {
			cfg := DefaultConfig()
			cfg.Scheme = scheme
			cfg.Benchmark = benches[prng.Intn(len(benches))]
			cfg.Nodes = 1 + prng.Intn(2)
			cfg.CoresPerNode = 1 + prng.Intn(2)
			cfg.WarmupInstructions = 4_000 + uint64(prng.Intn(3))*2_000
			cfg.MeasureInstructions = 4_000
			cfg.Seed = prng.Int63n(1 << 30)
			cfg.STUWays = []int{4, 8, 16}[prng.Intn(3)]
			// Alternate timing models so snapshot forking is exercised under
			// the OoO scheduler too (its chain state must drain at the
			// warmup boundary for the fork to match the cold run).
			name := cfg.Benchmark
			if trial == 1 {
				cfg.CoreModel = CoreOoO
				cfg.WindowSize = []int{1, 8, 32}[prng.Intn(3)]
				cfg.SchedulerLatency = prng.Intn(3)
				name += "/ooo"
			}
			t.Run(scheme.String()+"/"+name, func(t *testing.T) {
				cold, snap := coldAndSnapshot(t, cfg)
				forked, err := Run(context.Background(), cfg, WithSnapshot(snap))
				if err != nil {
					t.Fatalf("forked run (trial %d): %v", i*2+trial, err)
				}
				if !reflect.DeepEqual(cold, forked) {
					t.Fatalf("forked run diverged from cold:\ncold:   %+v\nforked: %+v", cold, forked)
				}
			})
		}
	}
}

// TestSnapshotForksDoNotAlias: one snapshot must support any number of
// forks — a fork that runs (mutating every restored structure) and recycles
// its memory into a shared pool must not perturb the snapshot or a later
// fork from it.
func TestSnapshotForksDoNotAlias(t *testing.T) {
	cfg := quickConfig(DeACTN, "canl")
	cfg.WarmupInstructions = 6_000
	cfg.MeasureInstructions = 6_000
	cold, snap := coldAndSnapshot(t, cfg)

	pool := NewSystemPool()
	first, err := Run(context.Background(), cfg, WithSnapshot(snap), WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	// The second fork reuses the pool the first fork recycled into; if the
	// first fork's run mutated state aliased by the snapshot, this diverges.
	second, err := Run(context.Background(), cfg, WithSnapshot(snap), WithPool(pool))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, first) {
		t.Fatalf("first fork diverged from cold:\n%+v\n%+v", cold, first)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("second fork diverged from first (snapshot aliased by a fork):\n%+v\n%+v", first, second)
	}
}

// TestSnapshotReusedStorage: capturing into a recycled Snapshot
// (SnapshotInto over a previous capture's storage) must behave exactly like
// a fresh capture — the Runner's bounded snapshot cache depends on it.
func TestSnapshotReusedStorage(t *testing.T) {
	cfgA := quickConfig(IFAM, "mcf")
	cfgA.WarmupInstructions, cfgA.MeasureInstructions = 6_000, 6_000
	cfgB := quickConfig(DeACTN, "dc")
	cfgB.WarmupInstructions, cfgB.MeasureInstructions = 4_000, 6_000

	coldB, err := Run(context.Background(), cfgB)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewSystemPool()
	snap := &Snapshot{}
	// First capture from config A, then release and recapture from B into
	// the same Snapshot value through the same pool.
	if _, err := Run(context.Background(), cfgA, WithWarmupHook(func(s *System) {
		s.SnapshotInto(snap, pool)
	})); err != nil {
		t.Fatal(err)
	}
	snap.Release(pool)
	if _, err := Run(context.Background(), cfgB, WithWarmupHook(func(s *System) {
		s.SnapshotInto(snap, pool)
	})); err != nil {
		t.Fatal(err)
	}

	forked, err := Run(context.Background(), cfgB, WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldB, forked) {
		t.Fatalf("fork from recycled snapshot diverged:\n%+v\n%+v", coldB, forked)
	}
}

// TestRestoreRejectsMismatchedConfig: a snapshot must only restore into a
// system whose warmup-relevant fields match; a differing MeasureInstructions
// must be accepted (that is the point of warmup sharing).
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	cfg := quickConfig(IFAM, "mcf")
	cfg.WarmupInstructions, cfg.MeasureInstructions = 4_000, 4_000
	_, snap := coldAndSnapshot(t, cfg)

	bad := cfg
	bad.Seed++
	if _, err := Run(context.Background(), bad, WithSnapshot(snap)); err == nil {
		t.Fatal("restore into a different-seed config succeeded")
	}

	longer := cfg
	longer.MeasureInstructions = 8_000
	if _, err := Run(context.Background(), longer, WithSnapshot(snap)); err != nil {
		t.Fatalf("restore with a different measure length rejected: %v", err)
	}
}

// TestWarmupFingerprint: MeasureInstructions is the only field allowed to
// differ between configs with equal warmup fingerprints.
func TestWarmupFingerprint(t *testing.T) {
	a := DefaultConfig()
	b := a
	b.MeasureInstructions *= 2
	if a.WarmupFingerprint() != b.WarmupFingerprint() {
		t.Fatal("MeasureInstructions changed the warmup fingerprint")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("MeasureInstructions did not change the full fingerprint")
	}
	c := a
	c.WarmupInstructions++
	if a.WarmupFingerprint() == c.WarmupFingerprint() {
		t.Fatal("WarmupInstructions did not change the warmup fingerprint")
	}
	d := a
	d.Scheme = EFAM
	if a.WarmupFingerprint() == d.WarmupFingerprint() {
		t.Fatal("Scheme did not change the warmup fingerprint")
	}
}
