package core

import (
	"context"
	"reflect"
	"testing"

	"deact/internal/node"
)

// tenancyConfig is a small multi-node run with the noisy-neighbor mix on:
// tenant 0 thrashes with canl while tenant 1 serves steady sp traffic.
func tenancyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scheme = DeACTN
	cfg.Benchmark = "sp"
	cfg.Nodes = 2
	cfg.CoresPerNode = 1
	cfg.Tenants = 2
	cfg.NoisyBenchmark = "canl"
	cfg.WarmupInstructions = 2_000
	cfg.MeasureInstructions = 6_000
	return cfg
}

// TestTenantTrafficRecordedPerTenant: with two tenants both must populate
// their histograms, unassigned tenant slots must stay empty, and the
// steady-tenant aggregation must exclude the noisy tenant.
func TestTenantTrafficRecordedPerTenant(t *testing.T) {
	res, err := Run(context.Background(), tenancyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for tid := 0; tid < 2; tid++ {
		lat := res.TenantLatency(tid)
		if lat.Translation.Count() == 0 {
			t.Errorf("tenant %d recorded no translation samples", tid)
		}
		if lat.Local.Count()+lat.FAM.Count() == 0 {
			t.Errorf("tenant %d recorded no access samples", tid)
		}
		if lat.FAM.Count() > 0 && lat.FAM.P99() < lat.FAM.P50() {
			t.Errorf("tenant %d FAM p99 %.0f below p50 %.0f", tid, lat.FAM.P99(), lat.FAM.P50())
		}
	}
	for tid := 2; tid < node.MaxTenants; tid++ {
		if lat := res.TenantLatency(tid); lat.Translation.Count() != 0 || lat.Local.Count() != 0 || lat.FAM.Count() != 0 {
			t.Errorf("unassigned tenant %d recorded samples", tid)
		}
	}
	steady := res.SteadyLatency(2)
	if got, want := steady, res.TenantLatency(1); !reflect.DeepEqual(got, want) {
		t.Error("SteadyLatency(2) differs from tenant 1's distributions")
	}
	if oob := res.TenantLatency(node.MaxTenants + 3); oob.Translation.Count() != 0 {
		t.Error("out-of-range tenant index returned samples")
	}
}

// TestSingleTenantRecordsUnderTenantZero: a legacy config (Tenants unset)
// attributes every memory reference to tenant 0 — one translation sample
// and one access sample per retired memory op.
func TestSingleTenantRecordsUnderTenantZero(t *testing.T) {
	cfg := quickConfig(IFAM, "mcf")
	cfg.WarmupInstructions, cfg.MeasureInstructions = 2_000, 4_000
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := res.TenantLatency(0)
	if lat.Translation.Count() != res.MemOps {
		t.Errorf("translation samples %d != measured mem ops %d", lat.Translation.Count(), res.MemOps)
	}
	if got := lat.Local.Count() + lat.FAM.Count(); got != res.MemOps {
		t.Errorf("access samples %d != measured mem ops %d", got, res.MemOps)
	}
	for tid := 1; tid < node.MaxTenants; tid++ {
		if other := res.TenantLatency(tid); other.Translation.Count() != 0 {
			t.Fatalf("tenant %d has samples in a single-tenant run", tid)
		}
	}
}

// TestTenancyIsObservationOnly is the determinism invariant behind the
// golden report: tagging traffic with tenants (same benchmark everywhere,
// no noisy neighbor) must not change a single simulated cycle or counter —
// only the attribution of latency samples across tenant slots. Merging the
// per-tenant histograms back together must reproduce the single-tenant
// distribution exactly.
func TestTenancyIsObservationOnly(t *testing.T) {
	base := DefaultConfig()
	base.Scheme = IFAM
	base.Benchmark = "mcf"
	base.Nodes = 2
	base.CoresPerNode = 2
	base.WarmupInstructions, base.MeasureInstructions = 2_000, 4_000

	tagged := base
	tagged.Tenants = 4

	plain, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(context.Background(), tagged)
	if err != nil {
		t.Fatal(err)
	}

	// Everything except the per-tenant split must be identical.
	scrub := func(r Result) Result {
		for i := range r.NodeStats {
			r.NodeStats[i].Tenants = [node.MaxTenants]node.TenantLatency{}
		}
		return r
	}
	if !reflect.DeepEqual(scrub(plain), scrub(multi)) {
		t.Fatal("tenant tagging perturbed the simulation (counters/timing differ)")
	}

	// And the split must partition the single-tenant distribution.
	var merged node.TenantLatency
	for tid := 0; tid < 4; tid++ {
		merged.Merge(multi.TenantLatency(tid))
	}
	if !reflect.DeepEqual(merged, plain.TenantLatency(0)) {
		t.Fatal("per-tenant histograms do not merge back to the single-tenant distribution")
	}
}

// TestShardedRunDeterministicAndForkable: a sharded-broker run must be
// deterministic, and warmup snapshot forking must stay bit-identical with
// per-shard broker state in the snapshot.
func TestShardedRunDeterministicAndForkable(t *testing.T) {
	cfg := tenancyConfig()
	cfg.BrokerShards = 2

	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharded run not deterministic")
	}

	cold, snap := coldAndSnapshot(t, cfg)
	forked, err := Run(context.Background(), cfg, WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, forked) {
		t.Fatal("forked sharded run diverged from cold")
	}
}

// TestShardedPooledMatchesUnpooled extends the arena determinism gate to
// the sharded broker: recycled per-shard tables must be bit-identical to
// fresh ones.
func TestShardedPooledMatchesUnpooled(t *testing.T) {
	cfg := tenancyConfig()
	cfg.BrokerShards = 2
	want, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewSystemPool()
	for round := 0; round < 2; round++ {
		got, err := Run(context.Background(), cfg, WithPool(pool))
		if err != nil {
			t.Fatalf("pooled round %d: %v", round, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pooled sharded round %d diverged from unpooled", round)
		}
	}
}

// TestTenantAssignmentRoundRobin pins the documented core→tenant mapping:
// node-major global core index modulo Tenants.
func TestTenantAssignmentRoundRobin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.CoresPerNode = 3
	cfg.Tenants = 4
	want := [][]uint8{{0, 1, 2}, {3, 0, 1}}
	for ni, row := range want {
		for ci, tid := range row {
			if got := cfg.tenantFor(ni, ci); got != tid {
				t.Errorf("tenantFor(%d, %d) = %d, want %d", ni, ci, got, tid)
			}
		}
	}
	cfg.Tenants = 0
	if cfg.tenantFor(1, 2) != 0 {
		t.Error("single-tenant config assigned a nonzero tenant")
	}
}
