// Package core is the public face of the DeACT reproduction: it assembles
// broker, fabric, FAM, nodes, and cores into a runnable system, executes a
// benchmark under one of the four schemes (E-FAM, I-FAM, DeACT-W, DeACT-N),
// and reports the metrics the paper's figures are built from.
package core

import (
	"errors"
	"fmt"
	"math"

	"deact/internal/addr"
	"deact/internal/cache"
	"deact/internal/memdev"
	"deact/internal/node"
	"deact/internal/sim"
	"deact/internal/stu"
	"deact/internal/tlb"
	"deact/internal/translator"
	"deact/internal/workload"
)

// Scheme aliases node.Scheme so callers only import core.
type Scheme = node.Scheme

// The four evaluated schemes.
const (
	EFAM   = node.EFAM
	IFAM   = node.IFAM
	DeACTW = node.DeACTW
	DeACTN = node.DeACTN
)

// Schemes lists all four in presentation order.
func Schemes() []Scheme { return []Scheme{EFAM, IFAM, DeACTW, DeACTN} }

// Core timing models for Config.CoreModel.
const (
	// CoreInOrder is the default issue-width + miss-window in-order model;
	// an empty CoreModel means the same thing.
	CoreInOrder = "in-order"
	// CoreOoO is the out-of-order model: a WindowSize-entry scheduling
	// window with register-style chain dependencies and a SchedulerLatency
	// wakeup stage.
	CoreOoO = "ooo"
)

// Config describes one simulation run. DefaultConfig mirrors Table II,
// scaled ~16× down in capacity the same way the paper scales its own memory
// sizes against application footprints (§IV footnote 3); all ratios
// (local:FAM capacity, footprint:cache reach) are preserved.
type Config struct {
	// Scheme selects the virtual-memory organization.
	Scheme Scheme
	// Benchmark is a Table III workload name (workload.Names).
	Benchmark string
	// Nodes is the number of compute nodes sharing the fabric and FAM
	// (Figure 16 sweeps 1–8).
	Nodes int
	// CoresPerNode is 4 in Table II.
	CoresPerNode int
	// WarmupInstructions run per core before measurement starts, so the
	// reported rates reflect steady state rather than cold misses.
	WarmupInstructions uint64
	// MeasureInstructions run per core during the measured phase.
	MeasureInstructions uint64
	// Seed drives all randomness (placement, workloads, replacement).
	Seed int64

	// Layout scales the memory system.
	Layout addr.Layout

	// CycleTime is the core clock period (500ps = 2GHz).
	CycleTime sim.Time
	// IssueWidth is instructions per cycle (2).
	IssueWidth int
	// MaxOutstanding is the per-core miss window (32).
	MaxOutstanding int

	// CoreModel selects the core timing model: "" or CoreInOrder (the
	// default, so every existing golden stands byte-for-byte) or CoreOoO.
	// Under CoreOoO, independent references still overlap up to
	// MaxOutstanding; dependent (pointer-chase) loads serialize through a
	// chain register but the core issues past them up to WindowSize-1 ops
	// deep instead of stalling.
	CoreModel string
	// WindowSize is the OoO scheduling window in ops (entries, ~32): how
	// far the core runs ahead of an incomplete dependent load before
	// stalling. Requires CoreModel == CoreOoO and must be >= 1 there; a
	// one-entry window is bit-identical to the in-order model.
	WindowSize int
	// SchedulerLatency is the OoO wakeup/select stage in core cycles (2 in
	// the MLP sweep): the delay between a chain load completing and its
	// dependent issuing. Requires CoreModel == CoreOoO; 0 is a valid
	// zero-latency scheduler.
	SchedulerLatency int

	// L1/L2/L3 cache latencies; hierarchy geometry below.
	L1Lat, L2Lat, L3Lat sim.Time
	TLBL2Lat            sim.Time
	Hierarchy           cache.HierarchyConfig
	MMU                 tlb.MMUConfig

	// DRAMCfg and FAMCfg are the device timing models (Table II: NVM read
	// 60ns / write 150ns, 32 banks).
	DRAMCfg memdev.Config
	FAMCfg  memdev.Config

	// FabricLatency is the one-way interconnect latency (500ns; Figure 15
	// sweeps 100ns–6µs). FabricPacketTime serializes packets at the shared
	// link.
	FabricLatency    sim.Time
	FabricPacketTime sim.Time

	// STUEntries/STUWays size the STU cache (1024/8; Figures 13 and the
	// associativity sweep). PairsPerWay overrides DeACT-N packing
	// (Figure 14).
	STUEntries  int
	STUWays     int
	PairsPerWay int
	STULookup   sim.Time

	// TranslationCacheBytes sizes DeACT's in-DRAM FAM translation cache
	// (1MB in the paper, scaled by default).
	TranslationCacheBytes uint64
	// Outstanding is the outstanding-mapping-list depth (128).
	Outstanding int

	// LocalEveryN implements the 20%/80% local/FAM placement (5).
	LocalEveryN int

	// Tenants is the number of tenants sharing the system. Cores are
	// assigned round-robin by global core index (node-major), and every
	// memory reference is tagged with its core's tenant so node.Stats can
	// attribute latency per tenant. 0 or 1 means single-tenant: all traffic
	// is recorded under tenant 0 and behavior is identical to a build
	// without tenancy. At most node.MaxTenants.
	Tenants int
	// NoisyBenchmark, when non-empty, makes tenant 0 run this workload
	// instead of Benchmark — the noisy-neighbor mix the capacity sweep
	// uses (one thrashing tenant, Tenants-1 steady tenants). Requires
	// Tenants >= 2.
	NoisyBenchmark string
	// BrokerShards partitions the broker/ACM ownership state into
	// independent shards, each owning a contiguous slice of the FAM page
	// pool; nodes map to shards round-robin by node ID. 0 or 1 means one
	// global broker, byte-identical to the unsharded behavior. At most
	// Nodes (so no shard is left without a node).
	BrokerShards int

	// TrustReads enables the §III-A encrypted-memory optimization: reads
	// skip access control (per-node encryption keys make stolen reads
	// useless ciphertext). The read-trust ablation flips this.
	TrustReads bool

	// Pattern overrides the benchmark profile's access-pattern generator:
	// "" (or "skew") keeps the default probabilistic skew model;
	// "pointer-chase", "graph-frontier" and "stencil" select the workload
	// v2 structured generators (workload.Patterns), which keep the
	// benchmark's footprint, intensity and write mix but impose their own
	// access structure.
	Pattern string
	// PatternDegree is the selected pattern's parallelism dial (payload
	// blocks per chase node / mean out-degree / stencil stream count;
	// units are accesses, not bytes). 0 uses the pattern's default;
	// requires a non-empty Pattern.
	PatternDegree int

	// PrefetchStreams enables the node-side PC-keyed stream prefetcher
	// with this many tracked PC entries (rounded up to a power of two).
	// 0 disables the prefetcher entirely — the default, and bit-identical
	// to builds without the feature.
	PrefetchStreams int
	// PrefetchDegree is blocks fetched ahead per confirmed-stream trigger
	// (64B blocks; 0 → default 2).
	PrefetchDegree int
	// PrefetchThreshold is the consecutive same-delta accesses a PC needs
	// before its stream is confirmed (0 → default 2).
	PrefetchThreshold int

	// TraceID pins this run to a recorded access trace: it must equal the
	// trace.Trace ID supplied via core.WithTrace, and it gives replay runs
	// their own fingerprint (cache/dedup/snapshot identity) per trace.
	// Empty for synthesized runs.
	TraceID string
}

// DefaultConfig returns the Table II system, scaled for tractable runs.
func DefaultConfig() Config {
	return Config{
		Scheme:              DeACTN,
		Benchmark:           "mcf",
		Nodes:               1,
		CoresPerNode:        4,
		WarmupInstructions:  120_000,
		MeasureInstructions: 120_000,
		Seed:                42,

		Layout: addr.Layout{
			// 1GB DRAM : 16GB FAM in the paper → 64MB : 1GB here (÷16);
			// the FAM zone gives each node a 448MB window.
			DRAMSize:    64 << 20,
			FAMZoneSize: 448 << 20,
			FAMSize:     1 << 30,
			ACMBits:     16,
		},

		CycleTime:      500, // ps → 2GHz
		IssueWidth:     2,
		MaxOutstanding: 32,

		L1Lat: sim.NS(1), L2Lat: sim.NS(4), L3Lat: sim.NS(10),
		TLBL2Lat: sim.NS(2),
		// Cache capacities scale with the 4×-scaled footprints (paper: 32KB /
		// 256KB / 1MB against ~300MB footprints) so page-table blocks and
		// data contend for the L3 the way they do at full scale.
		Hierarchy: cache.HierarchyConfig{
			L1Size: 8 << 10, L1Ways: 8,
			L2Size: 64 << 10, L2Ways: 8,
			L3Size: 256 << 10, L3Ways: 16,
		},
		MMU: tlb.MMUConfig{L1Entries: 32, L1Ways: 4, L2Entries: 256, L2Ways: 8, PTWEntries: 32},

		DRAMCfg: memdev.Config{Name: "dram", Banks: 16,
			ReadLatency: sim.NS(60), WriteLatency: sim.NS(60), PortLatency: sim.NS(1)},
		FAMCfg: memdev.Config{Name: "fam-nvm", Banks: 32,
			ReadLatency: sim.NS(60), WriteLatency: sim.NS(150), PortLatency: sim.NS(2)},

		FabricLatency:    sim.NS(500),
		FabricPacketTime: sim.NS(50), // 64B at ~1.3GB/s per shared link direction

		STUEntries: 1024,
		STUWays:    8,
		STULookup:  sim.NS(2),

		// 1MB against 16GB FAM in the paper; kept proportionally larger here
		// (256KB → 16384 entries) so the scaled footprints fit the way the
		// paper's footprints fit its 65536 entries.
		TranslationCacheBytes: 256 << 10,
		Outstanding:           128,

		LocalEveryN: 5,
	}
}

// ErrInvalidConfig is wrapped by every Validate failure, so callers that
// submit fully-built configs can distinguish a bad configuration from a
// simulation failure with errors.Is.
var ErrInvalidConfig = errors.New("core: invalid config")

// Validate checks the configuration. It is a pure check on a value
// receiver: derived fields (Hierarchy.Cores) are normalized where they are
// consumed — nodeConfig and Fingerprint — not mutated here.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("%w: Nodes must be positive", ErrInvalidConfig)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("%w: CoresPerNode must be positive", ErrInvalidConfig)
	case c.MeasureInstructions == 0:
		return fmt.Errorf("%w: MeasureInstructions must be positive", ErrInvalidConfig)
	case c.WarmupInstructions > math.MaxUint64-c.MeasureInstructions:
		return fmt.Errorf("%w: WarmupInstructions+MeasureInstructions overflows uint64", ErrInvalidConfig)
	case c.CycleTime == 0:
		return fmt.Errorf("%w: CycleTime must be positive", ErrInvalidConfig)
	case c.IssueWidth <= 0:
		return fmt.Errorf("%w: IssueWidth must be positive", ErrInvalidConfig)
	case c.MaxOutstanding <= 0:
		return fmt.Errorf("%w: MaxOutstanding must be positive", ErrInvalidConfig)
	case c.STUEntries <= 0 || c.STUWays <= 0:
		return fmt.Errorf("%w: STU geometry invalid", ErrInvalidConfig)
	}
	switch {
	case c.CoreModel != "" && c.CoreModel != CoreInOrder && c.CoreModel != CoreOoO:
		return fmt.Errorf("%w: unknown CoreModel %q (have %q, %q)", ErrInvalidConfig, c.CoreModel, CoreInOrder, CoreOoO)
	case c.CoreModel == CoreOoO && c.WindowSize <= 0:
		return fmt.Errorf("%w: CoreModel %q requires WindowSize >= 1 ops", ErrInvalidConfig, CoreOoO)
	case c.CoreModel == CoreOoO && c.SchedulerLatency < 0:
		return fmt.Errorf("%w: SchedulerLatency must be non-negative (cycles)", ErrInvalidConfig)
	case c.CoreModel != CoreOoO && (c.WindowSize != 0 || c.SchedulerLatency != 0):
		return fmt.Errorf("%w: WindowSize/SchedulerLatency require CoreModel %q", ErrInvalidConfig, CoreOoO)
	}
	if _, err := workload.Get(c.Benchmark); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	switch {
	case c.Tenants < 0 || c.Tenants > node.MaxTenants:
		return fmt.Errorf("%w: Tenants %d out of [0, %d]", ErrInvalidConfig, c.Tenants, node.MaxTenants)
	case c.Tenants > c.Nodes*c.CoresPerNode:
		return fmt.Errorf("%w: Tenants %d exceeds total cores %d (a tenant would own no core)",
			ErrInvalidConfig, c.Tenants, c.Nodes*c.CoresPerNode)
	case c.BrokerShards < 0 || c.BrokerShards > c.Nodes:
		return fmt.Errorf("%w: BrokerShards %d out of [0, Nodes=%d]", ErrInvalidConfig, c.BrokerShards, c.Nodes)
	}
	if c.NoisyBenchmark != "" {
		if c.Tenants < 2 {
			return fmt.Errorf("%w: NoisyBenchmark requires Tenants >= 2 (got %d)", ErrInvalidConfig, c.Tenants)
		}
		if _, err := workload.Get(c.NoisyBenchmark); err != nil {
			return fmt.Errorf("%w: NoisyBenchmark: %w", ErrInvalidConfig, err)
		}
	}
	switch {
	case !workload.ValidPattern(c.Pattern):
		return fmt.Errorf("%w: unknown Pattern %q (have %v)", ErrInvalidConfig, c.Pattern, workload.Patterns())
	case c.PatternDegree < 0:
		return fmt.Errorf("%w: PatternDegree must be non-negative", ErrInvalidConfig)
	case c.PatternDegree > 0 && c.Pattern == "":
		return fmt.Errorf("%w: PatternDegree requires a Pattern", ErrInvalidConfig)
	case c.PrefetchStreams < 0 || c.PrefetchDegree < 0 || c.PrefetchThreshold < 0:
		return fmt.Errorf("%w: prefetch parameters must be non-negative", ErrInvalidConfig)
	case (c.PrefetchDegree > 0 || c.PrefetchThreshold > 0) && c.PrefetchStreams == 0:
		return fmt.Errorf("%w: prefetch knobs require PrefetchStreams > 0", ErrInvalidConfig)
	case c.TraceID != "" && c.Pattern != "":
		return fmt.Errorf("%w: TraceID and Pattern are mutually exclusive (a replay does not synthesize)", ErrInvalidConfig)
	}
	if err := c.Layout.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidConfig, err)
	}
	return nil
}

// tenantFor returns the tenant of core ci on node ni (both 0-based):
// round-robin over the global node-major core index, so tenants interleave
// across nodes and every tenant gets cores on as many nodes as possible.
func (c Config) tenantFor(ni, ci int) uint8 {
	if c.Tenants <= 1 {
		return 0
	}
	return uint8((ni*c.CoresPerNode + ci) % c.Tenants)
}

// benchmarkFor returns the workload a given tenant runs: NoisyBenchmark for
// tenant 0 when the noisy-neighbor mix is on, Benchmark otherwise.
func (c Config) benchmarkFor(tenant uint8) string {
	if tenant == 0 && c.NoisyBenchmark != "" {
		return c.NoisyBenchmark
	}
	return c.Benchmark
}

// brokerShards returns the effective shard count (0 normalizes to 1).
func (c Config) brokerShards() int {
	if c.BrokerShards <= 0 {
		return 1
	}
	return c.BrokerShards
}

// stuOrg maps a scheme to its STU organization (E-FAM has no STU).
func stuOrg(s Scheme) stu.Organization {
	switch s {
	case DeACTW:
		return stu.OrgDeACTW
	case DeACTN:
		return stu.OrgDeACTN
	default:
		return stu.OrgIFAM
	}
}

// nodeConfig derives the per-node configuration.
func (c Config) nodeConfig(id uint16) node.Config {
	h := c.Hierarchy
	h.Cores = c.CoresPerNode
	return node.Config{
		ID:          id,
		Cores:       c.CoresPerNode,
		Scheme:      c.Scheme,
		Layout:      c.Layout,
		LocalEveryN: c.LocalEveryN,
		CycleTime:   c.CycleTime,
		L1Lat:       c.L1Lat, L2Lat: c.L2Lat, L3Lat: c.L3Lat, TLBL2Lat: c.TLBL2Lat,
		Hierarchy: h,
		MMU:       c.MMU,
		DRAM:      c.DRAMCfg,
		STU: stu.Config{
			Entries: c.STUEntries, Ways: c.STUWays, Org: stuOrg(c.Scheme),
			ACMBits: c.Layout.ACMBits, PairsPerWay: c.PairsPerWay,
			PTWCacheEntries: c.MMU.PTWEntries, LookupTime: c.STULookup,
			TrustReads: c.TrustReads,
		},
		Translator: translator.Config{
			CacheBytes:   c.TranslationCacheBytes,
			Outstanding:  c.Outstanding,
			TagMatchTime: c.CycleTime,
		},
		Prefetch: node.PrefetchConfig{
			Streams:   c.PrefetchStreams,
			Degree:    c.PrefetchDegree,
			Threshold: c.PrefetchThreshold,
		},
		Seed: c.Seed + int64(id)*1000,
	}
}
