package core

import (
	"context"
	"testing"
)

// benchRunConfig is the BenchmarkCoreRun scale: one core, no warmup, a
// measured phase long enough that steady-state scheduling dominates system
// construction.
func benchRunConfig(scheme Scheme) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = "mcf"
	cfg.CoresPerNode = 1
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 30_000
	return cfg
}

// BenchmarkCoreRun measures one full pooled run — the unit of work the
// experiment Runner schedules hundreds of times per report: each worker
// slot holds a SystemPool, so construction memory recycles across
// consecutive runs exactly as it does here. allocs/op and ns/op are the
// acceptance numbers for the allocation-free engine plus arena reuse (the
// first iteration populates the pool; steady state is what the counters
// converge to).
func BenchmarkCoreRun(b *testing.B) {
	for _, scheme := range []Scheme{IFAM, DeACTN} {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := benchRunConfig(scheme)
			ctx := context.Background()
			pool := NewSystemPool()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(ctx, cfg, WithPool(pool)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoreRunOoO is BenchmarkCoreRun under the out-of-order timing
// model (32-entry window, 2-cycle scheduler). The OoO scheduler adds three
// scalar fields to the core and allocates nothing per instruction:
// allocs/op must converge to the same per-run bookkeeping floor as the
// in-order BenchmarkCoreRun, independent of the instruction count.
func BenchmarkCoreRunOoO(b *testing.B) {
	for _, scheme := range []Scheme{IFAM, DeACTN} {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := benchRunConfig(scheme)
			cfg.CoreModel = CoreOoO
			cfg.WindowSize = 32
			cfg.SchedulerLatency = 2
			ctx := context.Background()
			pool := NewSystemPool()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(ctx, cfg, WithPool(pool)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotFork quantifies warmup forking: "cold" simulates the
// full warmup+measure run, "forked" restores the shared warmup snapshot
// and simulates only the measured phase. With a warmup 4× the measured
// length (the shape of a MeasureInstructions sweep sharing one prefix),
// forked ns/op is the per-sweep-point cost after the one-time warmup —
// the wall-clock reduction the Runner's ShareWarmup mode delivers.
func BenchmarkSnapshotFork(b *testing.B) {
	cfg := benchRunConfig(DeACTN)
	cfg.WarmupInstructions = 40_000
	cfg.MeasureInstructions = 10_000
	ctx := context.Background()

	var snap *Snapshot
	if _, err := Run(ctx, cfg, WithWarmupHook(func(s *System) { snap = s.Snapshot() })); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		pool := NewSystemPool()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(ctx, cfg, WithPool(pool)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forked", func(b *testing.B) {
		pool := NewSystemPool()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(ctx, cfg, WithPool(pool), WithSnapshot(snap)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
