package core

import (
	"context"
	"testing"
)

// benchRunConfig is the BenchmarkCoreRun scale: one core, no warmup, a
// measured phase long enough that steady-state scheduling dominates system
// construction.
func benchRunConfig(scheme Scheme) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = "mcf"
	cfg.CoresPerNode = 1
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 30_000
	return cfg
}

// BenchmarkCoreRun measures one full core.Run — the unit of work the
// experiment Runner schedules hundreds of times per report. allocs/op and
// ns/op here are the acceptance numbers for the allocation-free engine.
func BenchmarkCoreRun(b *testing.B) {
	for _, scheme := range []Scheme{IFAM, DeACTN} {
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := benchRunConfig(scheme)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Run(ctx, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
