package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"
)

// leafField identifies one exported leaf field of Config by its
// FieldByIndex chain.
type leafField struct {
	path  string
	index []int
}

// collectLeaves enumerates every exported leaf field of a struct type,
// recursing into nested structs, so the perturbation tests below cover new
// Config fields automatically.
func collectLeaves(t *testing.T, typ reflect.Type, prefix string, index []int, out *[]leafField) {
	t.Helper()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if !f.IsExported() {
			t.Fatalf("unexported field %s.%s in Config: Fingerprint cannot cover it", prefix, f.Name)
		}
		idx := append(append([]int{}, index...), i)
		path := prefix + "." + f.Name
		if f.Type.Kind() == reflect.Struct {
			collectLeaves(t, f.Type, path, idx, out)
			continue
		}
		*out = append(*out, leafField{path: path, index: idx})
	}
}

// perturb returns a copy of cfg with the given leaf field changed to a
// different valid-kind value.
func perturb(t *testing.T, cfg Config, lf leafField) Config {
	t.Helper()
	v := reflect.ValueOf(&cfg).Elem().FieldByIndex(lf.index)
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	default:
		t.Fatalf("field %s has kind %s: teach perturb (and Fingerprint) about it", lf.path, v.Kind())
	}
	return cfg
}

func TestFingerprintEqualConfigsHashEqual(t *testing.T) {
	a, b := DefaultConfig(), DefaultConfig()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical configs fingerprint differently")
	}
	// The fingerprint must be a pure function of the value, not of call
	// history.
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not stable across calls")
	}
}

// TestFingerprintCoversEveryField perturbs every exported leaf field of
// Config (reflection-driven, so a newly added field cannot be silently
// omitted) and requires the fingerprint to change — except for fields the
// normalization deliberately derives from others.
func TestFingerprintCoversEveryField(t *testing.T) {
	// Hierarchy.Cores is overwritten with CoresPerNode before hashing (and
	// before simulating), so perturbing it must NOT change run identity.
	// Tenants and BrokerShards normalize 0 to 1 — both spellings mean
	// "single-tenant" / "one shard" and simulate identically — and this
	// test perturbs them from their default 0 to 1, so the fingerprint must
	// stay put. (Any value ≥ 2 does change identity; see
	// TestFingerprintTenancyFieldsDistinct.)
	normalized := map[string]bool{
		"Config.Hierarchy.Cores": true,
		"Config.Tenants":         true,
		"Config.BrokerShards":    true,
	}

	base := DefaultConfig()
	baseFP := base.Fingerprint()
	var leaves []leafField
	collectLeaves(t, reflect.TypeOf(base), "Config", nil, &leaves)
	if len(leaves) < 30 {
		t.Fatalf("only %d leaf fields found; Config reflection walk broken", len(leaves))
	}
	seen := map[string]string{"": baseFP}
	for _, lf := range leaves {
		got := perturb(t, base, lf).Fingerprint()
		if normalized[lf.path] {
			if got != baseFP {
				t.Errorf("%s is normalized away but changed the fingerprint", lf.path)
			}
			continue
		}
		if got == baseFP {
			t.Errorf("perturbing %s did not change the fingerprint", lf.path)
		}
		// No two single-field perturbations may alias each other either.
		if prev, dup := seen[got]; dup {
			t.Errorf("perturbing %s aliases perturbing %q", lf.path, prev)
		}
		seen[got] = lf.path
	}
}

// TestFingerprintTenancyFieldsDistinct pins the tenancy fields' identity
// semantics: 0 and 1 merge (both mean "feature off"), real values split,
// and the noisy-benchmark choice is part of run identity.
func TestFingerprintTenancyFieldsDistinct(t *testing.T) {
	mk := func(tenants, shards int, noisy string) string {
		c := DefaultConfig()
		c.Tenants, c.BrokerShards, c.NoisyBenchmark = tenants, shards, noisy
		return c.Fingerprint()
	}
	if mk(0, 0, "") != mk(1, 1, "") {
		t.Error("Tenants/BrokerShards 0 and 1 split run identity; they simulate identically")
	}
	if mk(2, 0, "") != mk(2, 1, "") {
		t.Error("BrokerShards 0 vs 1 split identity under tenancy")
	}
	distinct := []string{mk(0, 0, ""), mk(2, 0, ""), mk(4, 0, ""), mk(2, 0, "canl"), mk(2, 2, "")}
	fps := map[string]int{}
	for i, fp := range distinct {
		if j, dup := fps[fp]; dup {
			t.Errorf("tenancy variants %d and %d alias", i, j)
		}
		fps[fp] = i
	}
}

// TestFingerprintNoAliasingAcrossSweepPoints pins the dedup property the
// Runner relies on: the configs the paper's sweeps actually submit are
// pairwise distinct unless they are value-identical.
func TestFingerprintNoAliasingAcrossSweepPoints(t *testing.T) {
	mk := func(mutate func(*Config)) Config {
		c := DefaultConfig()
		if mutate != nil {
			mutate(&c)
		}
		return c
	}
	variants := []Config{
		mk(nil),
		mk(func(c *Config) { c.STUEntries = 512 }),
		mk(func(c *Config) { c.STUWays = 4 }),
		mk(func(c *Config) { c.FabricLatency = 100_000 }),
		mk(func(c *Config) { c.Nodes = 8 }),
		mk(func(c *Config) { c.Layout.ACMBits = 8 }),
		mk(func(c *Config) { c.PairsPerWay = 2; c.Layout.ACMBits = 8 }),
		mk(func(c *Config) { c.TrustReads = true }),
		mk(func(c *Config) { c.Seed = 43 }),
		mk(func(c *Config) { c.Benchmark = "dc" }),
	}
	fps := map[string]int{}
	for i, v := range variants {
		fp := v.Fingerprint()
		if j, dup := fps[fp]; dup {
			t.Fatalf("sweep variants %d and %d alias", i, j)
		}
		fps[fp] = i
	}
	// And a sweep point that coincides with the default config must merge
	// with it — that is the whole point of config-derived identity.
	if mk(func(c *Config) { c.STUEntries = 1024 }).Fingerprint() != mk(nil).Fingerprint() {
		t.Fatal("value-identical configs did not merge")
	}
}

func TestValidateSentinelErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nodes", func(c *Config) { c.Nodes = 0 }},
		{"cores", func(c *Config) { c.CoresPerNode = -1 }},
		{"measure", func(c *Config) { c.MeasureInstructions = 0 }},
		{"overflow", func(c *Config) {
			c.WarmupInstructions = math.MaxUint64 - c.MeasureInstructions + 1
		}},
		{"cycle", func(c *Config) { c.CycleTime = 0 }},
		{"issue", func(c *Config) { c.IssueWidth = 0 }},
		{"outstanding", func(c *Config) { c.MaxOutstanding = 0 }},
		{"stu", func(c *Config) { c.STUEntries = 0 }},
		{"bench", func(c *Config) { c.Benchmark = "nope" }},
		{"layout", func(c *Config) { c.Layout.ACMBits = 9 }},
		{"tenants-range", func(c *Config) { c.Tenants = 9 }},
		{"tenants-exceed-cores", func(c *Config) { c.Nodes, c.CoresPerNode, c.Tenants = 1, 4, 5 }},
		{"noisy-without-tenants", func(c *Config) { c.NoisyBenchmark = "canl" }},
		{"noisy-unknown", func(c *Config) { c.Tenants, c.NoisyBenchmark = 2, "nope" }},
		{"shards-exceed-nodes", func(c *Config) { c.Nodes, c.BrokerShards = 1, 2 }},
		{"core-model-unknown", func(c *Config) { c.CoreModel = "speculative" }},
		{"ooo-without-window", func(c *Config) { c.CoreModel = CoreOoO }},
		{"ooo-negative-latency", func(c *Config) {
			c.CoreModel, c.WindowSize, c.SchedulerLatency = CoreOoO, 8, -1
		}},
		{"window-without-ooo", func(c *Config) { c.WindowSize = 8 }},
		{"latency-without-ooo", func(c *Config) { c.SchedulerLatency = 2 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("%s: error %v does not wrap ErrInvalidConfig", tc.name, err)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

// TestStaleHierarchyCoresIsIgnored is the regression test for the old dead
// store in Validate: a Config carrying a stale Hierarchy.Cores must build
// the hierarchy for CoresPerNode anyway, produce the same result as a zero
// Cores field, and fingerprint identically.
func TestStaleHierarchyCoresIsIgnored(t *testing.T) {
	clean := quickConfig(DeACTN, "mcf")
	clean.WarmupInstructions, clean.MeasureInstructions = 5_000, 5_000

	stale := clean
	stale.Hierarchy.Cores = 7 // wrong on purpose; CoresPerNode is 2

	if clean.Fingerprint() != stale.Fingerprint() {
		t.Fatal("stale Hierarchy.Cores split run identity")
	}
	a, err := Run(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), stale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("stale Hierarchy.Cores changed the simulation")
	}
}

func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, quickConfig(DeACTN, "mcf"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestRunCancelledMidSimulation: cancelling while the event loop drains
// must abort at the next stride, well before the full run would finish.
func TestRunCancelledMidSimulation(t *testing.T) {
	cfg := quickConfig(DeACTN, "canl")
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 5_000_000 // many seconds uncancelled

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; stride checks not reached", elapsed)
	}
}

// TestRunDeterministicUnderStrideSlicing guards the byte-identity claim:
// the stride-sliced event loop must produce exactly the result the
// pre-context engine drain did, which TestRunDeterministicFixedSeed alone
// cannot see (it compares the sliced loop only with itself). The fixture
// values were captured from the unsliced Run at the commit before the
// context migration; if slicing ever perturbs event order or the final
// engine clock, this fails loudly.
func TestRunDeterministicUnderStrideSlicing(t *testing.T) {
	cfg := quickConfig(IFAM, "mcf")
	cfg.WarmupInstructions, cfg.MeasureInstructions = 2_000, 2_000
	r, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprintf("Duration=%d Instructions=%d MemOps=%d FAMAT=%d FAMData=%d IPC=%.17g",
		r.Duration, r.Instructions, r.MemOps, r.FAMAT, r.FAMData, r.IPC)
	const want = "Duration=552959500 Instructions=3998 MemOps=1346 FAMAT=984 FAMData=903 IPC=0.0036150929679298394"
	if got != want {
		t.Fatalf("sliced event loop drifted from the unsliced fixture:\ngot  %s\nwant %s", got, want)
	}
}
