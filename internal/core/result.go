package core

import (
	"fmt"

	"deact/internal/node"
	"deact/internal/sim"
	"deact/internal/stu"
	"deact/internal/translator"
)

// Result holds the steady-state metrics of one run (warmup excluded).
type Result struct {
	Scheme    Scheme
	Benchmark string
	Nodes     int

	// Duration is the measured-phase wall time (simulated).
	Duration sim.Time
	// Instructions retired across all cores during measurement.
	Instructions uint64
	// MemOps issued across all cores during measurement.
	MemOps uint64
	// IPC is aggregate instructions per core-cycle (the paper's
	// performance metric, §IV).
	IPC float64
	// MPKI is L3 (off-chip) misses per kilo-instruction — comparable to
	// Table III's selection metric.
	MPKI float64

	// FAMAT / FAMData split the requests observed at FAM into address
	// translation and demand traffic (Figures 4 and 11).
	FAMAT   uint64
	FAMData uint64
	// ATFraction = FAMAT / (FAMAT + FAMData).
	ATFraction float64

	// TranslationHitRate is the FAM translation hit rate (Figure 10):
	// the STU cache for I-FAM, the in-DRAM translation cache for DeACT,
	// and 1 for E-FAM (no system-level translation exists).
	TranslationHitRate float64
	// ACMHitRate is the access-control metadata hit rate (Figure 9).
	ACMHitRate float64

	// NodeStats, STUStats and TranslatorStats are the per-node raw
	// counter deltas.
	NodeStats       []node.Stats
	STUStats        []stu.Stats
	TranslatorStats []translator.Stats

	// FAMReads/FAMWrites are device-level access deltas.
	FAMReads, FAMWrites uint64
	// FabricPackets is the interconnect traffic delta.
	FabricPackets uint64
}

// diffNode subtracts counters (and, bucket-wise, the per-tenant latency
// histograms), so the result reflects the measured phase only.
func diffNode(a, b node.Stats) node.Stats {
	d := node.Stats{
		NodePTWalks: a.NodePTWalks - b.NodePTWalks,
		OSFaults:    a.OSFaults - b.OSFaults,
		FAMData:     a.FAMData - b.FAMData,
		FAMAT:       a.FAMAT - b.FAMAT,
		DRAMData:    a.DRAMData - b.DRAMData,
		Writebacks:  a.Writebacks - b.Writebacks,
		Denied:      a.Denied - b.Denied,
		Prefetch:    a.Prefetch.Sub(b.Prefetch),
	}
	for i := range d.Tenants {
		d.Tenants[i] = a.Tenants[i].Sub(b.Tenants[i])
	}
	return d
}

func diffSTU(a, b stu.Stats) stu.Stats {
	return stu.Stats{
		TranslationHits:   a.TranslationHits - b.TranslationHits,
		TranslationMisses: a.TranslationMisses - b.TranslationMisses,
		ACMHits:           a.ACMHits - b.ACMHits,
		ACMMisses:         a.ACMMisses - b.ACMMisses,
		ACMFetches:        a.ACMFetches - b.ACMFetches,
		BitmapFetches:     a.BitmapFetches - b.BitmapFetches,
		PTWSteps:          a.PTWSteps - b.PTWSteps,
		Walks:             a.Walks - b.Walks,
		Denied:            a.Denied - b.Denied,
		BrokerFaults:      a.BrokerFaults - b.BrokerFaults,
		TrustedReads:      a.TrustedReads - b.TrustedReads,
	}
}

func diffTr(a, b translator.Stats) translator.Stats {
	return translator.Stats{
		Hits:         a.Hits - b.Hits,
		Misses:       a.Misses - b.Misses,
		DRAMReads:    a.DRAMReads - b.DRAMReads,
		DRAMWrites:   a.DRAMWrites - b.DRAMWrites,
		Invalidates:  a.Invalidates - b.Invalidates,
		SlotStallsPS: a.SlotStallsPS - b.SlotStallsPS,
	}
}

func ratio(n, d uint64) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}

// buildResult converts a before/after counter pair to a Result.
func (c Config) buildResult(before, after counters) Result {
	r := Result{
		Scheme:        c.Scheme,
		Benchmark:     c.Benchmark,
		Nodes:         c.Nodes,
		Duration:      after.time - before.time,
		Instructions:  after.instrs - before.instrs,
		MemOps:        after.memOps - before.memOps,
		FAMReads:      after.famReads - before.famReads,
		FAMWrites:     after.famWrites - before.famWrites,
		FabricPackets: after.fabricPackets - before.fabricPackets,
	}
	for i := range after.nodes {
		r.NodeStats = append(r.NodeStats, diffNode(after.nodes[i], before.nodes[i]))
		r.STUStats = append(r.STUStats, diffSTU(after.stus[i], before.stus[i]))
		r.TranslatorStats = append(r.TranslatorStats, diffTr(after.trs[i], before.trs[i]))
	}

	var famAT, famData uint64
	for _, ns := range r.NodeStats {
		famAT += ns.FAMAT
		famData += ns.FAMData
	}
	r.FAMAT, r.FAMData = famAT, famData
	r.ATFraction = ratio(famAT, famAT+famData)

	if r.Duration > 0 {
		cycles := float64(r.Duration) / float64(c.CycleTime)
		r.IPC = float64(r.Instructions) / cycles
	}
	l3 := after.l3Misses - before.l3Misses
	if r.Instructions > 0 {
		r.MPKI = float64(l3) / float64(r.Instructions) * 1000
	}

	switch {
	case c.Scheme == EFAM:
		r.TranslationHitRate = 1
		r.ACMHitRate = 1
	case c.Scheme == IFAM:
		var h, m, ah, am uint64
		for _, st := range r.STUStats {
			h += st.TranslationHits
			m += st.TranslationMisses
			ah += st.ACMHits
			am += st.ACMMisses
		}
		r.TranslationHitRate = ratio(h, h+m)
		r.ACMHitRate = ratio(ah, ah+am)
	default:
		var h, m uint64
		for _, tr := range r.TranslatorStats {
			h += tr.Hits
			m += tr.Misses
		}
		r.TranslationHitRate = ratio(h, h+m)
		var ah, am uint64
		for _, st := range r.STUStats {
			ah += st.ACMHits
			am += st.ACMMisses
		}
		r.ACMHitRate = ratio(ah, ah+am)
	}
	return r
}

// String summarizes the result in one line.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s nodes=%d IPC=%.4f MPKI=%.1f AT=%.1f%% xlate-hit=%.1f%% acm-hit=%.1f%%",
		r.Benchmark, r.Scheme, r.Nodes, r.IPC, r.MPKI,
		r.ATFraction*100, r.TranslationHitRate*100, r.ACMHitRate*100)
}

// TenantLatency aggregates tenant t's measured-phase latency distributions
// across all nodes (merge order cannot matter: histogram merging is
// associative and commutative). Tenants that tagged no traffic return
// empty distributions.
func (r Result) TenantLatency(t int) node.TenantLatency {
	var agg node.TenantLatency
	if t < 0 || t >= node.MaxTenants {
		return agg
	}
	for i := range r.NodeStats {
		agg.Merge(r.NodeStats[i].Tenants[t])
	}
	return agg
}

// SteadyLatency merges the latency distributions of every tenant except
// tenant 0 — the "victims" in the noisy-neighbor mix, where tenant 0 is
// the thrashing tenant. With fewer than two tenants it returns tenant 0's
// distributions (everything).
func (r Result) SteadyLatency(tenants int) node.TenantLatency {
	if tenants < 2 {
		return r.TenantLatency(0)
	}
	if tenants > node.MaxTenants {
		tenants = node.MaxTenants
	}
	var agg node.TenantLatency
	for t := 1; t < tenants; t++ {
		agg.Merge(r.TenantLatency(t))
	}
	return agg
}

// Speedup returns r's performance relative to base (IPC ratio), the metric
// behind Figures 3, 12, 13, 14, 15 and 16.
func (r Result) Speedup(base Result) float64 {
	if base.IPC == 0 {
		return 0
	}
	return r.IPC / base.IPC
}
