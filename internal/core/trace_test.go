package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"deact/internal/trace"
)

// recordRun executes cfg with a recorder attached and returns the Result
// and the decoded trace.
func recordRun(t *testing.T, cfg Config) (Result, *trace.Trace) {
	t.Helper()
	rec := trace.NewRecorder(cfg.Benchmark, cfg.Nodes*cfg.CoresPerNode)
	res, err := Run(context.Background(), cfg, WithTraceRecorder(rec))
	if err != nil {
		t.Fatalf("recording run: %v", err)
	}
	tr, err := trace.Decode(rec.Encode())
	if err != nil {
		t.Fatalf("decode recording: %v", err)
	}
	return res, tr
}

// TestRecordReplayBitIdentical: replaying a recording through the same
// machine reproduces the recorded run's Result exactly — the contract the
// CI trace round-trip smoke checks end to end via deact-sim stdout.
func TestRecordReplayBitIdentical(t *testing.T) {
	for _, scheme := range []Scheme{IFAM, DeACTN} {
		cfg := quickConfig(scheme, "canl")
		cfg.WarmupInstructions = 5_000
		cfg.MeasureInstructions = 5_000
		recorded, tr := recordRun(t, cfg)

		replayCfg := cfg
		replayCfg.TraceID = tr.ID()
		replayed, err := Run(context.Background(), replayCfg, WithTrace(tr))
		if err != nil {
			t.Fatalf("%v: replay: %v", scheme, err)
		}
		if !reflect.DeepEqual(recorded, replayed) {
			t.Fatalf("%v: replay diverged from recording:\nrec: %+v\nrep: %+v", scheme, recorded, replayed)
		}
	}
}

// TestReplayRecordingIsDrawIdentical: attaching a recorder does not
// perturb the run — a tapped run's Result equals an untapped one's.
func TestReplayRecordingIsDrawIdentical(t *testing.T) {
	cfg := quickConfig(DeACTN, "mcf")
	cfg.WarmupInstructions = 5_000
	cfg.MeasureInstructions = 5_000
	plain, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	recorded, _ := recordRun(t, cfg)
	if !reflect.DeepEqual(plain, recorded) {
		t.Fatalf("recording perturbed the run:\nplain: %+v\ntapped: %+v", plain, recorded)
	}
}

// TestReplaySnapshotFork: a replayed run supports warmup snapshot forking
// like a generated one — fork equals cold, bit for bit.
func TestReplaySnapshotFork(t *testing.T) {
	cfg := quickConfig(DeACTN, "sp")
	cfg.WarmupInstructions = 5_000
	cfg.MeasureInstructions = 5_000
	_, tr := recordRun(t, cfg)

	cfg.TraceID = tr.ID()
	var snap *Snapshot
	cold, err := Run(context.Background(), cfg, WithTrace(tr),
		WithWarmupHook(func(s *System) { snap = s.Snapshot() }))
	if err != nil {
		t.Fatalf("cold replay: %v", err)
	}
	if snap == nil {
		t.Fatal("warmup hook never fired")
	}
	forked, err := Run(context.Background(), cfg, WithTrace(tr), WithSnapshot(snap))
	if err != nil {
		t.Fatalf("forked replay: %v", err)
	}
	if !reflect.DeepEqual(cold, forked) {
		t.Fatalf("forked replay diverged from cold:\ncold: %+v\nfork: %+v", cold, forked)
	}
}

// TestReplayGuards: the run/trace pairing is validated up front — both
// options at once, a TraceID without a trace, a trace without a TraceID, a
// mismatched ID and a core-count mismatch all fail before simulating.
func TestReplayGuards(t *testing.T) {
	cfg := quickConfig(DeACTN, "canl")
	cfg.WarmupInstructions = 2_000
	cfg.MeasureInstructions = 2_000
	_, tr := recordRun(t, cfg)
	rec := trace.NewRecorder(cfg.Benchmark, cfg.Nodes*cfg.CoresPerNode)

	run := func(c Config, opts ...RunOption) error {
		_, err := Run(context.Background(), c, opts...)
		return err
	}
	if err := run(cfg, WithTrace(tr), WithTraceRecorder(rec)); err == nil {
		t.Error("record+replay together accepted")
	}
	idCfg := cfg
	idCfg.TraceID = tr.ID()
	if err := run(idCfg); err == nil {
		t.Error("TraceID without WithTrace accepted")
	}
	if err := run(cfg, WithTrace(tr)); err == nil {
		t.Error("WithTrace without Config.TraceID accepted")
	}
	wrongID := cfg
	wrongID.TraceID = "0123456789abcdef0123456789abcdef"
	if err := run(wrongID, WithTrace(tr)); err == nil {
		t.Error("mismatched TraceID accepted")
	}
	narrow := idCfg
	narrow.CoresPerNode = 1 // trace was recorded with 2
	if err := run(narrow, WithTrace(tr)); err == nil {
		t.Error("core-count mismatch accepted")
	}
	wideRec := trace.NewRecorder(cfg.Benchmark, 99)
	if err := run(cfg, WithTraceRecorder(wideRec)); err == nil {
		t.Error("recorder stream-count mismatch accepted")
	}
}

// TestValidateWorkloadV2Fields: the new Config fields reject inconsistent
// values with ErrInvalidConfig like every other validation failure.
func TestValidateWorkloadV2Fields(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Pattern = "spiral" },
		func(c *Config) { c.PatternDegree = -1 },
		func(c *Config) { c.PatternDegree = 4 }, // degree without a pattern
		func(c *Config) { c.PrefetchStreams = -1 },
		func(c *Config) { c.PrefetchDegree = -2 },
		func(c *Config) { c.PrefetchThreshold = -1 },
		func(c *Config) { c.PrefetchDegree = 2 }, // prefetch knobs without streams
		func(c *Config) { c.TraceID = "abc"; c.Pattern = "stencil" },
	}
	for i, m := range mutations {
		cfg := DefaultConfig()
		m(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("mutation %d validated", i)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("mutation %d: error %v is not ErrInvalidConfig", i, err)
		}
	}
	good := DefaultConfig()
	good.Pattern = "pointer-chase"
	good.PatternDegree = 8
	good.PrefetchStreams = 64
	good.PrefetchDegree = 2
	good.PrefetchThreshold = 2
	if err := good.Validate(); err != nil {
		t.Fatalf("valid v2 config rejected: %v", err)
	}
}

// TestPatternConfigsRun: every v2 pattern runs end to end through the full
// machine, deterministically.
func TestPatternConfigsRun(t *testing.T) {
	for _, pattern := range []string{"pointer-chase", "graph-frontier", "stencil"} {
		cfg := quickConfig(DeACTN, "mcf")
		cfg.Pattern = pattern
		cfg.WarmupInstructions = 4_000
		cfg.MeasureInstructions = 4_000
		a, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		b, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: nondeterministic", pattern)
		}
		if a.MemOps == 0 {
			t.Fatalf("%s: no memory traffic", pattern)
		}
	}
}

// TestPrefetchConfigRuns: enabling the prefetcher changes behaviour (stats
// appear), stays deterministic, and leaving it off matches the zero config
// exactly.
func TestPrefetchConfigRuns(t *testing.T) {
	base := quickConfig(DeACTN, "mcf")
	base.Pattern = "stencil"
	base.WarmupInstructions = 4_000
	base.MeasureInstructions = 4_000

	off, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range off.NodeStats {
		if ns.Prefetch.Observed != 0 || ns.Prefetch.Issued != 0 {
			t.Fatalf("disabled prefetcher has stats: %+v", ns.Prefetch)
		}
	}

	on := base
	on.PrefetchStreams = 64
	on.PrefetchDegree = 4
	on.PrefetchThreshold = 2
	a, err := Run(context.Background(), on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), on)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("prefetch-enabled run nondeterministic")
	}
	var issued uint64
	for _, ns := range a.NodeStats {
		issued += ns.Prefetch.Issued
	}
	if issued == 0 {
		t.Fatal("stencil under a degree-4 prefetcher issued nothing")
	}
	if on.Fingerprint() == base.Fingerprint() {
		t.Fatal("prefetch config change did not move the config fingerprint")
	}
}
