package node

import (
	"testing"

	"deact/internal/addr"
	"deact/internal/workload"
)

// pfOp is op() with a PC stamp, the trigger the prefetcher keys on.
func pfOp(a addr.VAddr, pc uint64) workload.Op {
	return workload.Op{Addr: a, PC: pc}
}

// TestPrefetcherObserve: the delta table confirms a stream only after
// Threshold consecutive same-delta accesses, resets on a delta change or a
// PC collision, and ignores repeats of the same block.
func TestPrefetcherObserve(t *testing.T) {
	p := newPrefetcher(PrefetchConfig{Streams: 16, Degree: 2, Threshold: 2})
	const pc = 0x40_0010
	if d := p.observe(pc, 100); d != 0 {
		t.Fatalf("first touch confirmed delta %d", d)
	}
	if d := p.observe(pc, 102); d != 0 {
		t.Fatalf("single stride confirmed delta %d", d)
	}
	if d := p.observe(pc, 104); d != 2 {
		t.Fatalf("second same stride: delta %d, want 2", d)
	}
	if d := p.observe(pc, 106); d != 2 {
		t.Fatalf("confirmed stream lost: delta %d, want 2", d)
	}
	// Same block twice: no delta, no state change.
	if d := p.observe(pc, 106); d != 0 {
		t.Fatalf("zero delta confirmed %d", d)
	}
	if d := p.observe(pc, 108); d != 2 {
		t.Fatalf("stream should survive a repeat: delta %d, want 2", d)
	}
	// Delta change: back to training.
	if d := p.observe(pc, 115); d != 0 {
		t.Fatalf("changed stride stayed confirmed: %d", d)
	}
	if d := p.observe(pc, 122); d != 7 {
		t.Fatalf("retrained stride: delta %d, want 7", d)
	}
	// A different PC mapping to the same slot evicts the entry.
	other := pc + uint64(len(p.tbl)) // same index, different tag
	if d := p.observe(other, 500); d != 0 {
		t.Fatal("colliding PC inherited a stream")
	}
	if d := p.observe(pc, 130); d != 0 {
		t.Fatal("evicted PC still confirmed")
	}
	// Negative strides confirm too.
	const pc2 = 0x40_0020
	p.observe(pc2, 1000)
	p.observe(pc2, 996)
	if d := p.observe(pc2, 992); d != -4 {
		t.Fatalf("descending stride: delta %d, want -4", d)
	}
}

// TestPrefetcherDefaults: zero Degree/Threshold resolve to 2, Streams
// rounds up to a power of two.
func TestPrefetcherDefaults(t *testing.T) {
	p := newPrefetcher(PrefetchConfig{Streams: 48})
	if len(p.tbl) != 64 || p.mask != 63 {
		t.Errorf("table size %d mask %d, want 64/63", len(p.tbl), p.mask)
	}
	if p.degree != 2 || p.threshold != 2 {
		t.Errorf("defaults degree=%d threshold=%d, want 2/2", p.degree, p.threshold)
	}
	if err := (PrefetchConfig{Streams: -1}).Validate(); err == nil {
		t.Error("negative Streams validated")
	}
	if (PrefetchConfig{}).Enabled() {
		t.Error("zero config enabled")
	}
}

// TestPrefetchDisabledByDefault: a node built with the zero PrefetchConfig
// has no table and records nothing, even for PC-stamped accesses.
func TestPrefetchDisabledByDefault(t *testing.T) {
	r := newRig(t, DeACTN)
	if r.n.pf != nil {
		t.Fatal("prefetcher built without configuration")
	}
	for i := 0; i < 20; i++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(i)*addr.BlockSize)
		if _, err := r.n.Access(0, 0, pfOp(va, 0x40_0010)); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.n.Stats().Prefetch; st != (PrefetchStats{}) {
		t.Fatalf("disabled prefetcher counted: %+v", st)
	}
}

// TestPrefetchIssuesOnStream: a strided PC-stable stream trains the table
// and injects prefetch traffic that shows up as real device reads.
func TestPrefetchIssuesOnStream(t *testing.T) {
	cfg := testConfig(1, DeACTN)
	cfg.Prefetch = PrefetchConfig{Streams: 16, Degree: 2, Threshold: 2}
	r := newRig(t, DeACTN)
	n, err := New(cfg, r.brk, r.n.fab, r.fam)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(i)*addr.BlockSize)
		if _, err := n.Access(0, 0, pfOp(va, 0x40_0010)); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats().Prefetch
	if st.Observed != 32 {
		t.Fatalf("Observed=%d, want 32", st.Observed)
	}
	if st.Issued == 0 {
		t.Fatalf("no prefetches issued on a unit-stride stream: %+v", st)
	}
	// PC 0 never trains.
	before := n.Stats().Prefetch.Observed
	if _, err := n.Access(0, 0, op(0x10_0000_0000, false)); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Prefetch.Observed != before {
		t.Fatal("PC 0 access was observed")
	}
}

// TestPrefetchStopsAtPageBoundary: candidates crossing the demand access's
// NP page are dropped and counted, never fetched.
func TestPrefetchStopsAtPageBoundary(t *testing.T) {
	cfg := testConfig(1, EFAM)
	cfg.Prefetch = PrefetchConfig{Streams: 16, Degree: 8, Threshold: 1}
	r := newRig(t, EFAM)
	n, err := New(cfg, r.brk, r.n.fab, r.fam)
	if err != nil {
		t.Fatal(err)
	}
	// Walk one virtual page in block strides; with degree 8 the candidates
	// run past the 64-block page well before the demand stream does.
	for i := 0; i < int(addr.PageSize/addr.BlockSize); i++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(i)*addr.BlockSize)
		if _, err := n.Access(0, 0, pfOp(va, 0x40_0010)); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats().Prefetch
	if st.PageStops == 0 {
		t.Fatalf("no page stops on a page-crossing stream: %+v", st)
	}
}

// TestPrefetchStateRoundTrip: the delta table is part of node snapshot
// state — capture, mutate, restore brings back the captured streams.
func TestPrefetchStateRoundTrip(t *testing.T) {
	cfg := testConfig(1, DeACTN)
	cfg.Prefetch = PrefetchConfig{Streams: 16, Degree: 2, Threshold: 2}
	r := newRig(t, DeACTN)
	n, err := New(cfg, r.brk, r.n.fab, r.fam)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(i)*addr.BlockSize)
		if _, err := n.Access(0, 0, pfOp(va, 0x40_0010)); err != nil {
			t.Fatal(err)
		}
	}
	var st State
	n.CaptureState(nil, &st)
	want := append([]pfEntry(nil), n.pf.tbl...)

	// Diverge: train a different PC, then restore.
	for i := 0; i < 8; i++ {
		va := addr.VAddr(0x10_0004_0000 + uint64(i)*2*addr.BlockSize)
		if _, err := n.Access(0, 0, pfOp(va, 0x40_0020)); err != nil {
			t.Fatal(err)
		}
	}
	n.RestoreState(&st)
	for i, e := range n.pf.tbl {
		if e != want[i] {
			t.Fatalf("entry %d after restore: %+v, want %+v", i, e, want[i])
		}
	}
}

// BenchmarkPrefetcher measures the per-access training cost; ReportAllocs
// plus the CI -benchmem smoke pin it at 0 allocs/op.
func BenchmarkPrefetcher(b *testing.B) {
	p := newPrefetcher(PrefetchConfig{Streams: 64, Degree: 4, Threshold: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.observe(uint64(0x40_0010+(i&7)*16), uint64(i))
	}
}
