package node

import (
	"deact/internal/addr"
	"deact/internal/arena"
	"deact/internal/cache"
	"deact/internal/memdev"
	"deact/internal/pagetable"
	"deact/internal/stu"
	"deact/internal/tlb"
	"deact/internal/translator"
)

// State is a Node's mutable state for core.System.Snapshot: local DRAM
// calendars, the cache hierarchy, per-core MMUs, the node page table, the
// scheme-specific translator/STU state, the OS allocator cursors, the
// direct NP→FAM backing table and the counters. The broker-owned FAM page
// table the STU walks is captured by the broker, not here.
type State struct {
	dram   memdev.State
	hier   cache.HierarchyState
	mmus   []tlb.MMUState
	pt     pagetable.State
	trans  translator.State
	stu    stu.State
	osa    osAllocator
	direct []addr.FPage
	pf     []pfEntry
	stats  Stats
}

// CaptureState captures the node into st, reusing st's storage where it
// fits and drawing large copies from a (nil allocates normally).
func (n *Node) CaptureState(a *arena.Arena, st *State) {
	n.dram.CaptureState(&st.dram)
	n.hier.CaptureState(a, &st.hier)
	if cap(st.mmus) < len(n.mmus) {
		grown := make([]tlb.MMUState, len(n.mmus))
		copy(grown, st.mmus)
		st.mmus = grown
	}
	st.mmus = st.mmus[:len(n.mmus)]
	for i, m := range n.mmus {
		m.CaptureState(&st.mmus[i])
	}
	n.pt.CaptureState(a, &st.pt)
	if n.trans != nil {
		n.trans.CaptureState(a, &st.trans)
	}
	if n.stuU != nil {
		n.stuU.CaptureState(&st.stu)
	}
	st.osa = *n.osa
	st.direct = arena.CopyInto(a, "snap.node.direct", st.direct, n.direct)
	if n.pf != nil {
		st.pf = arena.CopyInto(a, "snap.node.pf", st.pf, n.pf.tbl)
	}
	st.stats = n.stats
}

// RestoreState rewinds the node to st. The node must be built from the
// configuration st was captured from.
func (n *Node) RestoreState(st *State) {
	n.dram.RestoreState(&st.dram)
	n.hier.RestoreState(&st.hier)
	if len(st.mmus) != len(n.mmus) {
		panic("node: RestoreState MMU count mismatch")
	}
	for i, m := range n.mmus {
		m.RestoreState(&st.mmus[i])
	}
	n.pt.RestoreState(&st.pt)
	if n.trans != nil {
		n.trans.RestoreState(&st.trans)
	}
	if n.stuU != nil {
		n.stuU.RestoreState(&st.stu)
	}
	*n.osa = st.osa
	n.direct = arena.Extend(n.direct[:0], len(st.direct))
	copy(n.direct, st.direct)
	if n.pf != nil {
		if len(st.pf) != len(n.pf.tbl) {
			panic("node: RestoreState prefetch table size mismatch")
		}
		copy(n.pf.tbl, st.pf)
	}
	n.stats = st.stats
}

// Release returns st's large copies to a for reuse by later captures.
func (st *State) Release(a *arena.Arena) {
	st.hier.Release(a)
	st.pt.Release(a)
	st.trans.Release(a)
	arena.Release(a, "snap.node.direct", st.direct)
	st.direct = nil
	arena.Release(a, "snap.node.pf", st.pf)
	st.pf = nil
}
