package node

import (
	"strings"
	"testing"

	"deact/internal/addr"
	"deact/internal/broker"
	"deact/internal/cache"
	"deact/internal/fabric"
	"deact/internal/memdev"
	"deact/internal/sim"
	"deact/internal/stu"
	"deact/internal/tlb"
	"deact/internal/translator"
	"deact/internal/workload"
)

func testLayout() addr.Layout {
	return addr.Layout{DRAMSize: 64 << 20, FAMZoneSize: 256 << 20, FAMSize: 1 << 30, ACMBits: 16}
}

func testConfig(id uint16, scheme Scheme) Config {
	org := stu.OrgIFAM
	switch scheme {
	case DeACTW:
		org = stu.OrgDeACTW
	case DeACTN:
		org = stu.OrgDeACTN
	}
	return Config{
		ID: id, Cores: 1, Scheme: scheme, Layout: testLayout(),
		LocalEveryN: 5,
		CycleTime:   500, // ps, 2GHz
		L1Lat:       sim.NS(1), L2Lat: sim.NS(4), L3Lat: sim.NS(10), TLBL2Lat: sim.NS(2),
		Hierarchy: cache.HierarchyConfig{Cores: 1, L1Size: 32 << 10, L1Ways: 8, L2Size: 256 << 10, L2Ways: 8, L3Size: 1 << 20, L3Ways: 16},
		MMU:       tlb.MMUConfig{L1Entries: 32, L1Ways: 4, L2Entries: 256, L2Ways: 8, PTWEntries: 32},
		DRAM: memdev.Config{Name: "dram", Banks: 8, ReadLatency: sim.NS(60),
			WriteLatency: sim.NS(60), PortLatency: sim.NS(1)},
		STU: stu.Config{Entries: 1024, Ways: 8, Org: org, ACMBits: 16,
			PTWCacheEntries: 32, LookupTime: sim.NS(2)},
		Translator: translator.Config{CacheBytes: 64 << 10, Outstanding: 128, TagMatchTime: 500},
		Seed:       7,
	}
}

// rig wires a node to a private broker/fabric/FAM.
type rig struct {
	n   *Node
	brk *broker.Broker
	fam *memdev.Device
}

func newRig(t *testing.T, scheme Scheme) *rig {
	t.Helper()
	brk, err := broker.New(testLayout(), 99)
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(fabric.Config{Latency: sim.NS(500), PacketTime: sim.NS(2)})
	fam := memdev.New(memdev.Config{Name: "fam", Banks: 32, ReadLatency: sim.NS(60),
		WriteLatency: sim.NS(150), PortLatency: sim.NS(2)})
	n, err := New(testConfig(1, scheme), brk, fab, fam)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{n: n, brk: brk, fam: fam}
}

func op(a addr.VAddr, write bool) workload.Op {
	return workload.Op{Addr: a, Write: write}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{EFAM: "E-FAM", IFAM: "I-FAM", DeACTW: "DeACT-W", DeACTN: "DeACT-N", Scheme(9): "Scheme(9)"} {
		if s.String() != want {
			t.Errorf("%d → %q", int(s), s.String())
		}
	}
	if EFAM.UsesDeACT() || IFAM.UsesDeACT() || !DeACTW.UsesDeACT() || !DeACTN.UsesDeACT() {
		t.Fatal("UsesDeACT wrong")
	}
}

func TestConfigValidate(t *testing.T) {
	c := testConfig(1, EFAM)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	c.Cores = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero cores accepted")
	}
	c = testConfig(1, EFAM)
	c.LocalEveryN = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero LocalEveryN accepted")
	}
	c = testConfig(1, EFAM)
	c.CycleTime = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero cycle accepted")
	}
	if _, err := New(testConfig(1, EFAM), nil, nil, nil); err == nil {
		t.Fatal("nil shared components accepted")
	}
}

func TestFirstTouchAllocatesAndCompletes(t *testing.T) {
	for _, scheme := range []Scheme{EFAM, IFAM, DeACTW, DeACTN} {
		r := newRig(t, scheme)
		done, err := r.n.Access(0, 0, op(0x10_0000_0000, false))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if done == 0 {
			t.Fatalf("%v: zero-latency access", scheme)
		}
		st := r.n.Stats()
		if st.OSFaults == 0 || st.NodePTWalks == 0 {
			t.Fatalf("%v: first touch did not fault: %+v", scheme, st)
		}
	}
}

func TestWarmAccessIsCheapAndLocalZoneUsesDRAM(t *testing.T) {
	r := newRig(t, EFAM)
	// Touch enough pages to land one in the local zone (every 5th page).
	var local addr.VAddr
	found := false
	for i := 0; i < 10 && !found; i++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(i)*addr.PageSize)
		if _, err := r.n.Access(0, 0, op(va, false)); err != nil {
			t.Fatal(err)
		}
		if r.n.Stats().DRAMData > 0 {
			local, found = va, true
		}
	}
	if !found {
		t.Fatal("no access reached local DRAM under the 20% policy")
	}
	_ = local
}

func TestTwentyEightyPolicy(t *testing.T) {
	osa := newOSAllocator(testLayout(), 0, 5)
	for i := 0; i < 1000; i++ {
		if _, err := osa.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	localFrac := float64(osa.LocalAllocated()) / 1000
	if localFrac < 0.18 || localFrac > 0.22 {
		t.Fatalf("local fraction %.3f, want ≈0.20", localFrac)
	}
}

func TestOSAllocatorSpillsAndExhausts(t *testing.T) {
	l := addr.Layout{DRAMSize: 4 * addr.PageSize, FAMZoneSize: 4 * addr.PageSize, FAMSize: 64 << 20, ACMBits: 16}
	osa := newOSAllocator(l, 0, 5)
	seen := map[addr.NPPage]bool{}
	for i := 0; i < 8; i++ {
		p, err := osa.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if seen[p] {
			t.Fatalf("page %d handed out twice", p)
		}
		seen[p] = true
	}
	if _, err := osa.Alloc(); err == nil {
		t.Fatal("exhaustion not reported")
	}
}

func TestIFAMSlowerThanEFAMOnColdPages(t *testing.T) {
	// Touch many distinct pages: I-FAM pays STU walks over the fabric.
	var times [2]sim.Time
	for i, scheme := range []Scheme{EFAM, IFAM} {
		r := newRig(t, scheme)
		var now sim.Time
		for p := 0; p < 300; p++ {
			va := addr.VAddr(0x10_0000_0000 + uint64(p)*addr.PageSize)
			done, err := r.n.Access(now, 0, op(va, false))
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
		times[i] = now
	}
	if times[1] < times[0]*2 {
		t.Fatalf("I-FAM %v not ≫ E-FAM %v on cold pages", times[1], times[0])
	}
}

func TestDeACTCountsTranslationTraffic(t *testing.T) {
	r := newRig(t, DeACTN)
	var now sim.Time
	for p := 0; p < 50; p++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(p)*addr.PageSize)
		done, err := r.n.Access(now, 0, op(va, true))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	tr := r.n.Translator().Stats()
	if tr.Hits+tr.Misses == 0 {
		t.Fatal("translator never consulted")
	}
	st := r.n.Stats()
	if st.FAMAT == 0 {
		t.Fatal("no AT traffic counted")
	}
	if st.FAMData == 0 {
		t.Fatal("no data traffic counted")
	}
	if r.n.STU().Stats().ACMHits+r.n.STU().Stats().ACMMisses == 0 {
		t.Fatal("STU never verified")
	}
}

func TestForgedTranslationIsBlocked(t *testing.T) {
	// The decoupled cache is unverified by design; a malicious node forging
	// an entry must still be stopped by the STU. This is DeACT's core
	// security claim.
	r := newRig(t, DeACTN)
	victim, err := r.brk.AllocatePage(2) // another node's page
	if err != nil {
		t.Fatal(err)
	}
	va := addr.VAddr(0x10_0000_0000)
	if _, err := r.n.Access(0, 0, op(va, false)); err != nil {
		t.Fatal(err)
	}
	// Find the NP page backing va and forge its translation.
	npv, ok := r.n.PageTable().Lookup(uint64(va.Page()))
	if !ok {
		t.Fatal("page not mapped")
	}
	r.n.Translator().Corrupt(addr.NPPage(npv), victim)
	// Access a different block of the same page: it misses the on-chip
	// caches and must go through the forged NP→FAM translation. (The
	// virtual→NP TLB entry is intact; only the unverified cache is forged.)
	_, err = r.n.Access(sim.US(100), 0, op(va+addr.BlockSize, false))
	if err == nil {
		t.Fatal("forged translation reached another node's data")
	}
	if !strings.Contains(err.Error(), "denied") {
		t.Fatalf("unexpected error: %v", err)
	}
	if r.n.Stats().Denied == 0 {
		t.Fatal("denial not counted")
	}
}

func TestFlushTranslations(t *testing.T) {
	r := newRig(t, DeACTN)
	var now sim.Time
	for p := 0; p < 20; p++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(p)*addr.PageSize)
		done, err := r.n.Access(now, 0, op(va, false))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	dirty := r.n.FlushTranslations()
	if dirty == 0 {
		t.Fatal("flush found no cached translations")
	}
	// After the flush the next access must re-walk.
	walks := r.n.Stats().NodePTWalks
	if _, err := r.n.Access(now, 0, op(0x10_0000_0000, false)); err != nil {
		t.Fatal(err)
	}
	if r.n.Stats().NodePTWalks != walks+1 {
		t.Fatal("TLB survived flush")
	}
}

func TestWritebacksGenerateFAMWrites(t *testing.T) {
	r := newRig(t, EFAM)
	var now sim.Time
	// Write a working set larger than the L3 so dirty blocks spill.
	for i := 0; i < 40000; i++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(i)*addr.BlockSize)
		done, err := r.n.Access(now, 0, op(va, true))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if r.n.Stats().Writebacks == 0 {
		t.Fatal("no writebacks from a dirty streaming working set")
	}
	if r.fam.Writes() == 0 {
		t.Fatal("writebacks never reached FAM")
	}
}

func TestAccessorsNonNil(t *testing.T) {
	r := newRig(t, DeACTW)
	if r.n.DRAM() == nil || r.n.Hierarchy() == nil || r.n.MMU(0) == nil || r.n.PageTable() == nil {
		t.Fatal("nil accessor")
	}
	if r.n.ID() != 1 || r.n.Scheme() != DeACTW {
		t.Fatal("identity accessors wrong")
	}
	e := newRig(t, EFAM)
	if e.n.STU() != nil || e.n.Translator() != nil {
		t.Fatal("E-FAM must not build STU/translator")
	}
}

func TestNodePTWStepsCountAsAT(t *testing.T) {
	// In E-FAM the only AT traffic at FAM is node page-table walk steps
	// that land in the FAM zone (Figure 4's E-FAM bars).
	r := newRig(t, EFAM)
	var now sim.Time
	for p := 0; p < 400; p++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(p)*addr.PageSize)
		done, err := r.n.Access(now, 0, op(va, false))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	st := r.n.Stats()
	if st.FAMAT == 0 {
		t.Fatal("E-FAM never counted PTW steps as AT traffic")
	}
	if st.FAMAT >= st.FAMData+st.FAMAT {
		t.Fatal("AT accounting inconsistent")
	}
}

func TestIFAMWritebackVerified(t *testing.T) {
	// Dirty FAM-zone blocks leaving the chip must pass the STU like any
	// other FAM access: the writeback path must not bypass access control.
	r := newRig(t, IFAM)
	var now sim.Time
	for i := 0; i < 30000; i++ {
		va := addr.VAddr(0x10_0000_0000 + uint64(i)*addr.BlockSize)
		done, err := r.n.Access(now, 0, op(va, true))
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if r.n.Stats().Writebacks == 0 {
		t.Skip("working set produced no writebacks")
	}
	// Every FAM write went through TranslateAndVerify: the STU saw at least
	// as many requests as there were FAM-zone writebacks + demand misses.
	st := r.n.STU().Stats()
	if st.TranslationHits+st.TranslationMisses == 0 {
		t.Fatal("writebacks bypassed the STU")
	}
}

func TestSchemesShareAllocationSequence(t *testing.T) {
	// With the same seed, E-FAM and DeACT-N must see identical random FAM
	// placement — the property that makes cross-scheme comparisons fair.
	pages := func(scheme Scheme) []addr.FPage {
		r := newRig(t, scheme)
		var now sim.Time
		for p := 0; p < 50; p++ {
			va := addr.VAddr(0x10_0000_0000 + uint64(p)*addr.PageSize)
			done, err := r.n.Access(now, 0, op(va, false))
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
		var out []addr.FPage
		tbl, err := r.brk.NodeTable(1)
		if err != nil {
			t.Fatal(err)
		}
		for np := uint64(0); np < 1<<20; np++ {
			if fp, ok := tbl.Lookup(np); ok {
				out = append(out, addr.FPage(fp))
			}
		}
		return out
	}
	a := pages(EFAM)
	b := pages(DeACTN)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("placement sets differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
