package node

import (
	"fmt"

	"deact/internal/addr"
	"deact/internal/sim"
)

// PrefetchConfig configures the node's PC-keyed delta-pattern stream
// prefetcher. The zero value disables the prefetcher entirely — no table
// is built, no cycle or draw is spent, so default runs are bit-identical
// to builds without the feature.
type PrefetchConfig struct {
	// Streams is the number of tracked PC entries (rounded up to a power
	// of two). 0 disables the prefetcher.
	Streams int
	// Degree is how many blocks ahead a confirmed stream fetches per
	// trigger, in 64B blocks. 0 means the default (2).
	Degree int
	// Threshold is how many consecutive same-delta accesses a PC must
	// produce before its stream is confirmed and prefetches issue. 0
	// means the default (2).
	Threshold int
}

// Enabled reports whether the prefetcher is active.
func (c PrefetchConfig) Enabled() bool { return c.Streams > 0 }

// Validate checks the configuration.
func (c PrefetchConfig) Validate() error {
	if c.Streams < 0 || c.Degree < 0 || c.Threshold < 0 {
		return fmt.Errorf("node: negative prefetch parameter")
	}
	return nil
}

// PrefetchStats counts prefetcher activity for the report and sweeps.
type PrefetchStats struct {
	// Observed counts demand accesses presented to the prefetcher (ops
	// with a nonzero PC).
	Observed uint64
	// Issued counts prefetch requests injected into the memory system.
	Issued uint64
	// PageStops counts candidate prefetches dropped because they crossed
	// the demand access's node-physical page (NP pages are not
	// VA-contiguous, so hardware cannot stride past one).
	PageStops uint64
	// Errors counts prefetches dropped by the memory path (e.g. ACM
	// denial of a speculative line); the fetch is abandoned.
	Errors uint64
}

// Sub returns s minus an earlier capture o (warmup exclusion).
func (s PrefetchStats) Sub(o PrefetchStats) PrefetchStats {
	return PrefetchStats{
		Observed:  s.Observed - o.Observed,
		Issued:    s.Issued - o.Issued,
		PageStops: s.PageStops - o.PageStops,
		Errors:    s.Errors - o.Errors,
	}
}

// pfEntry is one PC's delta-detection state: the last block it touched,
// the last stride between touches, and how many times in a row that
// stride repeated.
type pfEntry struct {
	pc    uint64
	last  uint64 // block index of the previous access
	delta int64  // last observed stride, in blocks
	conf  int32  // consecutive confirmations of delta
}

// prefetcher is the PC-indexed delta table. It is pure bookkeeping: no
// RNG, no clock — timing effects come only from the prefetches the node
// injects into its ordinary memory path.
type prefetcher struct {
	tbl       []pfEntry
	mask      uint64
	degree    int
	threshold int32
}

func newPrefetcher(c PrefetchConfig) *prefetcher {
	n := 1
	for n < c.Streams {
		n <<= 1
	}
	deg := c.Degree
	if deg == 0 {
		deg = 2
	}
	thr := c.Threshold
	if thr == 0 {
		thr = 2
	}
	return &prefetcher{
		tbl:       make([]pfEntry, n),
		mask:      uint64(n - 1),
		degree:    deg,
		threshold: int32(thr),
	}
}

// observe trains on one demand access and returns the confirmed stream
// delta in blocks, or 0 if this PC has no confirmed stream yet.
func (p *prefetcher) observe(pc, block uint64) int64 {
	e := &p.tbl[(pc^pc>>9)&p.mask]
	if e.pc != pc {
		*e = pfEntry{pc: pc, last: block}
		return 0
	}
	d := int64(block - e.last)
	e.last = block
	if d == 0 {
		return 0
	}
	if d == e.delta {
		if e.conf < p.threshold {
			e.conf++
		}
	} else {
		e.delta, e.conf = d, 1
	}
	if e.conf >= p.threshold {
		return d
	}
	return 0
}

// prefetch trains the table on a completed demand access and, when the
// access's PC has a confirmed stream, injects up to degree prefetches
// along it. Prefetches run the ordinary memAccess path fire-and-forget at
// the demand's completion time: they fill real cache lines, occupy DRAM
// banks, fabric links and the FAM device, and on DeACT schemes allocate
// translator cache lines and outstanding-mapping slots — modeling how
// prefetch traffic amplifies (or hides) translation cost. Candidates stop
// at the NP page boundary: the next virtual page's NP frame is not
// adjacent, so a physical stream prefetcher cannot follow.
func (n *Node) prefetch(now sim.Time, coreID int, pc uint64, npa addr.NPAddr) {
	if pc == 0 {
		return
	}
	n.stats.Prefetch.Observed++
	block := uint64(npa) >> addr.BlockShift
	d := n.pf.observe(pc, block)
	if d == 0 {
		return
	}
	page := npa.Page()
	for i := 1; i <= n.pf.degree; i++ {
		cand := addr.NPAddr((block + uint64(d*int64(i))) << addr.BlockShift)
		if cand.Page() != page {
			n.stats.Prefetch.PageStops++
			break
		}
		n.stats.Prefetch.Issued++
		if _, err := n.memAccess(now, coreID, cand, false, false); err != nil {
			n.stats.Prefetch.Errors++
		}
	}
}
