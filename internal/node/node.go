// Package node assembles one compute node of a FAM system: cores' MMUs
// (TLBs + page-table walker), the L1/L2/L3 cache hierarchy, local DRAM, the
// node page table managed by an unmodified OS over the imaginary flat
// node-physical space, and — depending on the scheme — the DeACT FAM
// translator or the I-FAM/E-FAM access paths to the fabric-attached memory.
//
// The node implements the cpu.AccessFunc contract: every memory reference
// is charged through TLB → node page table walk (on miss) → caches →
// local DRAM or the scheme-specific FAM path.
//
// Invariants: Access allocates nothing in steady state (walk buffers and
// writeback scratch are reused; the E-FAM backing table is a dense array),
// every latency is charged through deterministic components, and the
// node's large arrays recycle through internal/arena across runs.
package node

import (
	"encoding/json"
	"fmt"
	"strings"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/arena"
	"deact/internal/broker"
	"deact/internal/cache"
	"deact/internal/fabric"
	"deact/internal/memdev"
	"deact/internal/pagetable"
	"deact/internal/sim"
	"deact/internal/stats"
	"deact/internal/stu"
	"deact/internal/tlb"
	"deact/internal/translator"
	"deact/internal/workload"
)

// Scheme selects the FAM virtual-memory organization (Table I).
type Scheme int

// The four evaluated schemes.
const (
	// EFAM exposes FAM addresses to the node OS: fast, insecure (Fig 2a).
	EFAM Scheme = iota
	// IFAM adds a system translation unit on every FAM access (Fig 2b).
	IFAM
	// DeACTW is DeACT with way-contiguous ACM caching (Fig 8b).
	DeACTW
	// DeACTN is DeACT with non-contiguous sub-way ACM caching (Fig 8c).
	DeACTN
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case EFAM:
		return "E-FAM"
	case IFAM:
		return "I-FAM"
	case DeACTW:
		return "DeACT-W"
	case DeACTN:
		return "DeACT-N"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// UsesDeACT reports whether the scheme runs the decoupled translator path.
func (s Scheme) UsesDeACT() bool { return s == DeACTW || s == DeACTN }

// Name returns the canonical lowercase spelling used by flags and the JSON
// API ("e-fam", "i-fam", "deact-w", "deact-n").
func (s Scheme) Name() string {
	switch s {
	case EFAM:
		return "e-fam"
	case IFAM:
		return "i-fam"
	case DeACTW:
		return "deact-w"
	case DeACTN:
		return "deact-n"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ParseScheme parses a scheme name: the canonical lowercase spellings, the
// display spellings (case-insensitive), the dash-free contractions, and
// "deact" for DeACT-N.
func ParseScheme(s string) (Scheme, error) {
	switch strings.ToLower(s) {
	case "e-fam", "efam":
		return EFAM, nil
	case "i-fam", "ifam":
		return IFAM, nil
	case "deact-w", "deactw":
		return DeACTW, nil
	case "deact-n", "deactn", "deact":
		return DeACTN, nil
	default:
		return 0, fmt.Errorf("unknown scheme %q (want e-fam, i-fam, deact-w or deact-n)", s)
	}
}

// MarshalJSON encodes the scheme as its canonical name, so the on-disk
// result store and the serve API share one human-readable schema instead of
// leaking iota values.
func (s Scheme) MarshalJSON() ([]byte, error) {
	if s < EFAM || s > DeACTN {
		return nil, fmt.Errorf("node: cannot marshal invalid %v", s)
	}
	return json.Marshal(s.Name())
}

// UnmarshalJSON accepts any spelling ParseScheme does.
func (s *Scheme) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return fmt.Errorf("node: scheme must be a JSON string: %w", err)
	}
	parsed, err := ParseScheme(name)
	if err != nil {
		return fmt.Errorf("node: %w", err)
	}
	*s = parsed
	return nil
}

// Config describes one node. Zero-valued latency fields are allowed (they
// model fully pipelined stages).
type Config struct {
	ID     uint16
	Cores  int
	Scheme Scheme
	Layout addr.Layout

	// LocalEveryN allocates every Nth first-touched page from local DRAM
	// (5 → the paper's 20% local / 80% FAM split).
	LocalEveryN int

	CycleTime sim.Time
	L1Lat     sim.Time
	L2Lat     sim.Time
	L3Lat     sim.Time
	TLBL2Lat  sim.Time

	Hierarchy  cache.HierarchyConfig
	MMU        tlb.MMUConfig
	DRAM       memdev.Config
	STU        stu.Config
	Translator translator.Config
	Prefetch   PrefetchConfig

	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("node: cores must be positive")
	case c.LocalEveryN <= 0:
		return fmt.Errorf("node: LocalEveryN must be positive")
	case c.CycleTime == 0:
		return fmt.Errorf("node: zero cycle time")
	}
	if err := c.Prefetch.Validate(); err != nil {
		return err
	}
	return c.Layout.Validate()
}

// MaxTenants is the maximum number of distinct tenants a run can tag
// traffic with. It bounds the fixed per-tenant histogram array in Stats:
// fixed arrays (not slices) keep Stats a plain value, so the existing
// value-copy capture in node.State and core.Snapshot remains a deep copy
// and recording stays allocation-free.
const MaxTenants = 8

// TenantLatency is one tenant's latency distributions on a node, split the
// way capacity planning needs them: the VA→NP translation step (TLB/PTW/OS,
// which in I-FAM nests FAM round trips) versus the post-translation memory
// access, with accesses further classed by destination zone (local DRAM vs.
// fabric-attached memory, where the scheme's FAM translation/verification
// cost lives). All samples are in picoseconds (sim.Time units).
type TenantLatency struct {
	// Translation is the latency of resolving the virtual page to a node
	// physical page (zero-latency L1 TLB hits are recorded as 0 samples).
	Translation stats.Histogram
	// Local is the post-translation access latency of references to the
	// node's local DRAM zone.
	Local stats.Histogram
	// FAM is the post-translation access latency of references to the
	// fabric-attached memory zone, including the scheme's translation and
	// verification machinery.
	FAM stats.Histogram
}

// Merge folds o's samples into t (for aggregating across nodes or tenants).
func (t *TenantLatency) Merge(o TenantLatency) {
	t.Translation.Merge(o.Translation)
	t.Local.Merge(o.Local)
	t.FAM.Merge(o.FAM)
}

// Sub returns t minus an earlier capture o of the same distributions, the
// warmup-exclusion diff applied to every counter in Stats.
func (t TenantLatency) Sub(o TenantLatency) TenantLatency {
	return TenantLatency{
		Translation: t.Translation.Sub(o.Translation),
		Local:       t.Local.Sub(o.Local),
		FAM:         t.FAM.Sub(o.FAM),
	}
}

// Stats aggregates node activity for the paper's figures.
type Stats struct {
	// NodePTWalks counts node-level page-table walks (TLB misses).
	NodePTWalks uint64
	// OSFaults counts first-touch page allocations.
	OSFaults uint64
	// FAMData counts non-address-translation requests observed at FAM
	// (demand data + writebacks), Figure 4's Non-AT.
	FAMData uint64
	// FAMAT counts address-translation requests observed at FAM: FAM
	// page-table steps, ACM fetches, bitmap fetches, and node page-table
	// steps that land in the FAM zone (Figures 4 and 11).
	FAMAT uint64
	// DRAMData counts local DRAM data accesses (excluding the DeACT
	// translation cache, which the translator counts separately).
	DRAMData uint64
	// Writebacks counts dirty blocks written back to memory.
	Writebacks uint64
	// Denied counts accesses rejected by system-level access control.
	Denied uint64

	// Prefetch counts stream-prefetcher activity (all zero when the
	// prefetcher is disabled).
	Prefetch PrefetchStats

	// Tenants holds per-tenant latency distributions, indexed by
	// workload.Op.Tenant. Single-tenant runs record everything under
	// index 0.
	Tenants [MaxTenants]TenantLatency
}

// Node is one compute node.
type Node struct {
	cfg   Config
	brk   *broker.Broker
	fab   *fabric.Fabric
	fam   *memdev.Device
	dram  *memdev.Device
	hier  *cache.Hierarchy
	mmus  []*tlb.MMU
	pt    *pagetable.Table
	trans *translator.Translator
	stuU  *stu.STU
	osa   *osAllocator
	pf    *prefetcher // nil when disabled

	// direct is the OS/broker-known NP→FAM backing, dense over the FAM
	// zone (index: NP page − first FAM-zone page), storing FAM page + 1 so
	// the zero value means "unbacked". It sits on E-FAM's per-miss path,
	// where a map lookup per access is measurable. The OS allocator hands
	// out zone pages in bump order, so the array grows on demand to the
	// allocated prefix instead of the whole zone.
	direct []addr.FPage

	// walkBuf is the scratch buffer for page-table walk steps; translate
	// reuses it so TLB misses do not allocate.
	walkBuf []pagetable.WalkStep

	stats Stats
}

// New builds a node attached to the shared broker, fabric and FAM device.
func New(cfg Config, brk *broker.Broker, fab *fabric.Fabric, fam *memdev.Device) (*Node, error) {
	return NewInArena(nil, cfg, brk, fab, fam)
}

// NewInArena is New drawing the node's large construction-time arrays —
// cache line arrays, the page-table arena, the translator's line array and
// the OS direct-backing table — from a. A nil arena allocates normally.
func NewInArena(a *arena.Arena, cfg Config, brk *broker.Broker, fab *fabric.Fabric, fam *memdev.Device) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if brk == nil || fab == nil || fam == nil {
		return nil, fmt.Errorf("node: broker, fabric and FAM device required")
	}
	n := &Node{
		cfg:  cfg,
		brk:  brk,
		fab:  fab,
		fam:  fam,
		dram: memdev.New(cfg.DRAM),
		// Length 0: backWithFAM extends (zeroing) on demand, so a recycled
		// buffer regrows to its previous high-water mark allocation-free.
		direct: arena.Slice[addr.FPage](a, "node.direct", 0),
	}
	if cfg.Prefetch.Enabled() {
		n.pf = newPrefetcher(cfg.Prefetch)
	}

	var err error
	n.hier, err = cache.NewHierarchyInArena(a, cfg.Hierarchy)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Cores; i++ {
		m, err := tlb.NewMMU(fmt.Sprintf("node%d.core%d", cfg.ID, i), cfg.MMU)
		if err != nil {
			return nil, err
		}
		n.mmus = append(n.mmus, m)
	}

	// The OS allocator: DeACT reserves the top of DRAM for the FAM
	// translation cache.
	reserved := uint64(0)
	if cfg.Scheme.UsesDeACT() {
		reserved = cfg.Translator.CacheBytes
	}
	n.osa = newOSAllocator(cfg.Layout, reserved, cfg.LocalEveryN)

	// Node page table: kernel table pages follow the same 20/80 placement
	// as data (the property that inflates I-FAM's nested walks).
	n.pt, err = pagetable.NewInArena(a, fmt.Sprintf("node%d.pt", cfg.ID), func() (uint64, error) {
		p, err := n.osa.Alloc()
		if err != nil {
			return 0, err
		}
		if cfg.Layout.InFAMZone(p.Addr()) {
			if err := n.backWithFAM(p); err != nil {
				return 0, err
			}
		}
		return uint64(p), nil
	})
	if err != nil {
		return nil, err
	}

	if cfg.Scheme != EFAM {
		tbl, err := brk.NodeTable(cfg.ID)
		if err != nil {
			return nil, err
		}
		n.stuU, err = stu.New(cfg.STU, cfg.ID, cfg.Layout, brk.Meta(), tbl,
			n.famAT,
			func(np addr.NPPage) (addr.FPage, error) { return brk.MapForNode(cfg.ID, np) })
		if err != nil {
			return nil, err
		}
	}
	if cfg.Scheme.UsesDeACT() {
		tc := cfg.Translator
		tc.CacheBase = addr.NPAddr(cfg.Layout.DRAMSize - tc.CacheBytes)
		n.trans, err = translator.NewInArena(a, tc, n.dram, cfg.Seed+101)
		if err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Recycle returns the node's large arrays to a for the next run's
// construction (the broker's tables are recycled by the broker, not here).
// The node must not be used afterwards.
func (n *Node) Recycle(a *arena.Arena) {
	n.hier.Recycle(a)
	n.pt.Recycle(a)
	if n.trans != nil {
		n.trans.Recycle(a)
	}
	arena.Release(a, "node.direct", n.direct)
	n.direct = nil
}

// famZoneIndex converts a FAM-zone NP page to its dense direct[] index.
// Callers guarantee p is in the FAM zone.
func (n *Node) famZoneIndex(p addr.NPPage) uint64 {
	return uint64(p) - uint64(n.cfg.Layout.FAMZoneBase().Page())
}

// backWithFAM gives an NP FAM-zone page a real FAM backing via the broker
// and records it for the OS (E-FAM uses it directly; the other schemes use
// the broker-installed FAM page table).
func (n *Node) backWithFAM(p addr.NPPage) error {
	i := n.famZoneIndex(p)
	if i >= uint64(len(n.direct)) {
		n.direct = arena.Extend(n.direct, int(i)+1)
	}
	if n.direct[i] != 0 {
		return nil
	}
	fp, err := n.brk.MapForNode(n.cfg.ID, p)
	if err != nil {
		return err
	}
	n.direct[i] = fp + 1
	return nil
}

// famRT performs one 64B round trip to the FAM device over the fabric.
func (n *Node) famRT(now sim.Time, fa addr.FAddr, write bool) sim.Time {
	arrive := n.fab.Traverse(now, fabric.ToFAM)
	done := n.fam.Access(arrive, uint64(fa), write)
	return n.fab.Traverse(done, fabric.ToNode)
}

// famAT is the STU's FAM access path; every call is translation metadata
// traffic (FAM page-table steps, ACM blocks, bitmaps).
func (n *Node) famAT(now sim.Time, fa addr.FAddr, write bool) sim.Time {
	n.stats.FAMAT++
	return n.famRT(now, fa, write)
}

// Access implements cpu.AccessFunc: one full memory reference. The op's
// tenant tag selects which per-tenant histogram set observes the
// reference's translation and access latency; recording is observation
// only (no RNG draws, no timing effect), so tagged and untagged runs are
// cycle-identical.
func (n *Node) Access(now sim.Time, coreID int, op workload.Op) (sim.Time, error) {
	tid := op.Tenant
	if tid >= MaxTenants { // out-of-contract tags clamp rather than corrupt
		tid = MaxTenants - 1
	}
	ts := &n.stats.Tenants[tid]
	npPage, t, err := n.translate(now, coreID, op.Addr.Page())
	if err != nil {
		return t, err
	}
	ts.Translation.Record(uint64(t - now))
	npa := addr.NPFromVP(npPage, op.Addr.Offset())
	done, err := n.memAccess(t, coreID, npa, op.Write, false)
	if err != nil {
		return done, err
	}
	if n.cfg.Layout.InLocalZone(npa) {
		ts.Local.Record(uint64(done - t))
	} else {
		ts.FAM.Record(uint64(done - t))
	}
	if n.pf != nil {
		n.prefetch(done, coreID, op.PC, npa)
	}
	return done, nil
}

// translate resolves a virtual page through the TLBs, walking the node
// page table (through the memory system) on a miss, with first-touch
// allocation by the node OS.
func (n *Node) translate(now sim.Time, coreID int, vp addr.VPage) (addr.NPPage, sim.Time, error) {
	m := n.mmus[coreID]
	if v, lvl := m.Lookup(uint64(vp)); lvl != tlb.MissBoth {
		t := now
		if lvl == tlb.HitL2 {
			t += n.cfg.TLBL2Lat
		}
		return addr.NPPage(v), t, nil
	}

	n.stats.NodePTWalks++
	start := m.PTW.BestStartLevel(uint64(vp))
	steps, val, ok := n.pt.WalkAppend(uint64(vp), start, n.walkBuf[:0])
	t := now
	var err error
	for _, s := range steps {
		// Page-table entries are ordinary cached memory (PTW data washes
		// through the data caches as on real hardware).
		t, err = n.memAccess(t, coreID, addr.NPAddr(s.EntryAddr), false, true)
		if err != nil {
			n.walkBuf = steps[:0]
			return 0, t, err
		}
	}
	if !ok {
		// OS first touch: allocate an NP page (20/80 policy), back it with
		// FAM if needed, install the PTE, then finish the walk. The retried
		// walk appends in place of the faulting step, reusing the buffer.
		npp, ferr := n.osFault(vp)
		if ferr != nil {
			n.walkBuf = steps[:0]
			return 0, t, ferr
		}
		retryFrom := steps[len(steps)-1].Level
		head := len(steps) - 1
		var val2 uint64
		var ok2 bool
		steps, val2, ok2 = n.pt.WalkAppend(uint64(vp), retryFrom, steps[:head])
		if !ok2 {
			n.walkBuf = steps[:0]
			return 0, t, fmt.Errorf("node %d: PTE missing after OS fault for vpage %#x", n.cfg.ID, vp)
		}
		for _, s := range steps[head:] {
			t, err = n.memAccess(t, coreID, addr.NPAddr(s.EntryAddr), false, true)
			if err != nil {
				n.walkBuf = steps[:0]
				return 0, t, err
			}
		}
		if addr.NPPage(val2) != npp {
			n.walkBuf = steps[:0]
			return 0, t, fmt.Errorf("node %d: OS fault installed inconsistent mapping", n.cfg.ID)
		}
		val = val2
	}
	m.PTW.FillFromWalk(uint64(vp), steps)
	m.Insert(uint64(vp), val)
	n.walkBuf = steps[:0]
	return addr.NPPage(val), t, nil
}

// osFault performs the OS' first-touch allocation for vp.
func (n *Node) osFault(vp addr.VPage) (addr.NPPage, error) {
	n.stats.OSFaults++
	p, err := n.osa.Alloc()
	if err != nil {
		return 0, err
	}
	if n.cfg.Layout.InFAMZone(p.Addr()) {
		if err := n.backWithFAM(p); err != nil {
			return 0, err
		}
	}
	if err := n.pt.Map(uint64(vp), uint64(p)); err != nil {
		return 0, err
	}
	return p, nil
}

// memAccess charges one 64B reference through caches and memory. isAT marks
// node page-table traffic (so FAM-zone PTW steps are counted as AT requests
// at the FAM, Figure 4).
func (n *Node) memAccess(now sim.Time, coreID int, npa addr.NPAddr, write bool, isAT bool) (sim.Time, error) {
	lvl, wbs := n.hier.Access(coreID, uint64(npa.Block()), write)
	t := now
	switch lvl {
	case cache.L1:
		t += n.cfg.L1Lat
	case cache.L2:
		t += n.cfg.L1Lat + n.cfg.L2Lat
	case cache.L3, cache.Memory:
		t += n.cfg.L1Lat + n.cfg.L2Lat + n.cfg.L3Lat
	}
	// Dirty victims leave the chip regardless of where the demand hit.
	for _, wb := range wbs {
		n.writeback(t, wb)
	}
	if lvl != cache.Memory {
		return t, nil
	}
	return n.memoryPath(t, npa, write, isAT)
}

// memoryPath routes a cache-missing reference to local DRAM or to FAM via
// the scheme's translation/verification machinery.
func (n *Node) memoryPath(now sim.Time, npa addr.NPAddr, write bool, isAT bool) (sim.Time, error) {
	if n.cfg.Layout.InLocalZone(npa) {
		n.stats.DRAMData++
		return n.dram.Access(now, uint64(npa), write), nil
	}
	if !n.cfg.Layout.InFAMZone(npa) {
		return now, fmt.Errorf("node %d: access to unmapped physical address %#x", n.cfg.ID, npa)
	}

	want := acm.PermR
	if write {
		want = acm.PermRW
	}
	np := npa.Page()

	countData := func() {
		if isAT {
			n.stats.FAMAT++
		} else {
			n.stats.FAMData++
		}
	}

	switch n.cfg.Scheme {
	case EFAM:
		i := n.famZoneIndex(np)
		if i >= uint64(len(n.direct)) || n.direct[i] == 0 {
			return now, fmt.Errorf("node %d: E-FAM access to unbacked page %#x", n.cfg.ID, np)
		}
		fp := n.direct[i] - 1
		countData()
		return n.famRT(now, addr.FFromNP(fp, npa.Offset()), write), nil

	case IFAM:
		t, fp, d, err := n.stuU.TranslateAndVerify(now, np, want)
		if err != nil {
			return t, err
		}
		if !d.Allowed {
			n.stats.Denied++
			return t, fmt.Errorf("node %d: access denied: %s", n.cfg.ID, d.DeniedReason)
		}
		countData()
		return n.famRT(t, addr.FFromNP(fp, npa.Offset()), write), nil

	default: // DeACT-W / DeACT-N
		t, fp, hit := n.trans.Lookup(now, np)
		var d acm.Decision
		var err error
		if hit {
			// V=1: the node supplies the FAM address; the STU only vets it.
			t, d = n.stuU.VerifyMapped(t, fp, want)
		} else {
			// V=0: the STU walks the FAM page table on our behalf and
			// returns the mapping, which we cache (off the critical path).
			t, fp, d, err = n.stuU.HandleUnmapped(t, np, want)
			if err != nil {
				return t, err
			}
			n.trans.Update(t, np, fp)
		}
		if !d.Allowed {
			n.stats.Denied++
			return t, fmt.Errorf("node %d: access denied: %s", n.cfg.ID, d.DeniedReason)
		}
		countData()
		// Responses carry FAM addresses; the outstanding-mapping list
		// converts them back and bounds in-flight requests (128, Table II).
		fa := addr.FFromNP(fp, npa.Offset())
		var fin sim.Time
		n.trans.ReserveSlot(t, func(start sim.Time) sim.Time {
			fin = n.famRT(start, fa, write)
			return fin
		})
		return fin, nil
	}
}

// writeback retires a dirty block to memory, fire-and-forget. Denials here
// indicate a forged translation was used for a store; they are counted and
// the block is dropped (the data never leaves the node).
func (n *Node) writeback(now sim.Time, blockAddr uint64) {
	n.stats.Writebacks++
	if _, err := n.memoryPath(now, addr.NPAddr(blockAddr), true, false); err != nil {
		n.stats.Denied++
	}
}

// Bind attaches the engine clock to the node's contended resources (local
// DRAM banks and the STU port) so their reservation calendars retire state
// entirely in the past. The shared fabric and FAM device are bound once by
// the system assembler, not per node.
func (n *Node) Bind(c sim.Clock) {
	n.dram.Bind(c)
	if n.stuU != nil {
		n.stuU.Bind(c)
	}
}

// Stats returns the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// STU returns the node's STU (nil for E-FAM).
func (n *Node) STU() *stu.STU { return n.stuU }

// Translator returns the node's FAM translator (nil outside DeACT).
func (n *Node) Translator() *translator.Translator { return n.trans }

// DRAM returns the node's local memory device.
func (n *Node) DRAM() *memdev.Device { return n.dram }

// Hierarchy returns the node's cache hierarchy.
func (n *Node) Hierarchy() *cache.Hierarchy { return n.hier }

// PageTable returns the node page table (tests and migration).
func (n *Node) PageTable() *pagetable.Table { return n.pt }

// MMU returns core i's MMU.
func (n *Node) MMU(i int) *tlb.MMU { return n.mmus[i] }

// ID returns the node's ID.
func (n *Node) ID() uint16 { return n.cfg.ID }

// Scheme returns the node's scheme.
func (n *Node) Scheme() Scheme { return n.cfg.Scheme }

// FlushTranslations models the node-side shootdown of a job migration
// (§VI): TLBs, PTW caches, the unverified translation cache, and the STU
// state all drop. It returns the number of dirty translation-cache lines
// invalidated (DRAM write cost, charged by the caller).
func (n *Node) FlushTranslations() uint64 {
	for _, m := range n.mmus {
		m.Flush()
	}
	var dirty uint64
	if n.trans != nil {
		dirty = n.trans.InvalidateAll()
	}
	if n.stuU != nil {
		n.stuU.Flush()
	}
	return dirty
}
