package node

import (
	"fmt"

	"deact/internal/addr"
)

// osAllocator is the node OS' physical-page allocator over the imaginary
// flat node-physical space. It implements the paper's placement policy
// (§IV footnote 3): 20% of first-touched pages come from the local-DRAM
// zone and 80% from the FAM zone, deterministically (every LocalEveryN-th
// allocation is local).
type osAllocator struct {
	layout      addr.Layout
	localNext   uint64 // next free local page number
	localLimit  uint64 // pages below this are allocatable local DRAM
	famNext     uint64 // next free FAM-zone page number
	famLimit    uint64
	localEveryN int
	count       uint64
}

// newOSAllocator builds an allocator; reservedDRAMBytes (the DeACT
// translation-cache region at the top of DRAM) is excluded from the local
// zone.
func newOSAllocator(l addr.Layout, reservedDRAMBytes uint64, localEveryN int) *osAllocator {
	return &osAllocator{
		layout:      l,
		localLimit:  (l.DRAMSize - reservedDRAMBytes) / addr.PageSize,
		famNext:     l.DRAMSize / addr.PageSize,
		famLimit:    (l.DRAMSize + l.FAMZoneSize) / addr.PageSize,
		localEveryN: localEveryN,
	}
}

// Alloc hands out the next node-physical page under the 20/80 policy,
// spilling to the other zone when one fills.
func (o *osAllocator) Alloc() (addr.NPPage, error) {
	o.count++
	preferLocal := o.count%uint64(o.localEveryN) == 0
	localFree := o.localNext < o.localLimit
	famFree := o.famNext < o.famLimit
	switch {
	case preferLocal && localFree, !famFree && localFree:
		p := addr.NPPage(o.localNext)
		o.localNext++
		return p, nil
	case famFree:
		p := addr.NPPage(o.famNext)
		o.famNext++
		return p, nil
	default:
		return 0, fmt.Errorf("node OS: physical memory exhausted (%d pages allocated)", o.count-1)
	}
}

// LocalAllocated returns how many local-zone pages have been handed out.
func (o *osAllocator) LocalAllocated() uint64 { return o.localNext }

// FAMAllocated returns how many FAM-zone pages have been handed out.
func (o *osAllocator) FAMAllocated() uint64 {
	return o.famNext - o.layout.DRAMSize/addr.PageSize
}
