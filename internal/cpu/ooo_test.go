package cpu

import (
	"testing"

	"deact/internal/sim"
	"deact/internal/workload"
)

func ooocfg(budget uint64, window, schedLat int) Config {
	c := cfg(budget)
	c.OoO, c.WindowSize, c.SchedulerLatency = true, window, schedLat
	return c
}

func TestOoOConfigValidate(t *testing.T) {
	if err := ooocfg(100, 1, 0).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ooocfg(100, 32, 2).Validate(); err != nil {
		t.Fatal(err)
	}
	noWindow := cfg(100)
	noWindow.OoO = true
	negLat := ooocfg(100, 4, -1)
	strayWindow := cfg(100)
	strayWindow.WindowSize = 4
	strayLat := cfg(100)
	strayLat.SchedulerLatency = 2
	for i, c := range []Config{noWindow, negLat, strayWindow, strayLat} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad OoO config %d accepted", i)
		}
	}
}

// TestOoOWindowOneMatchesInOrder is the cpu-level degeneracy oracle: a
// one-entry window with a zero-latency scheduler cannot run ahead of any
// dependent load, so stepOoO — a fully separate implementation — must
// reproduce the in-order schedule bit-for-bit, across dependence mixes.
func TestOoOWindowOneMatchesInOrder(t *testing.T) {
	for _, chase := range []float64{0, 0.3, 1.0} {
		run := func(c Config) *Core {
			e := sim.NewEngine()
			acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
				return now + sim.NS(40) + sim.Time(op.Addr%977), nil
			}
			core, err := New(c, testGen(t, chase), acc)
			if err != nil {
				t.Fatal(err)
			}
			core.Start(e)
			e.Run(0)
			return core
		}
		inorder := run(cfg(20000))
		ooo := run(ooocfg(20000, 1, 0))
		if inorder.Instructions() != ooo.Instructions() ||
			inorder.MemOps() != ooo.MemOps() ||
			inorder.BlockedOps() != ooo.BlockedOps() ||
			inorder.FinishedAt() != ooo.FinishedAt() {
			t.Fatalf("chase=%v: in-order %d/%d/%d/%d vs OoO(W=1) %d/%d/%d/%d",
				chase,
				inorder.Instructions(), inorder.MemOps(), inorder.BlockedOps(), inorder.FinishedAt(),
				ooo.Instructions(), ooo.MemOps(), ooo.BlockedOps(), ooo.FinishedAt())
		}
	}
}

// scriptSource replays a fixed op sequence — a deterministic probe for the
// scheduler's run-ahead accounting.
type scriptSource struct {
	ops []workload.Op
	i   int
}

func (s *scriptSource) Next() workload.Op {
	op := s.ops[s.i%len(s.ops)]
	s.i++
	return op
}
func (s *scriptSource) SetTenant(uint8)                      {}
func (s *scriptSource) Tenant() uint8                        { return 0 }
func (s *scriptSource) State() workload.GeneratorState       { return workload.GeneratorState{} }
func (s *scriptSource) RestoreState(workload.GeneratorState) {}

// TestOoORunAheadBoundedByWindow pins the window semantics exactly: after an
// incomplete dependent load, the core issues precisely WindowSize-1 further
// ops, then stalls until the load completes.
func TestOoORunAheadBoundedByWindow(t *testing.T) {
	const window = 4
	const chainLat = sim.Time(1_000_000) // 1µs, far beyond the step gaps
	ops := make([]workload.Op, 10)
	ops[0].Blocking = true
	var chainDone sim.Time
	earlyIssues := 0
	acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
		if op.Blocking {
			chainDone = now + chainLat
			return chainDone, nil
		}
		if now < chainDone {
			earlyIssues++
		}
		return now + 1, nil
	}
	c := ooocfg(uint64(len(ops)), window, 0)
	core, err := New(c, &scriptSource{ops: ops}, acc)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	core.Start(e)
	e.Run(0)
	if !core.Done() || core.Err() != nil {
		t.Fatalf("core not done: err=%v", core.Err())
	}
	if earlyIssues != window-1 {
		t.Fatalf("issued %d ops past the incomplete chain load, want exactly %d", earlyIssues, window-1)
	}
}

// TestOoOWiderWindowRunsFaster: on a mixed dependent/independent stream the
// run-ahead window hides independent work under chain latency, so a wider
// window must finish strictly earlier. Deterministic (same seed, same
// latencies), so strict inequality is stable.
func TestOoOWiderWindowRunsFaster(t *testing.T) {
	run := func(window int) sim.Time {
		e := sim.NewEngine()
		acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
			return now + sim.NS(200) + sim.Time(op.Addr%503), nil
		}
		core, err := New(ooocfg(20000, window, 0), testGen(t, 0.5), acc)
		if err != nil {
			t.Fatal(err)
		}
		core.Start(e)
		e.Run(0)
		return core.FinishedAt()
	}
	narrow, wide := run(1), run(8)
	if wide >= narrow {
		t.Fatalf("window=8 finished at %v, window=1 at %v — run-ahead bought nothing", wide, narrow)
	}
}

// TestOoOSchedulerLatencySerializes: on a pure pointer chase every op waits
// on the chain register, so a nonzero wakeup latency must push the finish
// time strictly later.
func TestOoOSchedulerLatencySerializes(t *testing.T) {
	run := func(schedLat int) sim.Time {
		e := sim.NewEngine()
		acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
			return now + sim.NS(100), nil
		}
		core, err := New(ooocfg(10000, 1, schedLat), testGen(t, 1.0), acc)
		if err != nil {
			t.Fatal(err)
		}
		core.Start(e)
		e.Run(0)
		return core.FinishedAt()
	}
	fast, slow := run(0), run(8)
	if slow <= fast {
		t.Fatalf("schedLat=8 finished at %v, schedLat=0 at %v — wakeup stage free", slow, fast)
	}
}

// TestOoORetireDrainsScheduler: a retired OoO core is quiescent — capture,
// restore and resume must work even when the final op left run-ahead state
// behind, because retire drains it.
func TestOoORetireDrainsScheduler(t *testing.T) {
	e := sim.NewEngine()
	acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
		return now + sim.NS(50), nil
	}
	core, err := New(ooocfg(1000, 8, 2), testGen(t, 0.4), acc)
	if err != nil {
		t.Fatal(err)
	}
	core.Start(e)
	e.Run(0)
	if !core.Done() {
		t.Fatal("core did not retire")
	}
	var st State
	core.CaptureState(&st) // must not panic: retire drained the scheduler
	first := core.FinishedAt()
	core.RestoreState(&st)
	core.SetBudget(2000)
	core.Start(e)
	e.Run(0)
	if !core.Done() || core.Instructions() < 2000 {
		t.Fatalf("resume incomplete: %d instructions", core.Instructions())
	}
	if core.FinishedAt() <= first {
		t.Fatal("time did not advance after restore")
	}
}
