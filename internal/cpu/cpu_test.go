package cpu

import (
	"errors"
	"testing"

	"deact/internal/sim"
	"deact/internal/workload"
)

func testGen(t *testing.T, chaseProb float64) *workload.Generator {
	t.Helper()
	p := workload.Profile{
		Name: "synthetic", Suite: "test",
		FootprintPages: 64, MemPer1000: 500, ChaseProb: chaseProb,
	}
	g, err := workload.NewGenerator(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func cfg(budget uint64) Config {
	return Config{CycleTime: 500, IssueWidth: 2, MaxOutstanding: 32, Instructions: budget}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg(100).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{CycleTime: 0, IssueWidth: 1, MaxOutstanding: 1, Instructions: 1},
		{CycleTime: 1, IssueWidth: 0, MaxOutstanding: 1, Instructions: 1},
		{CycleTime: 1, IssueWidth: 1, MaxOutstanding: 0, Instructions: 1},
		{CycleTime: 1, IssueWidth: 1, MaxOutstanding: 1, Instructions: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(cfg(1), nil, nil); err == nil {
		t.Fatal("nil deps accepted")
	}
}

func TestCoreRetiresBudget(t *testing.T) {
	e := sim.NewEngine()
	fixed := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
		return now + sim.NS(10), nil
	}
	c, err := New(cfg(10000), testGen(t, 0), fixed)
	if err != nil {
		t.Fatal(err)
	}
	c.Start(e)
	e.Run(0)
	if !c.Done() || c.Err() != nil {
		t.Fatalf("core not done: err=%v", c.Err())
	}
	if c.Instructions() < 10000 {
		t.Fatalf("retired %d instructions, want ≥ budget", c.Instructions())
	}
	if c.IPC() <= 0 || c.IPC() > 2 {
		t.Fatalf("IPC %v outside (0,2]", c.IPC())
	}
	if c.MemOps() == 0 || c.FinishedAt() == 0 {
		t.Fatal("counters missing")
	}
}

func TestBlockingSerializesLatency(t *testing.T) {
	// Same latency per access; all-blocking stream must finish much later
	// than all-independent stream.
	run := func(chase float64) sim.Time {
		e := sim.NewEngine()
		acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
			return now + sim.NS(500), nil
		}
		c, _ := New(cfg(20000), testGen(t, chase), acc)
		c.Start(e)
		e.Run(0)
		return c.FinishedAt()
	}
	blocking := run(1.0)
	overlapped := run(0.0)
	if blocking < 5*overlapped {
		t.Fatalf("blocking=%v overlapped=%v — dependence not serializing", blocking, overlapped)
	}
}

func TestWindowLimitStalls(t *testing.T) {
	// With a 1-entry window, even independent accesses serialize.
	run := func(window int) sim.Time {
		e := sim.NewEngine()
		acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
			return now + sim.NS(1000), nil
		}
		c := cfg(5000)
		c.MaxOutstanding = window
		core, _ := New(c, testGen(t, 0), acc)
		core.Start(e)
		e.Run(0)
		return core.FinishedAt()
	}
	narrow := run(1)
	wide := run(32)
	if narrow < 3*wide {
		t.Fatalf("narrow=%v wide=%v — window limit not enforced", narrow, wide)
	}
}

func TestAccessErrorAbortsRun(t *testing.T) {
	e := sim.NewEngine()
	calls := 0
	acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
		calls++
		if calls == 3 {
			return 0, errors.New("access denied by STU")
		}
		return now + 1, nil
	}
	c, _ := New(cfg(1_000_000), testGen(t, 0), acc)
	c.Start(e)
	e.Run(0)
	if c.Err() == nil {
		t.Fatal("error swallowed")
	}
	if !c.Done() {
		t.Fatal("core kept running after error")
	}
	if calls != 3 {
		t.Fatalf("calls after error = %d", calls)
	}
}

func TestBlockedOpsCounted(t *testing.T) {
	e := sim.NewEngine()
	acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) { return now, nil }
	c, _ := New(cfg(5000), testGen(t, 0.5), acc)
	c.Start(e)
	e.Run(0)
	if c.BlockedOps() == 0 || c.BlockedOps() >= c.MemOps() {
		t.Fatalf("blocked=%d of %d", c.BlockedOps(), c.MemOps())
	}
}

func TestSetBudgetResumesAfterRetirement(t *testing.T) {
	e := sim.NewEngine()
	acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
		return now + sim.NS(5), nil
	}
	c, _ := New(cfg(1000), testGen(t, 0), acc)
	c.Start(e)
	e.Run(0)
	if !c.Done() {
		t.Fatal("first phase did not retire")
	}
	first := c.FinishedAt()
	c.SetBudget(2000)
	if c.Done() {
		t.Fatal("SetBudget did not clear done")
	}
	c.Start(e)
	e.Run(0)
	if !c.Done() || c.Instructions() < 2000 {
		t.Fatalf("second phase incomplete: %d instructions", c.Instructions())
	}
	if c.FinishedAt() <= first {
		t.Fatal("time did not advance in second phase")
	}
}

// TestWindowFillDrainRetireEdges drives the sorted outstanding ring through
// its edge cases directly: fill to capacity, stall on the earliest slot,
// drain completed prefixes, and retire at the latest in-flight completion.
func TestWindowFillDrainRetireEdges(t *testing.T) {
	w := newWindow(4)
	// Out-of-order completions must come back min-first.
	for _, v := range []sim.Time{40, 10, 30, 20} {
		w.insert(v)
	}
	if w.n != 4 || w.min() != 10 {
		t.Fatalf("after fill: n=%d min=%d, want 4/10", w.n, w.min())
	}
	// Drain removes exactly the completed prefix.
	w.drain(20)
	if w.n != 2 || w.min() != 30 {
		t.Fatalf("after drain(20): n=%d min=%d, want 2/30", w.n, w.min())
	}
	// Refill past the wrap point of the ring.
	w.insert(5) // lands below the current min: must become the new head
	if w.min() != 5 {
		t.Fatalf("min after low insert = %d, want 5", w.min())
	}
	w.insert(35)
	if w.n != 4 {
		t.Fatalf("n = %d, want 4 (full)", w.n)
	}
	// Duplicate timestamps drain together.
	w.drain(35)
	if w.n != 1 || w.min() != 40 {
		t.Fatalf("after drain(35): n=%d min=%d, want 1/40", w.n, w.min())
	}
	w.reset()
	if w.n != 0 {
		t.Fatal("reset kept entries")
	}
}

// TestRetireWaitsForOutstanding: a core must not report a finish time
// earlier than its last in-flight independent reference.
func TestRetireWaitsForOutstanding(t *testing.T) {
	e := sim.NewEngine()
	const lat = sim.Time(1_000_000) // 1µs per access, far beyond the step gaps
	var lastDone sim.Time
	acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
		lastDone = now + lat
		return lastDone, nil
	}
	c, _ := New(cfg(100), testGen(t, 0), acc)
	c.Start(e)
	e.Run(0)
	if !c.Done() {
		t.Fatal("core did not retire")
	}
	if c.FinishedAt() < lastDone {
		t.Fatalf("FinishedAt %d before last outstanding completion %d", c.FinishedAt(), lastDone)
	}
}

// TestCoreDeterministicAcrossRuns: two cores with identical config and seed
// produce identical counters and finish times.
func TestCoreDeterministicAcrossRuns(t *testing.T) {
	run := func() *Core {
		e := sim.NewEngine()
		acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
			return now + sim.Time(op.Addr%977), nil
		}
		c, _ := New(cfg(20000), testGen(t, 0.3), acc)
		c.Start(e)
		e.Run(0)
		return c
	}
	a, b := run(), run()
	if a.Instructions() != b.Instructions() || a.MemOps() != b.MemOps() ||
		a.BlockedOps() != b.BlockedOps() || a.FinishedAt() != b.FinishedAt() {
		t.Fatalf("divergent runs: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Instructions(), a.MemOps(), a.BlockedOps(), a.FinishedAt(),
			b.Instructions(), b.MemOps(), b.BlockedOps(), b.FinishedAt())
	}
}

func TestSetBudgetKeepsAbortError(t *testing.T) {
	e := sim.NewEngine()
	acc := func(now sim.Time, id int, op workload.Op) (sim.Time, error) {
		return 0, errors.New("denied")
	}
	c, _ := New(cfg(100), testGen(t, 0), acc)
	c.Start(e)
	e.Run(0)
	if c.Err() == nil {
		t.Fatal("error lost")
	}
	c.SetBudget(200)
	if !c.Done() {
		t.Fatal("SetBudget resurrected a faulted core")
	}
}
