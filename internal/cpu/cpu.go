// Package cpu models the out-of-order cores of Table II (4 cores, 2GHz,
// 2 issues/cycle, 32 maximum outstanding requests) at the fidelity the
// paper's evaluation needs: compute windows retire at the peak issue rate,
// independent memory references overlap up to the outstanding-request
// window, and dependent (pointer-chase) references block — so serialized
// translation latency hurts exactly the way it does in the paper, while
// streaming misses are partially hidden.
//
// Two timing models share the Core type. The default in-order model stalls
// on every dependent load. The OoO model (Config.OoO) adds a small fixed
// scheduling window and register-style chain dependencies: the core issues
// past an incomplete dependent load up to WindowSize-1 ops deep, dependent
// loads serialize through the chain register plus a SchedulerLatency
// wakeup stage, and a one-entry window degenerates bit-exactly to the
// in-order schedule.
//
// A Core is a self-rescheduling sim.Handler: its steady-state event chain
// allocates nothing (the outstanding window is a fixed sorted ring, the
// OoO scheduler three scalar fields), and retirement order is a
// deterministic function of the generator stream and the access latencies
// it observes.
package cpu

import (
	"fmt"

	"deact/internal/sim"
	"deact/internal/workload"
)

// AccessFunc performs one memory reference through the node's full memory
// system and returns its completion time. Implemented by the node package.
type AccessFunc func(now sim.Time, coreID int, op workload.Op) (sim.Time, error)

// Config describes one core.
type Config struct {
	// ID is the core's index within its node.
	ID int
	// CycleTime is the core clock period (500ps at 2GHz).
	CycleTime sim.Time
	// IssueWidth is instructions per cycle at peak (2).
	IssueWidth int
	// MaxOutstanding bounds overlapped memory references (32).
	MaxOutstanding int
	// Instructions is the retirement budget for the run.
	Instructions uint64

	// OoO selects the out-of-order scheduling model: a WindowSize-entry
	// scheduling window lets the core issue past an incomplete dependent
	// (chain) load, while dependent loads themselves serialize through a
	// register-style chain dependency plus the SchedulerLatency wakeup
	// stage. Independent references keep the MaxOutstanding miss window of
	// the in-order model. With WindowSize=1 and SchedulerLatency=0 the OoO
	// schedule is bit-identical to the in-order one (the degeneracy oracle
	// tests hold exactly that).
	OoO bool
	// WindowSize is the OoO scheduling window in ops: the core may issue
	// at most WindowSize-1 ops beyond an incomplete dependent load before
	// stalling until it completes. Must be >= 1 when OoO, 0 otherwise.
	WindowSize int
	// SchedulerLatency is the OoO wakeup/select delay in core cycles
	// between a chain load completing and its dependent issuing. Must be
	// >= 0 when OoO, 0 otherwise.
	SchedulerLatency int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.CycleTime == 0:
		return fmt.Errorf("cpu: zero cycle time")
	case c.IssueWidth <= 0:
		return fmt.Errorf("cpu: issue width must be positive")
	case c.MaxOutstanding <= 0:
		return fmt.Errorf("cpu: outstanding window must be positive")
	case c.Instructions == 0:
		return fmt.Errorf("cpu: zero instruction budget")
	case c.OoO && c.WindowSize <= 0:
		return fmt.Errorf("cpu: OoO scheduling window must be positive")
	case c.OoO && c.SchedulerLatency < 0:
		return fmt.Errorf("cpu: scheduler latency must be non-negative")
	case !c.OoO && (c.WindowSize != 0 || c.SchedulerLatency != 0):
		return fmt.Errorf("cpu: WindowSize/SchedulerLatency require the OoO model")
	}
	return nil
}

// window tracks the completion times of in-flight independent references as
// a sorted ring: the head is always the earliest completion, so the
// full-window stall ("wait for the earliest slot") and the drain of
// completed references are O(1) per reference, with no per-op allocation.
// Insertion keeps the ring sorted with a bounded memmove (the window is at
// most MaxOutstanding = 32 entries).
type window struct {
	buf  []sim.Time
	head int
	n    int
}

func newWindow(capacity int) window { return window{buf: make([]sim.Time, capacity)} }

// min returns the earliest outstanding completion. The window must be
// non-empty.
func (w *window) min() sim.Time { return w.buf[w.head] }

// idx maps a logical window position to its ring slot without the modulo
// the hot path otherwise pays per element (head+i < 2·len always holds).
func (w *window) idx(i int) int {
	j := w.head + i
	if c := len(w.buf); j >= c {
		j -= c
	}
	return j
}

// insert adds a completion time, keeping the ring sorted.
func (w *window) insert(t sim.Time) {
	// Binary search for the first element > t among the n sorted entries.
	lo, hi := 0, w.n
	for lo < hi {
		mid := (lo + hi) / 2
		if w.buf[w.idx(mid)] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Shift entries lo..n-1 one slot toward the tail.
	for i := w.n; i > lo; i-- {
		w.buf[w.idx(i)] = w.buf[w.idx(i-1)]
	}
	w.buf[w.idx(lo)] = t
	w.n++
}

// drain removes every completion at or before now.
func (w *window) drain(now sim.Time) {
	for w.n > 0 && w.buf[w.head] <= now {
		if w.head++; w.head == len(w.buf) {
			w.head = 0
		}
		w.n--
	}
}

// reset empties the window.
func (w *window) reset() { w.head, w.n = 0, 0 }

// Core is one simulated core, driven as a state machine on the engine. It
// implements sim.Handler, so steady-state stepping schedules zero
// allocations per instruction window.
type Core struct {
	cfg    Config
	gen    workload.Source
	access AccessFunc
	engine *sim.Engine

	win    window   // in-flight independent references, sorted by completion
	winMax sim.Time // latest completion ever inserted (drains are a sorted
	// prefix, so when the window is non-empty this is its maximum)

	// OoO scheduler state (zero in the in-order model and at quiescence).
	depReady  sim.Time // completion time of the last chain load (the chain register)
	chainPend sim.Time // completion of the chain load the core is running past; 0 = none
	ahead     int      // ops the core may still issue before chainPend must retire

	instrs     uint64
	memOps     uint64
	blockedOps uint64
	finishedAt sim.Time
	done       bool
	err        error
}

// New builds a core driven by any workload source (generator or trace
// replay).
func New(cfg Config, gen workload.Source, access AccessFunc) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gen == nil || access == nil {
		return nil, fmt.Errorf("cpu: generator and access function required")
	}
	return &Core{cfg: cfg, gen: gen, access: access, win: newWindow(cfg.MaxOutstanding)}, nil
}

// Start schedules the core's next step on the engine. On a fresh core that
// is time zero; after SetBudget extended a retired core, execution resumes
// where it left off (the engine clamps past times to its own clock).
func (c *Core) Start(e *sim.Engine) {
	c.engine = e
	e.ScheduleHandler(c.finishedAt, c)
}

// SetBudget replaces the total instruction budget and clears the done flag
// so the core can be (re)started — the warmup/measurement phasing hook.
// It does not clear an abort error.
func (c *Core) SetBudget(total uint64) {
	c.cfg.Instructions = total
	if c.err == nil {
		c.done = false
	}
}

// Handle implements sim.Handler: one engine dispatch is one core step.
func (c *Core) Handle(now sim.Time) {
	if c.cfg.OoO {
		c.stepOoO(now)
		return
	}
	c.step(now)
}

// step executes one instruction window: the compute gap, then the memory
// reference, then schedules the next step at the time the core can proceed.
func (c *Core) step(now sim.Time) {
	if c.done {
		return
	}
	if c.instrs >= c.cfg.Instructions {
		c.retire(now)
		return
	}
	op := c.gen.Next()
	c.instrs += uint64(op.Compute) + 1
	c.memOps++

	// Compute window retires at the peak issue rate.
	cycles := (uint64(op.Compute) + uint64(c.cfg.IssueWidth)) / uint64(c.cfg.IssueWidth)
	issueAt := now + sim.Time(cycles)*c.cfg.CycleTime

	done, err := c.access(issueAt, c.cfg.ID, op)
	if err != nil {
		c.err = err
		c.retire(issueAt)
		return
	}

	next := issueAt
	if op.Blocking {
		// Dependent load: the core cannot proceed until the data returns.
		c.blockedOps++
		next = done
	} else {
		// Independent reference: occupy an outstanding slot; stall only
		// when the window is full.
		c.win.drain(issueAt)
		if c.win.n == c.cfg.MaxOutstanding {
			if earliest := c.win.min(); earliest > next {
				next = earliest
			}
			c.win.drain(next)
		}
		if done > c.winMax {
			c.winMax = done
		}
		c.win.insert(done)
	}
	c.engine.ScheduleHandler(next, c)
}

// stepOoO is step under the out-of-order model. It is a deliberately
// separate implementation, not a parameterization of step: the in-order
// core is the oracle the randomized degeneracy tests compare it against,
// which only means something if the two schedules are computed
// independently.
//
// Independent references take exactly the in-order path (the
// MaxOutstanding miss window). Dependent (chain) loads differ in two ways:
// their issue waits for the chain register — the previous chain load's
// completion plus the scheduler's wakeup/select latency — and the core
// keeps issuing past them instead of stalling, up to WindowSize-1 ops
// beyond the incomplete load, after which it stalls until the load
// retires. A one-entry window cannot run ahead at all, which is the
// in-order schedule.
func (c *Core) stepOoO(now sim.Time) {
	if c.done {
		return
	}
	if c.instrs >= c.cfg.Instructions {
		c.retire(now)
		return
	}
	op := c.gen.Next()
	c.instrs += uint64(op.Compute) + 1
	c.memOps++

	cycles := (uint64(op.Compute) + uint64(c.cfg.IssueWidth)) / uint64(c.cfg.IssueWidth)
	issueAt := now + sim.Time(cycles)*c.cfg.CycleTime
	if op.Blocking && c.depReady > 0 {
		// Register-style dependency: the chain load's address comes from
		// the register the previous chain load wrote, through the
		// scheduler's wakeup/select stage.
		if ready := c.depReady + sim.Time(c.cfg.SchedulerLatency)*c.cfg.CycleTime; ready > issueAt {
			issueAt = ready
		}
	}

	done, err := c.access(issueAt, c.cfg.ID, op)
	if err != nil {
		c.err = err
		c.retire(issueAt)
		return
	}

	next := issueAt
	if op.Blocking {
		c.blockedOps++
		c.depReady = done
		if c.cfg.WindowSize == 1 {
			// No room to run ahead of the incomplete load: stall until the
			// data returns — exactly the in-order schedule.
			next = done
			c.chainPend, c.ahead = 0, 0
		} else {
			c.chainPend = done
			c.ahead = c.cfg.WindowSize - 1
		}
	} else {
		// Independent reference: occupy an outstanding slot; stall only
		// when the miss window is full (identical to the in-order model).
		c.win.drain(issueAt)
		if c.win.n == c.cfg.MaxOutstanding {
			if earliest := c.win.min(); earliest > next {
				next = earliest
			}
			c.win.drain(next)
		}
		if done > c.winMax {
			c.winMax = done
		}
		c.win.insert(done)
		// Run-ahead accounting against the pending chain load: each issued
		// op consumes one window slot beyond it; exhausting the window
		// stalls the core until the load retires.
		if c.chainPend != 0 {
			if c.chainPend <= next {
				c.chainPend, c.ahead = 0, 0
			} else if c.ahead--; c.ahead == 0 {
				next = c.chainPend
				c.chainPend = 0
			}
		}
	}
	c.engine.ScheduleHandler(next, c)
}

// retire finalizes the run at the time the last in-flight reference (or the
// final step) completes. Retirement drains the pipeline: the OoO chain
// state resets to structural zero, so a retired core is quiescent under
// either model.
func (c *Core) retire(now sim.Time) {
	end := now
	if c.win.n > 0 && c.winMax > end {
		end = c.winMax
	}
	if c.chainPend > end {
		end = c.chainPend
	}
	c.win.reset()
	c.winMax = 0
	c.depReady, c.chainPend, c.ahead = 0, 0, 0
	c.finishedAt = end
	c.done = true
}

// Done reports whether the core retired its budget (or faulted).
func (c *Core) Done() bool { return c.done }

// Err returns the access error that aborted the run, if any.
func (c *Core) Err() error { return c.err }

// Instructions returns retired instructions.
func (c *Core) Instructions() uint64 { return c.instrs }

// MemOps returns issued memory references.
func (c *Core) MemOps() uint64 { return c.memOps }

// BlockedOps returns how many references were dependence-blocking.
func (c *Core) BlockedOps() uint64 { return c.blockedOps }

// FinishedAt returns the core's completion time.
func (c *Core) FinishedAt() sim.Time { return c.finishedAt }

// IPC returns retired instructions per cycle over the core's lifetime.
func (c *Core) IPC() float64 {
	if c.finishedAt == 0 {
		return 0
	}
	cycles := float64(c.finishedAt) / float64(c.cfg.CycleTime)
	return float64(c.instrs) / cycles
}
