package cpu

import (
	"deact/internal/sim"
	"deact/internal/workload"
)

// State is a Core's mutable state for core.System.Snapshot, captured only
// at a quiescent point: the core has retired its budget (done, no error, an
// empty outstanding window, a drained OoO scheduler), so the window ring,
// winMax and the chain-register state are structurally zero and the state
// reduces to the counters, the retirement time and the generator's stream
// position — under either timing model. The engine pointer and access
// callback are wiring, re-established by Start.
type State struct {
	instrs     uint64
	memOps     uint64
	blockedOps uint64
	finishedAt sim.Time
	gen        workload.GeneratorState
}

// CaptureState captures the core into st. It panics if the core is not
// quiescent — snapshotting mid-flight would need the window contents and a
// pending engine event, neither of which can be restored into a fresh
// engine.
func (c *Core) CaptureState(st *State) {
	if !c.done || c.err != nil || c.win.n != 0 || c.winMax != 0 ||
		c.depReady != 0 || c.chainPend != 0 || c.ahead != 0 {
		panic("cpu: CaptureState on a non-quiescent core")
	}
	st.instrs, st.memOps, st.blockedOps = c.instrs, c.memOps, c.blockedOps
	st.finishedAt = c.finishedAt
	st.gen = c.gen.State()
}

// RestoreState rewinds the core to st's quiescent point. A subsequent
// SetBudget + Start resumes execution exactly where the captured core
// would have.
func (c *Core) RestoreState(st *State) {
	c.instrs, c.memOps, c.blockedOps = st.instrs, st.memOps, st.blockedOps
	c.finishedAt = st.finishedAt
	c.done = true
	c.err = nil
	c.win.reset()
	c.winMax = 0
	c.depReady, c.chainPend, c.ahead = 0, 0, 0
	c.gen.RestoreState(st.gen)
}
