package stats

import (
	"encoding/json"
	"fmt"
	"math/bits"
)

// HistBuckets is the fixed bucket count of Histogram. Bucket 0 holds the
// value 0 and bucket i≥1 holds [2^(i-1), 2^i). 47 doublings cover
// [1, 2^47) — about 140 seconds at one picosecond resolution — far beyond
// any latency the simulator produces, so the top bucket never saturates in
// practice (values above the range clamp into it rather than being lost).
const HistBuckets = 48

// Histogram is a deterministic fixed-bucket log₂ histogram of non-negative
// integer samples (the simulator records latencies in picoseconds).
//
// Design constraints, in priority order:
//
//   - Record is allocation-free and branch-cheap: one bits.Len64, one
//     clamp, three stores. The node hot path calls it per memory access and
//     BenchmarkCoreRun's allocs/op gate must not move.
//   - The zero value is ready to use, and the struct contains only
//     fixed-size arrays and integers, so a plain value copy (as
//     node.State/core.Snapshot do for the whole Stats block) is a deep
//     copy — snapshot forking stays bit-identical for free.
//   - Counts are mergeable (Merge) and subtractable (Sub), because the
//     measured phase is computed as end-of-run minus end-of-warmup, the
//     same way every scalar counter in node.Stats is diffed.
//
// Quantiles are estimated by ceil-rank selection over the buckets with
// linear interpolation inside the selected bucket; the estimate always
// falls in the same bucket as the exact order statistic (the histogram
// oracle test holds this against a sort-based reference).
type Histogram struct {
	counts [HistBuckets]uint64
	n      uint64
	sum    uint64
}

// bucketOf returns the bucket index for sample v: bits.Len64 maps 0→0,
// [2^(i-1), 2^i)→i, clamped to the top bucket.
func bucketOf(v uint64) int {
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// Record adds one sample. It never allocates.
func (h *Histogram) Record(v uint64) {
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.n }

// SampleSum returns the sum of all recorded samples.
func (h *Histogram) SampleSum() uint64 { return h.sum }

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Merge adds o's samples into h. Merge is associative and commutative:
// merging per-node (or per-shard) histograms in any order yields the same
// counts.
func (h *Histogram) Merge(o Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
}

// Sub returns the histogram of the samples in h but not in o, where o is an
// earlier capture of the same histogram (o's counts are bucket-wise ≤ h's).
// This is how the measured-phase distribution is extracted: subtract the
// end-of-warmup capture from the end-of-run capture.
func (h Histogram) Sub(o Histogram) Histogram {
	var d Histogram
	for i := range h.counts {
		d.counts[i] = h.counts[i] - o.counts[i]
	}
	d.n = h.n - o.n
	d.sum = h.sum - o.sum
	return d
}

// bucketBounds returns the inclusive value range [lo, hi] of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i == 64 { // unreachable with HistBuckets=48; kept for safety
		return lo, ^uint64(0)
	}
	return lo, uint64(1)<<i - 1
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) of the
// recorded samples, 0 when the histogram is empty. The rank is
// ceil(q·count) clamped to [1, count]; the returned value interpolates
// linearly across the selected bucket's range and is therefore always
// inside that bucket. The computation is pure integer arithmetic plus one
// float division — bit-deterministic across platforms.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) { // ceil
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			pos := rank - cum // in [1, c]
			return float64(lo) + float64(hi-lo)*float64(pos)/float64(c)
		}
		cum += c
	}
	// Unreachable: rank ≤ n and the counts sum to n.
	return 0
}

// P50, P95 and P99 are the tail-latency shorthands the report uses.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// histJSON is the canonical wire form of a Histogram: the non-zero buckets
// as ascending [bucket, count] pairs plus the sample count and sum. Sparse
// pairs keep entries small (most tenant slots of a run are empty) while the
// fixed emission order keeps the encoding deterministic — the persistent
// result store byte-compares encodings to detect drift.
type histJSON struct {
	N      uint64      `json:"N,omitempty"`
	Sum    uint64      `json:"Sum,omitempty"`
	Counts [][2]uint64 `json:"Counts,omitempty"`
}

// MarshalJSON encodes the histogram's exact state; an empty histogram
// encodes as {}. The encoding round-trips bit-exactly through
// UnmarshalJSON.
func (h Histogram) MarshalJSON() ([]byte, error) {
	j := histJSON{N: h.n, Sum: h.sum}
	for i, c := range h.counts {
		if c != 0 {
			j.Counts = append(j.Counts, [2]uint64{uint64(i), c})
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a MarshalJSON encoding, rejecting states no
// sequence of Record calls can produce (out-of-range buckets, bucket counts
// that do not sum to N), so a corrupted store entry fails decoding instead
// of resurfacing as an impossible distribution.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var j histJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	var d Histogram
	var total uint64
	for _, bc := range j.Counts {
		i, c := bc[0], bc[1]
		if i >= HistBuckets {
			return fmt.Errorf("stats: histogram bucket %d out of range", i)
		}
		if d.counts[i] != 0 {
			return fmt.Errorf("stats: histogram bucket %d repeated", i)
		}
		d.counts[i] = c
		total += c
	}
	if total != j.N {
		return fmt.Errorf("stats: histogram bucket counts sum to %d, want N=%d", total, j.N)
	}
	d.n, d.sum = j.N, j.Sum
	*h = d
	return nil
}

// HistogramState is the captured state of a Histogram. Histograms are plain
// values, so capture and restore are value copies; the type exists so
// snapshot code can name the state it stores, symmetric with the other
// CaptureState/RestoreState pairs in the tree.
type HistogramState = Histogram

// CaptureState returns a deep copy of the histogram's state.
func (h *Histogram) CaptureState() HistogramState { return *h }

// RestoreState rewinds the histogram to a previously captured state.
func (h *Histogram) RestoreState(st HistogramState) { *h = st }
