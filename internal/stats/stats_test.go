package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %v", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %v", g)
	}
	// Non-positive values are skipped, not fatal.
	if g := Geomean([]float64{0, -1, 9}); math.Abs(g-9) > 1e-9 {
		t.Fatalf("geomean with non-positives = %v", g)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 || Min(xs) != 1 || Max(xs) != 3 {
		t.Fatal("mean/min/max wrong")
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty input not zero")
	}
}

func TestGeomeanBetweenMinAndMaxQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{Title: "Fig X", XLabels: []string{"a", "bb"}}
	if err := tb.AddSeries("one", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddSeries("twotwo", []float64{3.5, 4.25}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddSeries("bad", []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	out := tb.Render()
	for _, want := range []string{"Fig X", "one", "twotwo", "3.50", "4.25", "bb"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 series
		t.Fatalf("render has %d lines:\n%s", len(lines), out)
	}
}

func TestTableCustomFormat(t *testing.T) {
	tb := Table{XLabels: []string{"x"}, Format: "%.0f%%"}
	tb.AddSeries("s", []float64{42})
	if !strings.Contains(tb.Render(), "42%") {
		t.Fatal("custom format ignored")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	k := SortedKeys(m)
	if len(k) != 3 || k[0] != "a" || k[2] != "c" {
		t.Fatalf("keys = %v", k)
	}
}
