package stats

import (
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the sort-based reference: the ceil-rank order statistic
// of the sample set, the same rank rule Histogram.Quantile uses.
func exactQuantile(sorted []uint64, q float64) uint64 {
	n := uint64(len(sorted))
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestHistogramQuantileOracle holds the histogram's quantile estimate to
// the sort-based exact order statistic: both must land in the same log₂
// bucket, for several distributions and quantiles. (The histogram cannot
// be closer than a bucket by construction — it only knows bucket counts.)
func TestHistogramQuantileOracle(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	distributions := map[string]func() uint64{
		"uniform":   func() uint64 { return uint64(r.Intn(1_000_000)) },
		"exp-tail":  func() uint64 { return uint64(1) << r.Intn(40) },
		"bimodal":   func() uint64 { return [2]uint64{150, 2_000_000}[r.Intn(2)] + uint64(r.Intn(50)) },
		"constant":  func() uint64 { return 4096 },
		"withZeros": func() uint64 { return uint64(r.Intn(4)) },
	}
	for name, draw := range distributions {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			samples := make([]uint64, 0, 5000)
			for i := 0; i < 5000; i++ {
				v := draw()
				h.Record(v)
				samples = append(samples, v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
				exact := exactQuantile(samples, q)
				est := h.Quantile(q)
				if got, want := bucketOf(uint64(est)), bucketOf(exact); got != want {
					t.Errorf("q=%.2f: estimate %.1f in bucket %d, exact %d in bucket %d", q, est, got, want, exact)
				}
			}
			var sum uint64
			for _, v := range samples {
				sum += v
			}
			if h.Count() != uint64(len(samples)) || h.SampleSum() != sum {
				t.Errorf("count/sum drifted: got %d/%d want %d/%d", h.Count(), h.SampleSum(), len(samples), sum)
			}
		})
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatalf("zero-value histogram not empty: %+v", h)
	}
	h.Record(0)
	if got := h.Quantile(1.0); got != 0 {
		t.Errorf("all-zero samples: p100 = %v, want 0", got)
	}
	h.Record(^uint64(0)) // clamps into the top bucket instead of being lost
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	if got := h.Quantile(1.0); bucketOf(uint64(got)) != HistBuckets-1 {
		t.Errorf("max sample not in top bucket: %v", got)
	}
}

// TestHistogramMergeAssociative checks (a∪b)∪c == a∪(b∪c) == c∪(b∪a):
// merge order must not matter when aggregating per-node histograms.
func TestHistogramMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	parts := make([]Histogram, 3)
	for i := range parts {
		for j := 0; j < 1000+i*137; j++ {
			parts[i].Record(uint64(r.Intn(1 << (10 + i*7))))
		}
	}
	ab := parts[0]
	ab.Merge(parts[1])
	abc := ab
	abc.Merge(parts[2])

	bc := parts[1]
	bc.Merge(parts[2])
	aBC := parts[0]
	aBC.Merge(bc)

	cba := parts[2]
	cba.Merge(parts[1])
	cba.Merge(parts[0])

	if abc != aBC || abc != cba {
		t.Fatalf("merge not associative/commutative:\n(a∪b)∪c=%+v\na∪(b∪c)=%+v\nc∪b∪a=%+v", abc, aBC, cba)
	}
}

// TestHistogramSubInverts checks that Sub recovers exactly the samples
// recorded after a capture — the warmup-exclusion diff the runner does.
func TestHistogramSubInverts(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	var h, wantTail Histogram
	for i := 0; i < 500; i++ {
		h.Record(uint64(r.Intn(1 << 20)))
	}
	warm := h.CaptureState()
	for i := 0; i < 800; i++ {
		v := uint64(r.Intn(1 << 30))
		h.Record(v)
		wantTail.Record(v)
	}
	if got := h.Sub(warm); got != wantTail {
		t.Fatalf("Sub(warmup capture) != measured-only histogram:\ngot  %+v\nwant %+v", got, wantTail)
	}
}

// TestHistogramSnapshotRoundTrip checks capture → mutate → restore is
// bit-exact, the property core.Snapshot forking depends on.
func TestHistogramSnapshotRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 300; i++ {
		h.Record(uint64(i * i))
	}
	st := h.CaptureState()
	orig := h
	for i := 0; i < 100; i++ {
		h.Record(uint64(i))
	}
	h.RestoreState(st)
	if h != orig {
		t.Fatalf("restore not bit-exact:\ngot  %+v\nwant %+v", h, orig)
	}
	// The captured state must be independent of the live histogram.
	h.Record(1)
	if st == h.CaptureState() {
		t.Fatal("captured state aliases the live histogram")
	}
}

// TestHistogramRecordAllocs asserts the hot-path contract directly, in
// addition to the BenchmarkHistogramRecord guard (which only reports).
func TestHistogramRecordAllocs(t *testing.T) {
	var h Histogram
	v := uint64(12345)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v = v*2862933555777941757 + 3037000493 // vary the bucket
	}); allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

// BenchmarkHistogramRecord guards the per-sample cost: Record sits on the
// node's per-access path, so it must stay a few nanoseconds and 0 allocs/op
// (the bench-smoke artifact records both).
func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i) * 997)
	}
	if h.Count() == 0 { // keep the loop live
		b.Fatal("no samples recorded")
	}
}
