package stats

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// TestHistogramJSONRoundTrip: random sample sets must round-trip to an
// identical histogram with a byte-identical re-encoding, and the empty
// histogram must encode as {}.
func TestHistogramJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		for i, n := 0, rng.Intn(200); i < n; i++ {
			h.Record(uint64(rng.Int63()) >> uint(rng.Intn(60)))
		}
		enc, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		var back Histogram
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("trial %d: %v (%s)", trial, err, enc)
		}
		if !reflect.DeepEqual(h, back) {
			t.Fatalf("trial %d: round-trip diverged", trial)
		}
		re, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("trial %d: encoding not canonical: %s vs %s", trial, enc, re)
		}
	}
	empty, err := json.Marshal(Histogram{})
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "{}" {
		t.Fatalf("empty histogram encodes as %s, want {}", empty)
	}
}

// TestHistogramJSONRejectsImpossibleStates: decodings no Record sequence
// can produce must fail, so corrupted store entries surface as decode
// errors (→ cache misses), not impossible distributions.
func TestHistogramJSONRejectsImpossibleStates(t *testing.T) {
	for _, bad := range []string{
		`{"N":1,"Sum":4,"Counts":[[99,1]]}`,      // bucket out of range
		`{"N":3,"Sum":4,"Counts":[[2,1]]}`,       // counts do not sum to N
		`{"N":2,"Sum":4,"Counts":[[2,1],[2,1]]}`, // repeated bucket
		`[4]`,                                    // wrong shape entirely
	} {
		var h Histogram
		if err := json.Unmarshal([]byte(bad), &h); err == nil {
			t.Errorf("impossible state accepted: %s", bad)
		}
	}
}
