// Package stats provides the small numeric helpers the experiment harness
// uses to aggregate results the way the paper does (geometric means per
// suite for the sensitivity studies, §V-D).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Geomean returns the geometric mean of xs, ignoring non-positive values
// (which would otherwise poison the product). Returns 0 for an empty or
// all-non-positive input.
func Geomean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Series is one labeled line of a figure: a name and a value per x-label.
type Series struct {
	Name   string
	Values []float64
}

// Table renders labeled series against x-labels as a fixed-width text
// table — the harness' stand-in for the paper's bar charts.
type Table struct {
	Title   string
	XLabels []string
	Series  []Series
	// Format prints one value ("%.2f" default).
	Format string
}

// AddSeries appends a series, checking its length.
func (t *Table) AddSeries(name string, values []float64) error {
	if len(values) != len(t.XLabels) {
		return fmt.Errorf("stats: series %q has %d values for %d labels", name, len(values), len(t.XLabels))
	}
	t.Series = append(t.Series, Series{Name: name, Values: values})
	return nil
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	format := t.Format
	if format == "" {
		format = "%.2f"
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	nameW := 0
	for _, s := range t.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	colW := make([]int, len(t.XLabels))
	cells := make([][]string, len(t.Series))
	for si, s := range t.Series {
		cells[si] = make([]string, len(s.Values))
		for vi, v := range s.Values {
			cell := fmt.Sprintf(format, v)
			cells[si][vi] = cell
			if len(cell) > colW[vi] {
				colW[vi] = len(cell)
			}
		}
	}
	for i, l := range t.XLabels {
		if len(l) > colW[i] {
			colW[i] = len(l)
		}
	}
	fmt.Fprintf(&b, "%-*s", nameW, "")
	for i, l := range t.XLabels {
		fmt.Fprintf(&b, "  %*s", colW[i], l)
	}
	b.WriteByte('\n')
	for si, s := range t.Series {
		fmt.Fprintf(&b, "%-*s", nameW, s.Name)
		for vi := range s.Values {
			fmt.Fprintf(&b, "  %*s", colW[vi], cells[si][vi])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order (deterministic iteration).
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
