package tlb

// MMU bundles a core's two TLB levels and its PTW cache, mirroring the
// Samba MMU configuration of Table II (L1: 32 entries, L2: 256 entries,
// PTW cache: 32 entries).
type MMU struct {
	L1  *TLB
	L2  *TLB
	PTW *PTWCache
}

// MMUConfig sizes an MMU.
type MMUConfig struct {
	L1Entries  int
	L1Ways     int
	L2Entries  int
	L2Ways     int
	PTWEntries int
}

// NewMMU builds an MMU.
func NewMMU(name string, cfg MMUConfig) (*MMU, error) {
	l1, err := New(name+".l1tlb", cfg.L1Entries, cfg.L1Ways)
	if err != nil {
		return nil, err
	}
	l2, err := New(name+".l2tlb", cfg.L2Entries, cfg.L2Ways)
	if err != nil {
		return nil, err
	}
	return &MMU{L1: l1, L2: l2, PTW: NewPTWCache(cfg.PTWEntries)}, nil
}

// LookupLevel identifies which TLB level served a translation.
type LookupLevel int

// Lookup outcomes.
const (
	MissBoth LookupLevel = iota
	HitL1
	HitL2
)

// Lookup translates a page number through the TLB hierarchy. An L2 hit is
// promoted into L1.
func (m *MMU) Lookup(key uint64) (value uint64, level LookupLevel) {
	if v, ok := m.L1.Lookup(key); ok {
		return v, HitL1
	}
	if v, ok := m.L2.Lookup(key); ok {
		m.L1.Insert(key, v)
		return v, HitL2
	}
	return 0, MissBoth
}

// Insert installs a completed translation in both levels.
func (m *MMU) Insert(key, value uint64) {
	m.L1.Insert(key, value)
	m.L2.Insert(key, value)
}

// Invalidate shoots down one page from both levels.
func (m *MMU) Invalidate(key uint64) {
	m.L1.Invalidate(key)
	m.L2.Invalidate(key)
}

// Flush empties both TLBs and the PTW cache (job migration, §VI).
func (m *MMU) Flush() {
	m.L1.Flush()
	m.L2.Flush()
	m.PTW.Flush()
}
