// Package tlb models the node's hardware memory-management unit in the
// spirit of SST's Samba module (§IV): per-core two-level TLBs (32/256
// entries, Table II), a page-table walker, and a small page-table-walk (PTW)
// cache that holds upper-level entries to shorten walks (the [8]
// optimization the paper folds into its baselines).
//
// The same TLB and PTW-cache structures are reused by the STU for its
// system-level translation cache and FAM-table walker.
//
// Invariants: lookups and fills allocate nothing in steady state (dense
// mask-indexed arrays, no maps), and replacement is a deterministic
// function of the access history — both load-bearing for the simulator's
// byte-identical-output guarantee.
package tlb

import "fmt"

// TLB is a set-associative translation lookaside buffer mapping page
// numbers to page numbers with LRU replacement.
type TLB struct {
	name    string
	sets    uint64
	setMask uint64 // sets-1; the set count is a power of two
	ways    int
	tags    []uint64
	values  []uint64
	valid   []bool
	stamps  []uint64
	tick    uint64
	hits    uint64
	misses  uint64
	flushes uint64
}

// New builds a TLB with the given total entry count and associativity.
// Entries must be a power-of-two multiple of ways.
func New(name string, entries, ways int) (*TLB, error) {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		return nil, fmt.Errorf("tlb %s: bad geometry entries=%d ways=%d", name, entries, ways)
	}
	sets := uint64(entries / ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("tlb %s: set count %d not a power of two", name, sets)
	}
	n := uint64(entries)
	return &TLB{
		name:    name,
		sets:    sets,
		setMask: sets - 1,
		ways:    ways,
		tags:    make([]uint64, n),
		values:  make([]uint64, n),
		valid:   make([]bool, n),
		stamps:  make([]uint64, n),
	}, nil
}

// MustNew is New for statically known-good geometries.
func MustNew(name string, entries, ways int) *TLB {
	t, err := New(name, entries, ways)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *TLB) setBase(key uint64) uint64 { return (key & t.setMask) * uint64(t.ways) }

// Lookup searches for key, updating LRU state on hit.
func (t *TLB) Lookup(key uint64) (value uint64, ok bool) {
	base := t.setBase(key)
	t.tick++
	for w := 0; w < t.ways; w++ {
		i := base + uint64(w)
		if t.valid[i] && t.tags[i] == key {
			t.stamps[i] = t.tick
			t.hits++
			return t.values[i], true
		}
	}
	t.misses++
	return 0, false
}

// Insert installs key → value, evicting the set's LRU entry if needed.
func (t *TLB) Insert(key, value uint64) {
	base := t.setBase(key)
	t.tick++
	victim := base
	victimStamp := ^uint64(0)
	for w := 0; w < t.ways; w++ {
		i := base + uint64(w)
		if t.valid[i] && t.tags[i] == key {
			t.values[i] = value
			t.stamps[i] = t.tick
			return
		}
		stamp := t.stamps[i]
		if !t.valid[i] {
			stamp = 0
		}
		if stamp < victimStamp {
			victimStamp = stamp
			victim = i
		}
	}
	t.tags[victim] = key
	t.values[victim] = value
	t.valid[victim] = true
	t.stamps[victim] = t.tick
}

// Invalidate removes key if present (a single-page shootdown).
func (t *TLB) Invalidate(key uint64) bool {
	base := t.setBase(key)
	for w := 0; w < t.ways; w++ {
		i := base + uint64(w)
		if t.valid[i] && t.tags[i] == key {
			t.valid[i] = false
			return true
		}
	}
	return false
}

// Flush empties the TLB (full shootdown, e.g. on job migration).
func (t *TLB) Flush() {
	for i := range t.valid {
		t.valid[i] = false
	}
	t.flushes++
}

// Hits returns the hit count.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the miss count.
func (t *TLB) Misses() uint64 { return t.misses }

// HitRate returns hits/(hits+misses), 0 when unused.
func (t *TLB) HitRate() float64 {
	total := t.hits + t.misses
	if total == 0 {
		return 0
	}
	return float64(t.hits) / float64(total)
}

// Name returns the TLB's name.
func (t *TLB) Name() string { return t.name }
