package tlb

import (
	"testing"
	"testing/quick"

	"deact/internal/pagetable"
)

func TestNewGeometry(t *testing.T) {
	if _, err := New("t", 0, 1); err == nil {
		t.Error("zero entries accepted")
	}
	if _, err := New("t", 32, 0); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New("t", 33, 4); err == nil {
		t.Error("entries not multiple of ways accepted")
	}
	if _, err := New("t", 24, 4); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	tl, err := New("t", 32, 4)
	if err != nil || tl.Name() != "t" {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

func TestLookupInsert(t *testing.T) {
	tl := MustNew("t", 32, 4)
	if _, ok := tl.Lookup(5); ok {
		t.Fatal("cold lookup hit")
	}
	tl.Insert(5, 500)
	if v, ok := tl.Lookup(5); !ok || v != 500 {
		t.Fatalf("lookup = (%d,%v)", v, ok)
	}
	// Overwrite in place.
	tl.Insert(5, 501)
	if v, _ := tl.Lookup(5); v != 501 {
		t.Fatal("insert did not overwrite")
	}
	if tl.Hits() != 2 || tl.Misses() != 1 {
		t.Fatalf("counters h=%d m=%d", tl.Hits(), tl.Misses())
	}
	if r := tl.HitRate(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit rate %v", r)
	}
}

func TestLRUWithinSet(t *testing.T) {
	tl := MustNew("t", 2, 2) // 1 set, 2 ways
	tl.Insert(1, 10)
	tl.Insert(2, 20)
	tl.Lookup(1) // 2 becomes LRU
	tl.Insert(3, 30)
	if _, ok := tl.Lookup(2); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := tl.Lookup(1); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := tl.Lookup(3); !ok {
		t.Fatal("new entry missing")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	tl := MustNew("t", 32, 4)
	tl.Insert(7, 70)
	if !tl.Invalidate(7) {
		t.Fatal("invalidate missed present entry")
	}
	if tl.Invalidate(7) {
		t.Fatal("invalidate hit absent entry")
	}
	tl.Insert(8, 80)
	tl.Insert(9, 90)
	tl.Flush()
	if _, ok := tl.Lookup(8); ok {
		t.Fatal("entry survived flush")
	}
	if _, ok := tl.Lookup(9); ok {
		t.Fatal("entry survived flush")
	}
}

func TestMMULevels(t *testing.T) {
	m, err := NewMMU("core0", MMUConfig{L1Entries: 32, L1Ways: 4, L2Entries: 256, L2Ways: 8, PTWEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, lvl := m.Lookup(1); lvl != MissBoth {
		t.Fatal("cold lookup should miss both")
	}
	m.Insert(1, 100)
	if v, lvl := m.Lookup(1); lvl != HitL1 || v != 100 {
		t.Fatalf("lookup = (%d,%v)", v, lvl)
	}
	// Evict from L1 only: fill L1's set. L1 has 8 sets, so keys congruent
	// mod 8 collide; keys 1,9,17,25,33 overflow 4 ways.
	for _, k := range []uint64{9, 17, 25, 33} {
		m.Insert(k, k*10)
	}
	if _, lvl := m.Lookup(1); lvl != HitL2 {
		t.Fatalf("expected L2 hit after L1 eviction, got %v", lvl)
	}
	// The L2 hit re-promoted it into L1.
	if _, lvl := m.Lookup(1); lvl != HitL1 {
		t.Fatal("L2 hit did not promote to L1")
	}
	m.Invalidate(1)
	if _, lvl := m.Lookup(1); lvl != MissBoth {
		t.Fatal("invalidate did not reach both levels")
	}
}

func TestMMUBadConfig(t *testing.T) {
	if _, err := NewMMU("x", MMUConfig{L1Entries: 0, L1Ways: 1, L2Entries: 8, L2Ways: 1}); err == nil {
		t.Fatal("bad L1 accepted")
	}
	if _, err := NewMMU("x", MMUConfig{L1Entries: 8, L1Ways: 1, L2Entries: 0, L2Ways: 1}); err == nil {
		t.Fatal("bad L2 accepted")
	}
}

func seqAlloc() pagetable.PageAllocator {
	next := uint64(1000)
	return func() (uint64, error) { next++; return next, nil }
}

func TestPTWCacheShortensWalks(t *testing.T) {
	tbl, _ := pagetable.New("pt", seqAlloc())
	tbl.Map(0x12345, 7)
	p := NewPTWCache(32)
	if lvl := p.BestStartLevel(0x12345); lvl != 0 {
		t.Fatalf("cold PTW cache start level %d", lvl)
	}
	steps, _, ok := tbl.Walk(0x12345, 0)
	if !ok || len(steps) != 4 {
		t.Fatal("setup walk failed")
	}
	p.FillFromWalk(0x12345, steps)
	// Same PTE page → can start at the last level.
	if lvl := p.BestStartLevel(0x12345); lvl != 3 {
		t.Fatalf("warm start level %d, want 3", lvl)
	}
	// A neighbouring key in the same PTE page also benefits.
	if lvl := p.BestStartLevel(0x12346); lvl != 3 {
		t.Fatalf("neighbour start level %d, want 3", lvl)
	}
	// A key in a different PTE page but the same PMD subtree gets level 2.
	if lvl := p.BestStartLevel(0x12345 + (1 << 9)); lvl != 2 {
		t.Fatalf("sibling-PTE-page start level %d, want 2", lvl)
	}
	// A key in a different PUD subtree can only skip the root read.
	if lvl := p.BestStartLevel(0x12345 + (1 << 18)); lvl != 1 {
		t.Fatalf("far key start level %d, want 1", lvl)
	}
	p.Flush()
	if lvl := p.BestStartLevel(0x12345); lvl != 0 {
		t.Fatal("flush did not clear PTW cache")
	}
	if p.Hits() == 0 || p.Misses() == 0 {
		t.Fatal("PTW counters not maintained")
	}
}

func TestPTWCacheCapacityEvicts(t *testing.T) {
	p := NewPTWCache(2)
	tbl, _ := pagetable.New("pt", seqAlloc())
	// Three distinct PTE-page regions: each fill inserts 3 level entries,
	// cache holds 2, so older coverage must disappear.
	keys := []uint64{0, 1 << 27, 2 << 27}
	for _, k := range keys {
		tbl.Map(k, 1)
		steps, _, _ := tbl.Walk(k, 0)
		p.FillFromWalk(k, steps)
	}
	if lvl := p.BestStartLevel(keys[0]); lvl == 3 {
		t.Fatal("tiny PTW cache retained everything")
	}
}

// Property: TLB Lookup-after-Insert always hits with the inserted value.
func TestTLBRoundTripQuick(t *testing.T) {
	tl := MustNew("t", 64, 4)
	f := func(k uint32, v uint32) bool {
		tl.Insert(uint64(k), uint64(v))
		got, ok := tl.Lookup(uint64(k))
		return ok && got == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
