package tlb

import "deact/internal/pagetable"

// PTWCache caches intermediate page-table levels so a walker can skip the
// upper steps of a walk ([8]; 32 entries in the paper's configuration). An
// entry records that the table node serving `key` at `level` is known, so a
// walk for that key may start at `level`.
//
// Keys are stored per level at that level's granularity: a level-1 entry
// covers all keys sharing the top 9 index bits, a level-3 entry covers one
// PTE page (512 mappings).
type PTWCache struct {
	// One fully associative LRU array shared by all levels, as in [8].
	// Level-tagged keys always have a non-zero level in their low bits, so
	// key 0 doubles as the empty marker and lookups are a single compare
	// per entry.
	entries int
	keys    []uint64 // level-tagged keys; 0 = empty
	stamps  []uint64 // LRU stamps; 0 for empty entries
	tick    uint64
	hits    uint64
	misses  uint64
}

// NewPTWCache builds a PTW cache with the given entry count.
func NewPTWCache(entries int) *PTWCache {
	if entries <= 0 {
		entries = 1
	}
	return &PTWCache{
		entries: entries,
		keys:    make([]uint64, entries),
		stamps:  make([]uint64, entries),
	}
}

// levelKey collapses a page-number key to the coverage granularity of a
// level and tags it with the level so entries for different levels coexist.
// The level tag is ≥ 1, so no valid entry encodes to 0.
func levelKey(key uint64, level int) uint64 {
	shift := uint(9 * (pagetable.Levels - level))
	return (key>>shift)<<3 | uint64(level)
}

// BestStartLevel returns the deepest walk level the cache can skip to for
// key (0 = no coverage, must start at the root). One sweep checks all three
// level keys; the deepest hit wins and is the only entry touched, exactly
// as separate per-level scans would behave (keys are unique in the array).
func (p *PTWCache) BestStartLevel(key uint64) int {
	p.tick++
	lk1 := levelKey(key, 1)
	lk2 := levelKey(key, 2)
	lk3 := levelKey(key, 3)
	i1, i2, i3 := -1, -1, -1
	for i := 0; i < p.entries; i++ {
		switch p.keys[i] {
		case lk3:
			i3 = i
		case lk2:
			i2 = i
		case lk1:
			i1 = i
		}
		if i3 >= 0 {
			break
		}
	}
	var idx, level int
	switch {
	case i3 >= 0:
		idx, level = i3, 3
	case i2 >= 0:
		idx, level = i2, 2
	case i1 >= 0:
		idx, level = i1, 1
	default:
		p.misses++
		return 0
	}
	p.stamps[idx] = p.tick
	p.hits++
	return level
}

// FillFromWalk records the intermediate nodes touched by a completed walk so
// future walks for nearby keys can skip them. The PTE-level *data* goes to
// the TLB, not here; we record coverage for levels 1..3 (being able to start
// at level L means the level-(L-1) entry is cached).
func (p *PTWCache) FillFromWalk(key uint64, steps []pagetable.WalkStep) {
	for _, s := range steps {
		if s.Level == pagetable.Levels-1 {
			continue // the PTE itself belongs in the TLB
		}
		// Completing the read of level s.Level lets future walks start at
		// s.Level+1.
		p.insert(levelKey(key, s.Level+1))
	}
}

func (p *PTWCache) insert(lk uint64) {
	p.tick++
	victim := 0
	victimStamp := ^uint64(0)
	for i := 0; i < p.entries; i++ {
		if p.keys[i] == lk {
			p.stamps[i] = p.tick
			return
		}
		if p.stamps[i] < victimStamp {
			victimStamp = p.stamps[i]
			victim = i
		}
	}
	p.keys[victim] = lk
	p.stamps[victim] = p.tick
}

// Flush empties the cache.
func (p *PTWCache) Flush() {
	for i := range p.keys {
		p.keys[i] = 0
		p.stamps[i] = 0
	}
}

// Hits returns the number of lookups that found any usable level.
func (p *PTWCache) Hits() uint64 { return p.hits }

// Misses returns the number of lookups that found nothing.
func (p *PTWCache) Misses() uint64 { return p.misses }
