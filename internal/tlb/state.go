package tlb

// Snapshot state for TLBs, PTW caches and MMUs (core.System.Snapshot). The
// arrays here are small (tens to hundreds of entries), so the states copy
// into plain slices reused across captures rather than going through
// internal/arena.

// State is a TLB's mutable state.
type State struct {
	tags    []uint64
	values  []uint64
	valid   []bool
	stamps  []uint64
	tick    uint64
	hits    uint64
	misses  uint64
	flushes uint64
}

// CaptureState captures the TLB into st, reusing st's storage.
func (t *TLB) CaptureState(st *State) {
	st.tags = append(st.tags[:0], t.tags...)
	st.values = append(st.values[:0], t.values...)
	st.valid = append(st.valid[:0], t.valid...)
	st.stamps = append(st.stamps[:0], t.stamps...)
	st.tick = t.tick
	st.hits, st.misses, st.flushes = t.hits, t.misses, t.flushes
}

// RestoreState rewinds the TLB to st, copying into the TLB's own arrays.
// The TLB must have the geometry st was captured from.
func (t *TLB) RestoreState(st *State) {
	if len(st.tags) != len(t.tags) {
		panic("tlb: RestoreState geometry mismatch for " + t.name)
	}
	copy(t.tags, st.tags)
	copy(t.values, st.values)
	copy(t.valid, st.valid)
	copy(t.stamps, st.stamps)
	t.tick = st.tick
	t.hits, t.misses, t.flushes = st.hits, st.misses, st.flushes
}

// PTWCacheState is a PTWCache's mutable state.
type PTWCacheState struct {
	keys   []uint64
	stamps []uint64
	tick   uint64
	hits   uint64
	misses uint64
}

// CaptureState captures the PTW cache into st, reusing st's storage.
func (p *PTWCache) CaptureState(st *PTWCacheState) {
	st.keys = append(st.keys[:0], p.keys...)
	st.stamps = append(st.stamps[:0], p.stamps...)
	st.tick = p.tick
	st.hits, st.misses = p.hits, p.misses
}

// RestoreState rewinds the PTW cache to st.
func (p *PTWCache) RestoreState(st *PTWCacheState) {
	if len(st.keys) != len(p.keys) {
		panic("tlb: RestoreState PTW cache size mismatch")
	}
	copy(p.keys, st.keys)
	copy(p.stamps, st.stamps)
	p.tick = st.tick
	p.hits, p.misses = st.hits, st.misses
}

// MMUState bundles the three structures of one MMU.
type MMUState struct {
	l1, l2 State
	ptw    PTWCacheState
}

// CaptureState captures the MMU into st.
func (m *MMU) CaptureState(st *MMUState) {
	m.L1.CaptureState(&st.l1)
	m.L2.CaptureState(&st.l2)
	m.PTW.CaptureState(&st.ptw)
}

// RestoreState rewinds the MMU to st.
func (m *MMU) RestoreState(st *MMUState) {
	m.L1.RestoreState(&st.l1)
	m.L2.RestoreState(&st.l2)
	m.PTW.RestoreState(&st.ptw)
}
