package pagetable

import "deact/internal/arena"

// State is a Table's mutable state for core.System.Snapshot: the whole node
// arena (each tnode is pointer-free, so a slice copy is a deep copy) plus
// the counters. The allocator callback is not captured — it is construction
// wiring, and restore happens into a table built with the same wiring.
type State struct {
	nodes      []tnode
	mapped     uint64
	tableNodes uint64
}

// CaptureState captures the table into st, reusing st's storage where it
// fits and drawing the rest from a (nil allocates normally).
func (t *Table) CaptureState(a *arena.Arena, st *State) {
	st.nodes = arena.CopyInto(a, "snap.pagetable.nodes", st.nodes, t.nodes)
	st.mapped, st.tableNodes = t.mapped, t.tableNodes
}

// RestoreState rewinds the table to st *in place*: the receiver keeps its
// identity (holders of the *Table — the STU, the broker's node map — keep
// aliasing the restored table) while its node arena is overwritten with
// st's contents.
func (t *Table) RestoreState(st *State) {
	t.nodes = arena.Extend(t.nodes[:0], len(st.nodes))
	copy(t.nodes, st.nodes)
	t.mapped, t.tableNodes = st.mapped, st.tableNodes
}

// Release returns st's arrays to a for reuse by later captures.
func (st *State) Release(a *arena.Arena) {
	arena.Release(a, "snap.pagetable.nodes", st.nodes)
	st.nodes = nil
}
