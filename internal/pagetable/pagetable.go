// Package pagetable implements hierarchical (multi-tier) radix page tables
// (§II-B of the paper). The same structure serves two roles in a DeACT
// system:
//
//   - the per-process node page table, walked by the node MMU on TLB misses
//     (virtual page → node-physical page), and
//   - the per-node FAM page table, walked by the STU on system-translation
//     misses (node-physical page → FAM page).
//
// The table is functional (a radix tree backed by dense 512-entry arrays,
// exactly the shape of the hardware tables it models) but *placed*: every
// table node occupies a physical page obtained from an allocator, and Walk
// reports the physical address of each 8-byte entry it touches. That is the
// property the whole evaluation hinges on — in I-FAM each node page-table
// step that lands in the FAM zone needs its own system-level translation,
// which is how x86's 4 accesses balloon toward the 24 of nested paging.
//
// Table nodes live in one flat arena and link by index, not pointer: the
// whole tree is a single pointer-free allocation the garbage collector
// never scans, and a walk's per-level loads stay within one backing array.
package pagetable

import (
	"fmt"

	"deact/internal/arena"
)

// Levels is the number of radix levels (PGD, PUD, PMD, PTE in x86-64).
const Levels = 4

// bitsPerLevel is the radix width of each level (512 entries × 8B = 4KB).
const bitsPerLevel = 9

// entriesPerNode is the fan-out of one table node.
const entriesPerNode = 1 << bitsPerLevel

// EntrySize is the size of one page-table entry in bytes.
const EntrySize = 8

// levelMask extracts one level's index.
const levelMask = entriesPerNode - 1

// PageAllocator provides physical pages for table nodes. The node page
// table allocates from node-physical space (so kernel tables follow the
// same 20/80 DRAM/FAM split as data); the FAM page table allocates from the
// broker's FAM pool.
type PageAllocator func() (pageNumber uint64, err error)

// tnode is one 512-entry table page. Interior nodes store child arena
// indices + 1 in slots (0 = no child); leaf (PTE-level) nodes store mapped
// values + 1 (0 = not present). The +1 bias keeps the zero value meaningful
// without separate presence arrays, so a node is one dense pointer-free
// block.
type tnode struct {
	phys  uint64 // physical page number holding this 512-entry table
	slots [entriesPerNode]uint64
}

// Table is a 4-level radix page table mapping uint64 page numbers to uint64
// page numbers.
type Table struct {
	name  string
	alloc PageAllocator
	nodes []tnode // arena; nodes[0] is the root

	mapped     uint64
	tableNodes uint64
}

// New creates an empty table whose nodes are placed by alloc.
func New(name string, alloc PageAllocator) (*Table, error) {
	return NewInArena(nil, name, alloc)
}

// NewInArena is New drawing the node arena from a, so a recycled table's
// growth to its previous high-water mark allocates nothing. A nil arena
// allocates normally.
func NewInArena(a *arena.Arena, name string, alloc PageAllocator) (*Table, error) {
	if alloc == nil {
		return nil, fmt.Errorf("pagetable %s: nil allocator", name)
	}
	// Length 0: appended nodes are written whole, so stale recycled
	// contents are never observable.
	t := &Table{name: name, alloc: alloc, nodes: arena.Slice[tnode](a, "pagetable.nodes", 0)}
	if _, err := t.newNode(); err != nil {
		return nil, err
	}
	return t, nil
}

// Recycle returns the node arena to a for the next run's construction.
// The table must not be used afterwards.
func (t *Table) Recycle(a *arena.Arena) {
	arena.Release(a, "pagetable.nodes", t.nodes)
	t.nodes = nil
}

// newNode appends a fresh table node to the arena and returns its index.
// Callers must not hold *tnode pointers across this call (the arena may
// move); they re-index through t.nodes.
func (t *Table) newNode() (uint32, error) {
	p, err := t.alloc()
	if err != nil {
		return 0, fmt.Errorf("pagetable %s: allocating table node: %w", t.name, err)
	}
	t.tableNodes++
	t.nodes = append(t.nodes, tnode{phys: p})
	return uint32(len(t.nodes) - 1), nil
}

// index returns the radix index of key at the given level (0 = root).
func index(key uint64, level int) uint16 {
	shift := uint(bitsPerLevel * (Levels - 1 - level))
	return uint16((key >> shift) & levelMask)
}

// entryAddr is the physical address of entry idx in the table page phys.
func entryAddr(phys uint64, idx uint16) uint64 {
	return phys<<12 + uint64(idx)*EntrySize
}

// Map installs key → value, allocating intermediate nodes as needed.
// Remapping an existing key overwrites the old value.
func (t *Table) Map(key, value uint64) error {
	ni := uint32(0)
	for lvl := 0; lvl < Levels-1; lvl++ {
		idx := index(key, lvl)
		child := t.nodes[ni].slots[idx]
		if child == 0 {
			ci, err := t.newNode()
			if err != nil {
				return err
			}
			t.nodes[ni].slots[idx] = uint64(ci) + 1
			child = uint64(ci) + 1
		}
		ni = uint32(child - 1)
	}
	idx := index(key, Levels-1)
	if t.nodes[ni].slots[idx] == 0 {
		t.mapped++
	}
	t.nodes[ni].slots[idx] = value + 1
	return nil
}

// Unmap removes key, reporting whether it was mapped. Intermediate nodes
// are retained (as real kernels do).
func (t *Table) Unmap(key uint64) bool {
	ni, ok := t.descend(key, Levels-1)
	if !ok {
		return false
	}
	idx := index(key, Levels-1)
	if t.nodes[ni].slots[idx] == 0 {
		return false
	}
	t.nodes[ni].slots[idx] = 0
	t.mapped--
	return true
}

// descend walks interior levels 0..stop-1, returning the node serving key
// at level stop.
func (t *Table) descend(key uint64, stop int) (uint32, bool) {
	ni := uint32(0)
	for lvl := 0; lvl < stop; lvl++ {
		child := t.nodes[ni].slots[index(key, lvl)]
		if child == 0 {
			return 0, false
		}
		ni = uint32(child - 1)
	}
	return ni, true
}

// Lookup returns the mapping for key without recording a walk.
func (t *Table) Lookup(key uint64) (uint64, bool) {
	ni, ok := t.descend(key, Levels-1)
	if !ok {
		return 0, false
	}
	v := t.nodes[ni].slots[index(key, Levels-1)]
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// WalkStep records one page-table memory reference.
type WalkStep struct {
	// Level is 0 (PGD) … 3 (PTE).
	Level int
	// EntryAddr is the physical address of the 8B entry read.
	EntryAddr uint64
	// NodePhys is the physical page number of the table node read.
	NodePhys uint64
}

// Walk resolves key starting at startLevel (0 for a full walk; higher when a
// PTW cache already holds the upper levels). It returns the memory
// references performed, the mapped value, and whether the key was mapped.
// An unmapped key still incurs the references down to the level where the
// walk faulted.
func (t *Table) Walk(key uint64, startLevel int) (steps []WalkStep, value uint64, ok bool) {
	return t.WalkAppend(key, startLevel, nil)
}

// WalkAppend is Walk appending into buf, so a caller on the per-miss hot
// path can reuse one scratch buffer across walks instead of allocating.
func (t *Table) WalkAppend(key uint64, startLevel int, buf []WalkStep) (steps []WalkStep, value uint64, ok bool) {
	if startLevel < 0 {
		startLevel = 0
	}
	ni := uint32(0)
	// Descend silently to startLevel: those entries came from a PTW cache.
	for lvl := 0; lvl < startLevel && lvl < Levels-1; lvl++ {
		child := t.nodes[ni].slots[index(key, lvl)]
		if child == 0 {
			// The PTW cache claimed coverage the table no longer has; fall
			// back to walking from here.
			startLevel = lvl
			break
		}
		ni = uint32(child - 1)
	}
	steps = buf
	for lvl := startLevel; lvl < Levels; lvl++ {
		idx := index(key, lvl)
		n := &t.nodes[ni]
		steps = append(steps, WalkStep{Level: lvl, EntryAddr: entryAddr(n.phys, idx), NodePhys: n.phys})
		if lvl == Levels-1 {
			v := n.slots[idx]
			if v == 0 {
				return steps, 0, false
			}
			return steps, v - 1, true
		}
		child := n.slots[idx]
		if child == 0 {
			return steps, 0, false
		}
		ni = uint32(child - 1)
	}
	return steps, 0, false
}

// NodePhysAt returns the physical page of the table node that would serve
// key at level (the value a PTW cache stores). ok is false if the node does
// not exist yet.
func (t *Table) NodePhysAt(key uint64, level int) (uint64, bool) {
	ni, ok := t.descend(key, level)
	if !ok {
		return 0, false
	}
	return t.nodes[ni].phys, true
}

// Mapped returns the number of installed leaf mappings.
func (t *Table) Mapped() uint64 { return t.mapped }

// TableNodes returns the number of physical pages consumed by table nodes.
func (t *Table) TableNodes() uint64 { return t.tableNodes }

// RootPhys returns the physical page of the root table (the CR3 analogue).
func (t *Table) RootPhys() uint64 { return t.nodes[0].phys }

// Name returns the table's name.
func (t *Table) Name() string { return t.name }
