package pagetable

import (
	"errors"
	"testing"
	"testing/quick"
)

// seqAlloc hands out sequential page numbers starting at base.
func seqAlloc(base uint64) PageAllocator {
	next := base
	return func() (uint64, error) {
		p := next
		next++
		return p, nil
	}
}

func TestNewRequiresAllocator(t *testing.T) {
	if _, err := New("t", nil); err == nil {
		t.Fatal("nil allocator accepted")
	}
}

func TestMapLookupUnmap(t *testing.T) {
	tbl, err := New("t", seqAlloc(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tbl.Lookup(42); ok {
		t.Fatal("empty table resolved a key")
	}
	if err := tbl.Map(42, 777); err != nil {
		t.Fatal(err)
	}
	if v, ok := tbl.Lookup(42); !ok || v != 777 {
		t.Fatalf("lookup = (%d,%v), want (777,true)", v, ok)
	}
	if tbl.Mapped() != 1 {
		t.Fatalf("mapped = %d", tbl.Mapped())
	}
	// Remap overwrites without double-counting.
	if err := tbl.Map(42, 888); err != nil {
		t.Fatal(err)
	}
	if v, _ := tbl.Lookup(42); v != 888 {
		t.Fatal("remap did not overwrite")
	}
	if tbl.Mapped() != 1 {
		t.Fatal("remap double-counted")
	}
	if !tbl.Unmap(42) {
		t.Fatal("unmap failed")
	}
	if tbl.Unmap(42) {
		t.Fatal("double unmap succeeded")
	}
	if _, ok := tbl.Lookup(42); ok {
		t.Fatal("key survived unmap")
	}
}

func TestWalkProducesFourSteps(t *testing.T) {
	tbl, _ := New("t", seqAlloc(100))
	tbl.Map(0x123456789, 55)
	steps, v, ok := tbl.Walk(0x123456789, 0)
	if !ok || v != 55 {
		t.Fatalf("walk = (%d,%v)", v, ok)
	}
	if len(steps) != Levels {
		t.Fatalf("full walk took %d steps, want %d", len(steps), Levels)
	}
	for i, s := range steps {
		if s.Level != i {
			t.Fatalf("step %d has level %d", i, s.Level)
		}
		if s.EntryAddr>>12 != s.NodePhys {
			t.Fatalf("step %d entry %#x not inside node page %#x", i, s.EntryAddr, s.NodePhys)
		}
		if s.EntryAddr%EntrySize != 0 {
			t.Fatalf("step %d entry %#x misaligned", i, s.EntryAddr)
		}
	}
	if steps[0].NodePhys != tbl.RootPhys() {
		t.Fatal("walk did not start at root")
	}
}

func TestWalkWithPTWCacheSkip(t *testing.T) {
	tbl, _ := New("t", seqAlloc(100))
	tbl.Map(999, 1)
	steps, _, ok := tbl.Walk(999, 3) // PTE level cached up to PMD
	if !ok || len(steps) != 1 || steps[0].Level != 3 {
		t.Fatalf("skip-walk steps = %v ok=%v", steps, ok)
	}
	steps, _, ok = tbl.Walk(999, 2)
	if !ok || len(steps) != 2 {
		t.Fatalf("skip-2 walk steps = %d", len(steps))
	}
}

func TestWalkUnmappedFaultsEarly(t *testing.T) {
	tbl, _ := New("t", seqAlloc(0))
	// Nothing mapped: the walk reads the root entry and faults.
	steps, _, ok := tbl.Walk(12345, 0)
	if ok {
		t.Fatal("unmapped key resolved")
	}
	if len(steps) != 1 {
		t.Fatalf("fault walk took %d steps, want 1 (root only)", len(steps))
	}
	// Map a key sharing the top level; a different PUD subtree faults at level 1.
	tbl.Map(0, 9)
	steps, _, ok = tbl.Walk(1<<18, 0) // same PGD index, different PUD index
	if ok || len(steps) != 2 {
		t.Fatalf("partial fault walk = %d steps ok=%v, want 2 steps", len(steps), ok)
	}
}

func TestWalkStaleStartLevelFallsBack(t *testing.T) {
	tbl, _ := New("t", seqAlloc(0))
	// Ask to start at level 2 when no intermediate nodes exist: the walk
	// must degrade to a root walk rather than panic or lie.
	steps, _, ok := tbl.Walk(77, 2)
	if ok {
		t.Fatal("resolved unmapped key")
	}
	if len(steps) == 0 || steps[0].Level != 0 {
		t.Fatalf("stale start level not handled: %+v", steps)
	}
}

func TestSiblingKeysShareUpperNodes(t *testing.T) {
	tbl, _ := New("t", seqAlloc(0))
	tbl.Map(0, 1)
	n := tbl.TableNodes()
	tbl.Map(1, 2) // same PTE page
	if tbl.TableNodes() != n {
		t.Fatal("adjacent key allocated new table nodes")
	}
	tbl.Map(1<<9, 3) // different PTE page, shared upper levels
	if tbl.TableNodes() != n+1 {
		t.Fatalf("expected exactly one new node, got %d → %d", n, tbl.TableNodes())
	}
	tbl.Map(1<<27, 4) // different top-level subtree: three new nodes
	if tbl.TableNodes() != n+4 {
		t.Fatalf("expected three more nodes, got %d → %d", n+1, tbl.TableNodes())
	}
}

func TestNodePhysAt(t *testing.T) {
	tbl, _ := New("t", seqAlloc(500))
	tbl.Map(42, 1)
	if p, ok := tbl.NodePhysAt(42, 0); !ok || p != tbl.RootPhys() {
		t.Fatal("level-0 node is not root")
	}
	p3, ok := tbl.NodePhysAt(42, 3)
	if !ok {
		t.Fatal("PTE node missing")
	}
	steps, _, _ := tbl.Walk(42, 0)
	if steps[3].NodePhys != p3 {
		t.Fatal("NodePhysAt disagrees with Walk")
	}
	if _, ok := tbl.NodePhysAt(1<<30, 3); ok {
		t.Fatal("NodePhysAt invented a node")
	}
}

func TestAllocatorFailurePropagates(t *testing.T) {
	fails := func() (uint64, error) { return 0, errors.New("pool exhausted") }
	if _, err := New("t", fails); err == nil {
		t.Fatal("root allocation failure ignored")
	}
	count := 0
	flaky := func() (uint64, error) {
		count++
		if count > 1 {
			return 0, errors.New("pool exhausted")
		}
		return uint64(count), nil
	}
	tbl, err := New("t", flaky)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Map(5, 5); err == nil {
		t.Fatal("map with failing allocator succeeded")
	}
}

// Property: Map then Walk round-trips and a full walk is always ≤ 4 steps.
func TestMapWalkRoundTripQuick(t *testing.T) {
	tbl, _ := New("t", seqAlloc(0))
	f := func(key uint64, val uint32) bool {
		key &= (1 << 36) - 1 // page numbers for 48-bit VAs
		if err := tbl.Map(key, uint64(val)); err != nil {
			return false
		}
		steps, v, ok := tbl.Walk(key, 0)
		return ok && v == uint64(val) && len(steps) == Levels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
