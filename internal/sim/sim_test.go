package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(300, func(Time) { got = append(got, 3) })
	e.Schedule(100, func(Time) { got = append(got, 1) })
	e.Schedule(200, func(Time) { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 300 {
		t.Fatalf("final time = %d, want 300", e.Now())
	}
}

func TestEngineTieBreaksByInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(42, func(Time) { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break violated at %d: %v", i, got)
		}
	}
}

func TestEngineSchedulePastClampsToNow(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.Schedule(1000, func(now Time) {
		e.Schedule(5, func(now Time) { fired = now })
	})
	e.Run(0)
	if fired != 1000 {
		t.Fatalf("past event fired at %d, want clamp to 1000", fired)
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(100, func(Time) {
		e.After(50, func(now Time) { at = now })
	})
	e.Run(0)
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i*10), func(Time) {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run(0)
	if count != 3 {
		t.Fatalf("halt ignored: %d events fired", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i*100), func(Time) { count++ })
	}
	final := e.Run(450)
	if count != 4 {
		t.Fatalf("events within horizon = %d, want 4", count)
	}
	if final != 450 {
		t.Fatalf("final time = %d, want horizon 450", final)
	}
}

// TestEngineHorizonKeepsFutureEvent is the regression test for the horizon
// event-loss bug: the first event past the horizon used to be popped and
// silently discarded, so re-running with a larger horizon never fired it.
func TestEngineHorizonKeepsFutureEvent(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{100, 200, 300} {
		at := at
		e.Schedule(at, func(now Time) { fired = append(fired, now) })
	}
	if final := e.Run(150); final != 150 {
		t.Fatalf("first run ended at %d, want 150", final)
	}
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("first run fired %v, want [100]", fired)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending after horizon = %d, want 2 (event at 200 must survive)", e.Pending())
	}
	if final := e.Run(250); final != 250 {
		t.Fatalf("second run ended at %d, want 250", final)
	}
	if len(fired) != 2 || fired[1] != 200 {
		t.Fatalf("extended horizon fired %v, want [100 200]", fired)
	}
	if final := e.Run(0); final != 300 {
		t.Fatalf("unbounded run ended at %d, want 300", final)
	}
	if len(fired) != 3 || fired[2] != 300 {
		t.Fatalf("final run fired %v, want all three events", fired)
	}
}

// TestEngineHorizonDoesNotRewindClock: a horizon earlier than the current
// clock must not move time backwards.
func TestEngineHorizonDoesNotRewindClock(t *testing.T) {
	e := NewEngine()
	e.Schedule(1000, func(Time) {})
	e.Schedule(2000, func(Time) {})
	e.Run(1500)
	if e.Now() != 1500 {
		t.Fatalf("now = %d, want 1500", e.Now())
	}
	if final := e.Run(100); final != 1500 {
		t.Fatalf("smaller horizon rewound the clock to %d", final)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var recurse func(now Time)
	recurse = func(now Time) {
		depth++
		if depth < 100 {
			e.After(1, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run(0)
	if depth != 100 {
		t.Fatalf("nested depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("final time = %d, want 99", e.Now())
	}
}

// recorder is a Handler that logs its id into a shared slice.
type recorder struct {
	id  int
	out *[]int
}

func (r *recorder) Handle(Time) { *r.out = append(*r.out, r.id) }

// TestEngineSameTimestampFIFOMixedAPIs: events at one timestamp fire in
// scheduling order regardless of which API (closure or handler) enqueued
// them.
func TestEngineSameTimestampFIFOMixedAPIs(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 20; i++ {
		i := i
		if i%2 == 0 {
			e.ScheduleHandler(42, &recorder{id: i, out: &got})
		} else {
			e.Schedule(42, func(Time) { got = append(got, i) })
		}
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO tie-break violated at %d: %v", i, got)
		}
	}
}

// halter halts the engine on its nth dispatch.
type halter struct {
	e     *Engine
	count int
	at    int
	fired *int
}

func (h *halter) Handle(Time) {
	h.count++
	*h.fired++
	if h.count == h.at {
		h.e.Halt()
	}
}

// TestEngineHaltMidDispatchAndResume: Halt from inside a handler stops the
// loop before the next dispatch, keeps the rest of the queue intact, and a
// fresh Run resumes exactly where it stopped.
func TestEngineHaltMidDispatchAndResume(t *testing.T) {
	e := NewEngine()
	fired := 0
	h := &halter{e: e, at: 3, fired: &fired}
	for i := 0; i < 10; i++ {
		e.ScheduleHandler(Time(i*10), h)
	}
	e.Run(0)
	if fired != 3 {
		t.Fatalf("halt ignored: %d events fired", fired)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
	if e.Now() != 20 {
		t.Fatalf("halted at %d, want 20", e.Now())
	}
	// Run again: the halted flag must reset and the queue drain.
	e.Run(0)
	if fired != 10 || e.Pending() != 0 {
		t.Fatalf("resume incomplete: fired=%d pending=%d", fired, e.Pending())
	}
}

// TestEngineScheduleHandlerClampsPast mirrors the closure-path clamp test
// for the handler path.
func TestEngineScheduleHandlerClampsPast(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(1000, func(Time) {
		e.ScheduleHandler(5, handlerFunc(func(now Time) { at = now }))
	})
	e.Run(0)
	if at != 1000 {
		t.Fatalf("past handler fired at %d, want clamp to 1000", at)
	}
}

// TestEngineManyEventsOrdered shuffles a large schedule through the d-ary
// heap and checks global dispatch order (timestamp, then insertion seq).
func TestEngineManyEventsOrdered(t *testing.T) {
	e := NewEngine()
	const n = 5000
	var got []Time
	// A deterministic scatter of timestamps with plenty of collisions.
	for i := 0; i < n; i++ {
		at := Time((i * 7919) % 257)
		e.Schedule(at, func(now Time) { got = append(got, now) })
	}
	e.Run(0)
	if len(got) != n {
		t.Fatalf("fired %d events, want %d", len(got), n)
	}
	for i := 1; i < n; i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %d after %d", i, got[i], got[i-1])
		}
	}
	if e.Fired() != n {
		t.Fatalf("Fired() = %d, want %d", e.Fired(), n)
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, d1 := r.Acquire(100, 50)
	if s1 != 100 || d1 != 150 {
		t.Fatalf("first acquire = (%d,%d), want (100,150)", s1, d1)
	}
	// Second request arrives while busy: queues.
	s2, d2 := r.Acquire(120, 30)
	if s2 != 150 || d2 != 180 {
		t.Fatalf("second acquire = (%d,%d), want (150,180)", s2, d2)
	}
	// Third arrives after idle gap: starts immediately.
	s3, d3 := r.Acquire(500, 10)
	if s3 != 500 || d3 != 510 {
		t.Fatalf("third acquire = (%d,%d), want (500,510)", s3, d3)
	}
	if r.BusyTime() != 90 {
		t.Fatalf("busy = %d, want 90", r.BusyTime())
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses())
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(10, 10)
	r.Reset()
	if r.NextFree() != 0 || r.BusyTime() != 0 || r.Uses() != 0 {
		t.Fatal("reset did not clear state")
	}
}

// Property: service start is never before arrival, completion = start +
// service, and no two granted intervals overlap (the resource is serially
// occupied).
func TestResourceInvariantsQuick(t *testing.T) {
	type iv struct{ s, e Time }
	f := func(arrivals []uint16, services []uint8) bool {
		var r Resource
		var now Time
		var granted []iv
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			now += Time(arrivals[i])
			svc := Time(services[i])
			start, done := r.Acquire(now, svc)
			if start < now || done != start+svc {
				return false
			}
			if svc == 0 {
				continue
			}
			for _, g := range granted {
				if start < g.e && g.s < done {
					return false // overlap
				}
			}
			granted = append(granted, iv{start, done})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestResourceGapFilling: a request arriving in an idle gap between two
// future bookings is served in the gap, not behind them.
func TestResourceGapFilling(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)    // [0,10)
	r.Acquire(1000, 10) // [1000,1010)
	start, done := r.Acquire(20, 10)
	if start != 20 || done != 30 {
		t.Fatalf("gap request served at (%d,%d), want (20,30)", start, done)
	}
	// A request too big for the gap goes after everything.
	start, _ = r.Acquire(20, 2000)
	if start != 1010 {
		t.Fatalf("oversized request started at %d, want 1010", start)
	}
}

// fakeClock is a settable Clock for pruning tests.
type fakeClock struct{ now Time }

func (c *fakeClock) Now() Time { return c.now }

// TestResourceCalendarBoundedWithClock: a clock-bound resource retires past
// bookings, so the live calendar stays O(outstanding window) even across
// arbitrarily long runs.
func TestResourceCalendarBounded(t *testing.T) {
	var r Resource
	clk := &fakeClock{}
	r.Bind(clk)
	for i := 0; i < 10000; i++ {
		// The engine trails the arrival by a few bookings, as it does in
		// real runs where chains compute a little ahead of dispatch time.
		if i > 5 {
			clk.now = Time((i - 5) * 100)
		}
		r.Acquire(Time(i*100), 1)
	}
	// Pruning is amortized (every 64th Acquire consults the clock), so the
	// live window is the trailing span plus at most one amortization period.
	if live := r.live(); live > 128 {
		t.Fatalf("live calendar grew to %d intervals", live)
	}
	if cap(r.intervals) > 1024 {
		t.Fatalf("backing array grew to %d despite compaction", cap(r.intervals))
	}
	if r.Uses() != 10000 {
		t.Fatalf("uses = %d", r.Uses())
	}
}

// TestResourcePruneRetiresOnlyFullyPast: the watermark retires intervals
// that end at or before it; an interval straddling the watermark survives.
func TestResourcePruneRetiresOnlyFullyPast(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)   // [0,10) — fully past after Prune(50)
	r.Acquire(40, 20)  // [40,60) — straddles watermark 50
	r.Acquire(100, 10) // [100,110) — future
	r.Prune(50)
	if live := r.live(); live != 2 {
		t.Fatalf("live = %d, want 2 (straddling interval must survive)", live)
	}
	// The straddling booking still delays a request arriving inside it.
	start, _ := r.Acquire(50, 5)
	if start != 60 {
		t.Fatalf("request inside straddling interval started at %d, want 60", start)
	}
	// A monotone-violating (earlier) watermark is a no-op.
	r.Prune(10)
	if r.watermark != 50 {
		t.Fatalf("watermark regressed to %d", r.watermark)
	}
}

// TestResourceGapBookingAcrossWatermark: an idle gap that straddles the
// watermark stays bookable for arrivals at or after the watermark.
func TestResourceGapBookingAcrossWatermark(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)    // [0,10)
	r.Acquire(1000, 10) // [1000,1010); gap [10,1000)
	r.Prune(500)        // [0,10) retires; the gap now straddles the watermark
	start, done := r.Acquire(500, 100)
	if start != 500 || done != 600 {
		t.Fatalf("gap booking across watermark = (%d,%d), want (500,600)", start, done)
	}
}

// TestResourceCountersSurvivePruning: BusyTime and Uses are cumulative and
// unaffected by calendar retirement.
func TestResourceCountersSurvivePruning(t *testing.T) {
	var r Resource
	r.Acquire(0, 30)
	r.Acquire(100, 70)
	busy, uses := r.BusyTime(), r.Uses()
	r.Prune(1000)
	if r.live() != 0 {
		t.Fatalf("live = %d, want 0", r.live())
	}
	if r.BusyTime() != busy || r.Uses() != uses {
		t.Fatalf("counters changed by pruning: busy %d→%d uses %d→%d", busy, r.BusyTime(), uses, r.Uses())
	}
	if r.NextFree() != 1000 {
		t.Fatalf("NextFree after full retirement = %d, want watermark 1000", r.NextFree())
	}
}

// contentionSequence drives a randomized arrival pattern against several
// calendar implementations at once: a pruned Resource, an unpruned
// Resource (the oracle), and a clock-bound Server. The engine time trails
// the arrival front the way real event dispatch does, and arrivals jitter
// backward within the trailing window to exercise out-of-order gap booking
// across the watermark boundary.
func contentionSequence(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var oracle, pruned Resource
	var srv Server
	clk := &fakeClock{}
	pruned.Bind(clk)
	srv.Bind(clk)
	var front Time // the farthest arrival seen; the clock trails it
	for i := 0; i < 5000; i++ {
		front += Time(rng.Intn(200))
		// Arrivals land anywhere between the clock and the front (chains
		// started at earlier events finish their bookings late).
		span := front - clk.now
		now := clk.now
		if span > 0 {
			now += Time(rng.Int63n(int64(span) + 1))
		}
		svc := Time(rng.Intn(100))
		os, od := oracle.Acquire(now, svc)
		ps, pd := pruned.Acquire(now, svc)
		ss, sd := srv.Acquire(now, svc)
		if os != ps || od != pd {
			t.Fatalf("seed %d step %d: pruned (%d,%d) != oracle (%d,%d) for Acquire(%d,%d)",
				seed, i, ps, pd, os, od, now, svc)
		}
		if os != ss || od != sd {
			t.Fatalf("seed %d step %d: server (%d,%d) != oracle (%d,%d) for Acquire(%d,%d)",
				seed, i, ss, sd, os, od, now, svc)
		}
		// Advance the clock to trail the front by a bounded window, as the
		// engine's dispatch time trails in-flight chains.
		if front > 500 && clk.now < front-500 {
			clk.now = front - 500
		}
	}
	if oracle.BusyTime() != pruned.BusyTime() || oracle.Uses() != pruned.Uses() {
		t.Fatalf("seed %d: pruned counters diverged", seed)
	}
	if oracle.BusyTime() != srv.BusyTime() || oracle.Uses() != srv.Uses() {
		t.Fatalf("seed %d: server counters diverged", seed)
	}
	// Retirement is amortized (pushes bound the list, splits ride between
	// capacity events), so live state may exceed the nominal bound between
	// prunes but stays O(maxLiveGaps).
	if live := pruned.live(); live > 1024 {
		t.Fatalf("seed %d: pruned calendar grew to %d live intervals", seed, live)
	}
	if gaps := srv.liveGaps(); gaps > 1024 {
		t.Fatalf("seed %d: server gap calendar grew to %d", seed, gaps)
	}
}

// TestContentionImplementationsAgree is the fuzz-style cross-check: pruning
// must be invisible (watermark ≤ every future arrival ⇒ identical grants),
// and the batched Server must be an exact re-representation of the interval
// calendar.
func TestContentionImplementationsAgree(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		contentionSequence(t, seed)
	}
}

func TestTimeUnits(t *testing.T) {
	if NS(1) != 1000 || US(1) != 1000*1000 {
		t.Fatal("unit conversion wrong")
	}
	if Nanosecond != 1000*Picosecond || Microsecond != 1000*Nanosecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit constants wrong")
	}
}
