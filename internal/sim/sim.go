// Package sim provides a small deterministic discrete-event simulation
// engine in the spirit of SST (the Structural Simulation Toolkit), which the
// DeACT paper uses for its evaluation. Components schedule events on a
// shared engine; ties are broken by insertion order so that runs are fully
// reproducible.
//
// All simulated time is expressed in picoseconds (type Time). At the 2GHz
// core clock used throughout the paper one cycle is 500ps.
package sim

import "container/heap"

// Time is a simulated timestamp in picoseconds.
type Time uint64

// Common time units, all expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// NS converts a nanosecond count to a Time.
func NS(n uint64) Time { return Time(n) * Nanosecond }

// US converts a microsecond count to a Time.
func US(n uint64) Time { return Time(n) * Microsecond }

// Event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func(now Time)
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Schedule enqueues fn to run at absolute time at. Scheduling in the past
// (at < Now) clamps to Now; this keeps component code simple when latencies
// round to zero.
func (e *Engine) Schedule(at Time, fn func(now Time)) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// After enqueues fn to run delay picoseconds from now.
func (e *Engine) After(delay Time, fn func(now Time)) {
	e.Schedule(e.now+delay, fn)
}

// Halt stops Run before the next event is dispatched. It is typically called
// from inside an event handler once a simulation's exit criterion is met.
func (e *Engine) Halt() { e.halted = true }

// Run dispatches events in timestamp order until the queue drains, Halt is
// called, or the optional horizon (non-zero) is reached. It returns the
// final simulated time.
func (e *Engine) Run(horizon Time) Time {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		ev := heap.Pop(&e.queue).(*event)
		if horizon != 0 && ev.at > horizon {
			e.now = horizon
			return e.now
		}
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
	}
	return e.now
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }
