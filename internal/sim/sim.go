// Package sim provides a small deterministic discrete-event simulation
// engine in the spirit of SST (the Structural Simulation Toolkit), which the
// DeACT paper uses for its evaluation. Components schedule events on a
// shared engine; ties are broken by insertion order so that runs are fully
// reproducible.
//
// The event queue is a value-based indexed d-ary heap: events are stored
// inline (no per-event heap allocation), and the steady-state scheduling
// path allocates nothing once the queue has reached its high-water mark.
// Components with a per-event hot path should implement Handler and use
// ScheduleHandler/AfterHandler, which is closure-free; Schedule/After accept
// plain funcs for convenience (the closure, if any, is the caller's only
// allocation).
//
// All simulated time is expressed in picoseconds (type Time). At the 2GHz
// core clock used throughout the paper one cycle is 500ps.
package sim

// Time is a simulated timestamp in picoseconds.
type Time uint64

// Common time units, all expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// NS converts a nanosecond count to a Time.
func NS(n uint64) Time { return Time(n) * Nanosecond }

// US converts a microsecond count to a Time.
func US(n uint64) Time { return Time(n) * Microsecond }

// Handler is a scheduled callback. Self-rescheduling components (a CPU core
// stepping through its instruction stream, a refresh engine) implement it
// once and pass themselves to ScheduleHandler, so steady-state simulation
// allocates zero events per dispatch.
type Handler interface {
	Handle(now Time)
}

// handlerFunc adapts a plain func to Handler. Func values are
// pointer-shaped, so the interface conversion itself does not allocate.
type handlerFunc func(now Time)

func (f handlerFunc) Handle(now Time) { f(now) }

// event is one scheduled callback, stored by value in the heap.
type event struct {
	at  Time
	seq uint64
	h   Handler
}

// degree is the heap arity. A 4-ary heap trades slightly more sift-down
// comparisons for half the tree depth and much better cache behaviour than
// a binary heap on the wide, shallow queues this simulator produces.
const degree = 4

// before orders events by (timestamp, insertion sequence): the FIFO
// tie-break that makes runs reproducible.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a deterministic discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	queue  []event // d-ary min-heap ordered by (at, seq)
	fired  uint64
	halted bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have been dispatched so far.
func (e *Engine) Fired() uint64 { return e.fired }

// ScheduleHandler enqueues h to run at absolute time at. Scheduling in the
// past (at < Now) clamps to Now; this keeps component code simple when
// latencies round to zero. This is the allocation-free scheduling path.
func (e *Engine) ScheduleHandler(at Time, h Handler) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.queue = append(e.queue, event{at: at, seq: e.seq, h: h})
	e.siftUp(len(e.queue) - 1)
}

// AfterHandler enqueues h to run delay picoseconds from now.
func (e *Engine) AfterHandler(delay Time, h Handler) {
	e.ScheduleHandler(e.now+delay, h)
}

// Schedule enqueues fn to run at absolute time at, clamping past times to
// Now like ScheduleHandler.
func (e *Engine) Schedule(at Time, fn func(now Time)) {
	e.ScheduleHandler(at, handlerFunc(fn))
}

// After enqueues fn to run delay picoseconds from now.
func (e *Engine) After(delay Time, fn func(now Time)) {
	e.Schedule(e.now+delay, fn)
}

// siftUp restores the heap property from leaf i toward the root.
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / degree
		if !ev.before(q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

// siftDown restores the heap property from the root toward the leaves.
func (e *Engine) siftDown() {
	q := e.queue
	n := len(q)
	ev := q[0]
	i := 0
	for {
		first := i*degree + 1
		if first >= n {
			break
		}
		best := first
		last := first + degree
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].before(q[best]) {
				best = c
			}
		}
		if !q[best].before(ev) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = ev
}

// pop removes and returns the earliest event. The queue must be non-empty.
func (e *Engine) pop() event {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the Handler reference
	e.queue = q[:n]
	if n > 0 {
		e.siftDown()
	}
	return top
}

// Halt stops Run before the next event is dispatched. It is typically called
// from inside an event handler once a simulation's exit criterion is met.
func (e *Engine) Halt() { e.halted = true }

// Run dispatches events in timestamp order until the queue drains, Halt is
// called, or the optional horizon (non-zero) is reached. It returns the
// final simulated time.
//
// An event beyond the horizon stays in the queue (the head is peeked, not
// popped), so a subsequent Run with a larger horizon dispatches it.
func (e *Engine) Run(horizon Time) Time {
	e.halted = false
	for len(e.queue) > 0 && !e.halted {
		if horizon != 0 && e.queue[0].at > horizon {
			if horizon > e.now {
				e.now = horizon
			}
			return e.now
		}
		ev := e.pop()
		e.now = ev.at
		e.fired++
		ev.h.Handle(e.now)
	}
	return e.now
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }
