package sim

// Server models the same contract as Resource — a serially occupied
// resource whose requests may start in any idle window at or after their
// arrival — with a representation batched for the common case: a single
// tail time serves in-order arrivals in O(1), and only out-of-order
// arrivals (a request computed by an access chain that started earlier than
// another chain's bookings) consult a small calendar of idle gaps.
//
// The two representations are complements of each other: Resource stores
// the busy intervals, Server stores the tail of the last booking plus the
// idle gaps before it. For the memory-device banks and fabric links, whose
// arrivals are overwhelmingly tail-ordered, the gap calendar stays near
// empty and Acquire is a compare and an add.
//
// Like Resource, a Server bound to a Clock retires gaps that closed at or
// before the engine's current time — exact pruning, since no future arrival
// can precede it. Pruning is kept off the tail fast path: it runs when an
// out-of-order arrival is about to scan the calendar, and when the calendar
// needs room, both O(1) amortized (each gap is appended, skipped and
// compacted away once).
type Server struct {
	clock     Clock
	tail      Time  // end of the last booking; everything at/after is free
	gaps      []gap // gaps[head:] is live: sorted, disjoint, before tail
	head      int   // retired prefix length, compacted away periodically
	watermark Time
	busy      Time
	uses      uint64
}

type gap struct{ start, end Time }

// maxLiveGaps bounds the live gap calendar for servers without a bound
// clock (or whose clock lags far behind): when exceeded, the oldest gap is
// forgotten (no longer bookable), which only over-serializes the distant
// past. A clock-bound server prunes exactly and in practice never hits it.
const maxLiveGaps = 512

// Bind attaches the pruning clock. The caller guarantees that no subsequent
// Acquire arrives earlier than the clock's Now() at call time.
func (s *Server) Bind(c Clock) { s.clock = c }

// Prune retires gaps that closed at or before w; the watermark is monotone.
// A gap straddling w stays bookable.
func (s *Server) Prune(w Time) {
	if w <= s.watermark {
		return
	}
	s.watermark = w
	for s.head < len(s.gaps) && s.gaps[s.head].end <= w {
		s.head++
	}
	// Compact once the retired prefix dominates the slice, so the backing
	// array stays proportional to the live calendar.
	if s.head >= 32 && s.head*2 >= len(s.gaps) {
		n := copy(s.gaps, s.gaps[s.head:])
		s.gaps = s.gaps[:n]
		s.head = 0
	}
}

// prune runs Prune against the bound clock, if any.
func (s *Server) prune() {
	if s.clock != nil {
		s.Prune(s.clock.Now())
	}
}

// Acquire reserves the server for service picoseconds starting no earlier
// than now, in the earliest idle window that fits. It returns the service
// start and completion times. When a clock is bound, now must not precede
// the clock's current time.
func (s *Server) Acquire(now, service Time) (start, done Time) {
	s.uses++
	s.busy += service
	if service == 0 {
		return now, now
	}
	if now >= s.tail {
		// Tail fast path: the arrival is past every booking. The idle
		// stretch it skips over becomes a bookable gap.
		if now > s.tail {
			s.pushGap(s.tail, now)
		}
		s.tail = now + service
		return now, s.tail
	}
	// Out-of-order arrival. Gap ends are ascending (gaps are created in
	// tail order and splits keep both halves in place), so if the request
	// cannot finish inside the latest-ending live gap it fits no gap at
	// all: queue straight behind the tail without touching the calendar.
	// This keeps the common "barely out of order" arrival — behind the
	// tail but past every idle window — at two compares.
	if n := len(s.gaps); n == s.head || now+service > s.gaps[n-1].end {
		start = s.tail
		s.tail += service
		return start, s.tail
	}
	// Take the earliest gap that fits, else queue behind the tail. Gaps
	// closing at or before the arrival cannot host it (their remaining
	// room ends before now+service); gap ends are sorted, so
	// binary-search past them instead of scanning — which also skips any
	// retired-but-uncompacted prefix, so no pruning is needed here.
	lo, hi := s.head, len(s.gaps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.gaps[mid].end <= now {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(s.gaps); i++ {
		g := s.gaps[i]
		start = now
		if g.start > start {
			start = g.start
		}
		if start+service > g.end {
			continue
		}
		done = start + service
		s.bookInGap(i, g, start, done)
		return start, done
	}
	start = s.tail
	s.tail += service
	return start, s.tail
}

// pushGap records [from, to) as idle. Gaps are created in tail order, so
// appending keeps the calendar sorted.
func (s *Server) pushGap(from, to Time) {
	if to <= s.watermark {
		return // already unreachable
	}
	// Bound the live calendar for unbound (or badly lagging) clocks by
	// forgetting the oldest idle window: an O(1) head advance, no copy.
	if len(s.gaps)-s.head >= maxLiveGaps {
		s.head++
	}
	if len(s.gaps) == cap(s.gaps) {
		// About to grow: retire what the clock allows and compact when
		// that halves the slice — otherwise let append grow it. Either way
		// the work is O(1) amortized per push and memory stays
		// O(maxLiveGaps).
		s.prune()
		if s.head*2 >= len(s.gaps) {
			n := copy(s.gaps, s.gaps[s.head:])
			s.gaps = s.gaps[:n]
			s.head = 0
		}
	}
	s.gaps = append(s.gaps, gap{start: from, end: to})
}

// bookInGap splits gaps[i] around the booking [start, done).
func (s *Server) bookInGap(i int, g gap, start, done Time) {
	left := gap{start: g.start, end: start}
	right := gap{start: done, end: g.end}
	hasL := left.end > left.start
	hasR := right.end > right.start
	switch {
	case hasL && hasR:
		// An interior booking nets one extra live gap; honor the same
		// live bound as pushGap (dropping the oldest window) so unbound
		// servers stay bounded under split-heavy patterns too. Skip when
		// the oldest live gap is the one being split.
		if len(s.gaps)-s.head >= maxLiveGaps && s.head < i {
			s.head++
		}
		s.gaps = append(s.gaps, gap{})
		copy(s.gaps[i+2:], s.gaps[i+1:])
		s.gaps[i] = left
		s.gaps[i+1] = right
	case hasL:
		s.gaps[i] = left
	case hasR:
		s.gaps[i] = right
	default:
		s.gaps = append(s.gaps[:i], s.gaps[i+1:]...)
	}
}

// NextFree returns the end of the last booking — the earliest time a
// request arriving after all current bookings could begin service.
func (s *Server) NextFree() Time { return s.tail }

// BusyTime returns the total time the server has been reserved. Pruning
// does not affect it.
func (s *Server) BusyTime() Time { return s.busy }

// Uses returns the number of Acquire calls. Pruning does not affect it.
func (s *Server) Uses() uint64 { return s.uses }

// liveGaps returns the number of unretired idle windows (tests).
func (s *Server) liveGaps() int { return len(s.gaps) - s.head }

// Reset clears all reservation state, keeping the bound clock.
func (s *Server) Reset() { *s = Server{clock: s.clock} }
