package sim

import "sort"

// Resource models a serially occupied hardware resource (a DRAM bank, a
// fabric link direction, an STU port). A request occupies the resource for
// its service time; overlapping requests queue.
//
// Unlike the classic "next free time" scalar, the resource books *busy
// intervals* and lets a request start in any idle gap at or after its
// arrival. This matters because the surrounding simulator computes whole
// access chains synchronously: a page-table walk reserves a link at T,
// T+1.1µs, T+2.2µs…, and with a scalar next-free-time every other
// requester would queue behind the *last* of those reservations even
// though the link is idle in between — which silently serializes the whole
// machine.
//
// The calendar is kept sorted, non-overlapping and maximally merged at all
// times, so Acquire only needs a binary search for the arrival position, a
// short forward walk to the first fitting gap, and an O(1) merge with the
// (at most two) adjacent intervals — the common tail-append case touches
// nothing else.
type Resource struct {
	intervals []interval // sorted by start, non-overlapping, adjacency-merged
	busy      Time
	uses      uint64
}

type interval struct {
	start, end Time
}

// maxIntervals bounds the booking calendar; when exceeded, the oldest
// intervals are merged away (their gaps are no longer bookable, which only
// over-serializes the distant past and keeps Acquire O(small)).
const maxIntervals = 512

// Acquire reserves the resource for service picoseconds starting no earlier
// than now, in the earliest idle gap that fits. It returns the time at
// which service starts and the time at which it completes.
func (r *Resource) Acquire(now, service Time) (start, done Time) {
	r.uses++
	r.busy += service
	if service == 0 {
		return now, now
	}
	start = now
	n := len(r.intervals)

	// Fast path: arrival at or after the last booking — append or extend.
	if n == 0 || start >= r.intervals[n-1].end {
		done = start + service
		if n > 0 && r.intervals[n-1].end == start {
			r.intervals[n-1].end = done
		} else {
			r.intervals = append(r.intervals, interval{start: start, end: done})
		}
		r.cap()
		return start, done
	}

	// Intervals ending at or before the arrival can neither delay the
	// request nor host it; binary-search past them.
	i := sort.Search(n, func(j int) bool { return r.intervals[j].end > start })
	for ; i < n; i++ {
		iv := r.intervals[i]
		if start+service <= iv.start {
			break
		}
		if iv.end > start {
			start = iv.end
		}
	}
	done = start + service

	// Insert [start, done) before index i, fusing with the neighbours when
	// exactly adjacent (the calendar is already merged, so overlap is
	// impossible: start ≥ intervals[i-1].end and done ≤ intervals[i].start).
	prevTouch := i > 0 && r.intervals[i-1].end == start
	nextTouch := i < n && r.intervals[i].start == done
	switch {
	case prevTouch && nextTouch:
		r.intervals[i-1].end = r.intervals[i].end
		r.intervals = append(r.intervals[:i], r.intervals[i+1:]...)
	case prevTouch:
		r.intervals[i-1].end = done
	case nextTouch:
		r.intervals[i].start = start
	default:
		r.intervals = append(r.intervals, interval{})
		copy(r.intervals[i+1:], r.intervals[i:])
		r.intervals[i] = interval{start: start, end: done}
	}
	r.cap()
	return start, done
}

// cap bounds the calendar: when it overflows, the oldest half is fused into
// one opaque blob (its gaps are no longer bookable, which only
// over-serializes the distant past and keeps Acquire O(small)).
func (r *Resource) cap() {
	if len(r.intervals) > maxIntervals {
		half := len(r.intervals) / 2
		r.intervals[half-1] = interval{start: r.intervals[0].start, end: r.intervals[half-1].end}
		r.intervals = append(r.intervals[:0], r.intervals[half-1:]...)
	}
}

// NextFree returns the end of the last booked interval — the earliest time
// a request arriving after all current bookings could begin service.
func (r *Resource) NextFree() Time {
	if len(r.intervals) == 0 {
		return 0
	}
	return r.intervals[len(r.intervals)-1].end
}

// BusyTime returns the total time the resource has been reserved.
func (r *Resource) BusyTime() Time { return r.busy }

// Uses returns the number of Acquire calls.
func (r *Resource) Uses() uint64 { return r.uses }

// Reset clears all reservation state.
func (r *Resource) Reset() { *r = Resource{} }
