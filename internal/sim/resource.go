package sim

import "sort"

// Clock supplies the current simulated time. *Engine implements it; resource
// calendars bound to a clock use it as a pruning watermark: no future request
// can arrive before the engine's current time (access chains are computed
// forward from the dispatching event), so bookings entirely in the past can
// be retired exactly, without the over-serialization a lossy size cap causes.
type Clock interface {
	Now() Time
}

// Resource models a serially occupied hardware resource (a DRAM bank, a
// fabric link direction, an STU port). A request occupies the resource for
// its service time; overlapping requests queue.
//
// Unlike the classic "next free time" scalar, the resource books *busy
// intervals* and lets a request start in any idle gap at or after its
// arrival. This matters because the surrounding simulator computes whole
// access chains synchronously: a page-table walk reserves a link at T,
// T+1.1µs, T+2.2µs…, and with a scalar next-free-time every other
// requester would queue behind the *last* of those reservations even
// though the link is idle in between — which silently serializes the whole
// machine.
//
// The calendar is kept sorted, non-overlapping and adjacency-merged at all
// times, so Acquire only needs a binary search for the arrival position, a
// short forward walk to the first fitting gap, and an O(1) merge with the
// (at most two) adjacent intervals — the common tail-append case touches
// nothing else.
//
// Bind attaches a Clock whose Now() lower-bounds every future arrival;
// Acquire then retires intervals that ended at or before that watermark.
// Retirement is exact (only unreachable calendar state is dropped) and O(1)
// amortized: each interval is appended once, skipped once, and compacted
// away once. An unbound Resource keeps its whole calendar; production
// resources are bound to the engine by core.NewSystem.
type Resource struct {
	clock     Clock
	intervals []interval // intervals[head:] is live: sorted, non-overlapping
	head      int        // retired prefix length, compacted away periodically
	watermark Time       // highest Prune bound seen
	busy      Time
	uses      uint64
}

type interval struct {
	start, end Time
}

// Bind attaches the pruning clock. The caller guarantees that no subsequent
// Acquire arrives earlier than the clock's Now() at call time (true for the
// engine: event chains only run forward from the current event).
func (r *Resource) Bind(c Clock) { r.clock = c }

// Prune retires intervals that end at or before w. The watermark is
// monotone: an earlier w than previously seen is a no-op. Gaps straddling
// the watermark stay bookable (only *fully* past intervals are dropped).
func (r *Resource) Prune(w Time) {
	if w <= r.watermark {
		return
	}
	r.watermark = w
	for r.head < len(r.intervals) && r.intervals[r.head].end <= w {
		r.head++
	}
	// Compact once the retired prefix dominates the slice, so the backing
	// array stays proportional to the live calendar.
	if r.head >= 32 && r.head*2 >= len(r.intervals) {
		n := copy(r.intervals, r.intervals[r.head:])
		r.intervals = r.intervals[:n]
		r.head = 0
	}
}

// Acquire reserves the resource for service picoseconds starting no earlier
// than now, in the earliest idle gap that fits. It returns the time at
// which service starts and the time at which it completes. When a clock is
// bound, now must not precede the clock's current time.
func (r *Resource) Acquire(now, service Time) (start, done Time) {
	// Amortized retirement: consulting the clock every call costs more
	// than it saves, and the binary search skips retired intervals anyway;
	// a periodic prune keeps the backing array bounded.
	if r.clock != nil && r.uses&63 == 0 {
		r.Prune(r.clock.Now())
	}
	r.uses++
	r.busy += service
	if service == 0 {
		return now, now
	}
	start = now
	n := len(r.intervals)

	// Fast path: arrival at or after the last booking — append or extend.
	if n == r.head || start >= r.intervals[n-1].end {
		done = start + service
		if n > r.head && r.intervals[n-1].end == start {
			r.intervals[n-1].end = done
		} else {
			r.intervals = append(r.intervals, interval{start: start, end: done})
		}
		return start, done
	}

	// Intervals ending at or before the arrival can neither delay the
	// request nor host it; binary-search past them.
	i := r.head + sort.Search(n-r.head, func(j int) bool { return r.intervals[r.head+j].end > start })
	for ; i < n; i++ {
		iv := r.intervals[i]
		if start+service <= iv.start {
			break
		}
		if iv.end > start {
			start = iv.end
		}
	}
	done = start + service

	// Insert [start, done) before index i, fusing with the neighbours when
	// exactly adjacent (the calendar is already merged, so overlap is
	// impossible: start ≥ intervals[i-1].end and done ≤ intervals[i].start).
	prevTouch := i > r.head && r.intervals[i-1].end == start
	nextTouch := i < n && r.intervals[i].start == done
	switch {
	case prevTouch && nextTouch:
		r.intervals[i-1].end = r.intervals[i].end
		r.intervals = append(r.intervals[:i], r.intervals[i+1:]...)
	case prevTouch:
		r.intervals[i-1].end = done
	case nextTouch:
		r.intervals[i].start = start
	default:
		r.intervals = append(r.intervals, interval{})
		copy(r.intervals[i+1:], r.intervals[i:])
		r.intervals[i] = interval{start: start, end: done}
	}
	return start, done
}

// NextFree returns the end of the last booked interval — the earliest time
// a request arriving after all current bookings could begin service. With
// every booking retired it returns the pruning watermark (no arrival can
// precede it).
func (r *Resource) NextFree() Time {
	if len(r.intervals) == r.head {
		return r.watermark
	}
	return r.intervals[len(r.intervals)-1].end
}

// BusyTime returns the total time the resource has been reserved. Pruning
// does not affect it.
func (r *Resource) BusyTime() Time { return r.busy }

// Uses returns the number of Acquire calls. Pruning does not affect it.
func (r *Resource) Uses() uint64 { return r.uses }

// live returns the number of unretired calendar intervals (tests).
func (r *Resource) live() int { return len(r.intervals) - r.head }

// Reset clears all reservation state, keeping the bound clock.
func (r *Resource) Reset() { *r = Resource{clock: r.clock} }
