package sim

// Resource models a serially occupied hardware resource (a DRAM bank, a
// fabric link direction, an STU port). A request occupies the resource for
// its service time; overlapping requests queue.
//
// Unlike the classic "next free time" scalar, the resource books *busy
// intervals* and lets a request start in any idle gap at or after its
// arrival. This matters because the surrounding simulator computes whole
// access chains synchronously: a page-table walk reserves a link at T,
// T+1.1µs, T+2.2µs…, and with a scalar next-free-time every other
// requester would queue behind the *last* of those reservations even
// though the link is idle in between — which silently serializes the whole
// machine.
type Resource struct {
	intervals []interval // sorted by start, non-overlapping
	busy      Time
	uses      uint64
}

type interval struct {
	start, end Time
}

// maxIntervals bounds the booking calendar; when exceeded, the oldest
// intervals are merged away (their gaps are no longer bookable, which only
// over-serializes the distant past and keeps Acquire O(small)).
const maxIntervals = 512

// Acquire reserves the resource for service picoseconds starting no earlier
// than now, in the earliest idle gap that fits. It returns the time at
// which service starts and the time at which it completes.
func (r *Resource) Acquire(now, service Time) (start, done Time) {
	r.uses++
	r.busy += service
	if service == 0 {
		return now, now
	}
	start = now
	insertAt := len(r.intervals)
	for i, iv := range r.intervals {
		if start+service <= iv.start {
			insertAt = i
			break
		}
		if iv.end > start {
			start = iv.end
		}
	}
	done = start + service
	r.intervals = append(r.intervals, interval{})
	copy(r.intervals[insertAt+1:], r.intervals[insertAt:])
	r.intervals[insertAt] = interval{start: start, end: done}
	r.coalesce()
	return start, done
}

// coalesce merges adjacent/overlapping intervals and bounds the calendar.
func (r *Resource) coalesce() {
	out := r.intervals[:0]
	for _, iv := range r.intervals {
		if n := len(out); n > 0 && iv.start <= out[n-1].end {
			if iv.end > out[n-1].end {
				out[n-1].end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	r.intervals = out
	if len(r.intervals) > maxIntervals {
		// Fuse the oldest half into one opaque blob.
		half := len(r.intervals) / 2
		r.intervals[half-1] = interval{start: r.intervals[0].start, end: r.intervals[half-1].end}
		r.intervals = append(r.intervals[:0], r.intervals[half-1:]...)
	}
}

// NextFree returns the end of the last booked interval — the earliest time
// a request arriving after all current bookings could begin service.
func (r *Resource) NextFree() Time {
	if len(r.intervals) == 0 {
		return 0
	}
	return r.intervals[len(r.intervals)-1].end
}

// BusyTime returns the total time the resource has been reserved.
func (r *Resource) BusyTime() Time { return r.busy }

// Uses returns the number of Acquire calls.
func (r *Resource) Uses() uint64 { return r.uses }

// Reset clears all reservation state.
func (r *Resource) Reset() { *r = Resource{} }
