// Snapshot state for the engine and its resource calendars. The state types
// here (and in the component packages) follow one pattern: a value-type
// XxxState with a CaptureState(*XxxState) that overwrites the target in
// place — reusing its backing arrays, so repeated captures into a recycled
// snapshot allocate nothing — and a RestoreState(*XxxState) that copies the
// state INTO the receiver's own storage. Restore never aliases the state's
// slices, so two components restored from one state share nothing.
package sim

// EngineState captures an Engine at a quiescent point: the event queue must
// be empty (every component retired, nothing in flight), which reduces the
// engine to its clock and counters. core.System snapshots exactly at the
// warmup/measure boundary, where it has already verified quiescence.
type EngineState struct {
	now   Time
	seq   uint64
	fired uint64
}

// CaptureState captures the engine into st. It panics if events are pending:
// snapshotting a non-quiescent engine would silently drop the in-flight
// events (and their Handler closures cannot be deep-copied anyway).
func (e *Engine) CaptureState(st *EngineState) {
	if len(e.queue) != 0 {
		panic("sim: CaptureState with pending events; snapshot only at a quiescent point")
	}
	st.now, st.seq, st.fired = e.now, e.seq, e.fired
}

// RestoreState rewinds the engine to st, emptying the queue.
func (e *Engine) RestoreState(st *EngineState) {
	e.now, e.seq, e.fired = st.now, st.seq, st.fired
	for i := range e.queue {
		e.queue[i] = event{}
	}
	e.queue = e.queue[:0]
	e.halted = false
}

// ServerState captures a Server's reservation calendar. The retired prefix
// is dropped (restore normalizes head to 0), which is behavior-identical:
// retired gaps are unreachable by construction.
type ServerState struct {
	tail      Time
	watermark Time
	busy      Time
	uses      uint64
	gaps      []gap
}

// CaptureState captures the server into st, reusing st's gap storage.
func (s *Server) CaptureState(st *ServerState) {
	st.tail, st.watermark, st.busy, st.uses = s.tail, s.watermark, s.busy, s.uses
	st.gaps = append(st.gaps[:0], s.gaps[s.head:]...)
}

// RestoreState rewinds the server to st, keeping the bound clock. The gaps
// are copied into the server's own storage.
func (s *Server) RestoreState(st *ServerState) {
	s.tail, s.watermark, s.busy, s.uses = st.tail, st.watermark, st.busy, st.uses
	s.gaps = append(s.gaps[:0], st.gaps...)
	s.head = 0
}

// ResourceState captures a Resource's interval calendar, retired prefix
// dropped like ServerState. The uses counter matters beyond stats: it drives
// the amortized prune cadence (uses&63), so restoring it keeps a forked
// run's prune points — and therefore its exact calendar contents —
// identical to a cold run's.
type ResourceState struct {
	watermark Time
	busy      Time
	uses      uint64
	intervals []interval
}

// CaptureState captures the resource into st, reusing st's storage.
func (r *Resource) CaptureState(st *ResourceState) {
	st.watermark, st.busy, st.uses = r.watermark, r.busy, r.uses
	st.intervals = append(st.intervals[:0], r.intervals[r.head:]...)
}

// RestoreState rewinds the resource to st, keeping the bound clock.
func (r *Resource) RestoreState(st *ResourceState) {
	r.watermark, r.busy, r.uses = st.watermark, st.busy, st.uses
	r.intervals = append(r.intervals[:0], st.intervals...)
	r.head = 0
}
