package sim

import "testing"

// stepper is a self-rescheduling Handler, the shape cpu.Core drives the
// engine with.
type stepper struct {
	e     *Engine
	count int
	limit int
}

func (s *stepper) Handle(now Time) {
	s.count++
	if s.count < s.limit {
		s.e.AfterHandler(1, s)
	}
}

// BenchmarkEngine measures the per-event cost of the scheduler itself with
// a self-rescheduling chain. allocs/op is the headline: the handler path
// must be allocation-free in steady state; the closure path pays one
// closure per event (the caller's closure, not the engine's).
func BenchmarkEngine(b *testing.B) {
	b.Run("handler", func(b *testing.B) {
		e := NewEngine()
		s := &stepper{e: e, limit: b.N}
		b.ReportAllocs()
		b.ResetTimer()
		e.ScheduleHandler(0, s)
		e.Run(0)
	})
	b.Run("closure", func(b *testing.B) {
		e := NewEngine()
		var fn func(now Time)
		count := 0
		fn = func(now Time) {
			count++
			if count < b.N {
				e.After(1, fn)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Schedule(0, fn)
		e.Run(0)
	})
}
