package cache

import (
	"fmt"

	"deact/internal/arena"
)

// HitLevel identifies where in the hierarchy an access was served.
type HitLevel int

// Hit levels, in lookup order. Memory means the access missed all caches.
const (
	L1 HitLevel = iota + 1
	L2
	L3
	Memory
)

// String implements fmt.Stringer.
func (h HitLevel) String() string {
	switch h {
	case L1:
		return "L1"
	case L2:
		return "L2"
	case L3:
		return "L3"
	case Memory:
		return "memory"
	default:
		return fmt.Sprintf("HitLevel(%d)", int(h))
	}
}

// HierarchyConfig sizes the three levels (Table II defaults live in the
// core package).
type HierarchyConfig struct {
	Cores  int
	L1Size uint64
	L1Ways int
	L2Size uint64
	L2Ways int
	L3Size uint64
	L3Ways int
}

// Hierarchy is an inclusive three-level cache hierarchy: private L1 and L2
// per core, one shared L3. Inclusivity is enforced by back-invalidating L1
// and L2 when the L3 evicts a block.
type Hierarchy struct {
	l1, l2 []*Cache
	l3     *Cache
	wbBuf  []uint64 // reused writeback scratch, returned by Access
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	return NewHierarchyInArena(nil, cfg)
}

// NewHierarchyInArena is NewHierarchy drawing every cache's line arrays
// from a (nil allocates normally). Recycle returns them.
func NewHierarchyInArena(a *arena.Arena, cfg HierarchyConfig) (*Hierarchy, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("cache: cores must be positive")
	}
	h := &Hierarchy{}
	for i := 0; i < cfg.Cores; i++ {
		l1, err := NewInArena(a, fmt.Sprintf("l1.%d", i), cfg.L1Size, cfg.L1Ways)
		if err != nil {
			return nil, err
		}
		l2, err := NewInArena(a, fmt.Sprintf("l2.%d", i), cfg.L2Size, cfg.L2Ways)
		if err != nil {
			return nil, err
		}
		h.l1 = append(h.l1, l1)
		h.l2 = append(h.l2, l2)
	}
	var err error
	h.l3, err = NewInArena(a, "l3", cfg.L3Size, cfg.L3Ways)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Recycle returns every cache's line arrays to a for the next run's
// construction. The hierarchy must not be used afterwards.
func (h *Hierarchy) Recycle(a *arena.Arena) {
	for i := range h.l1 {
		h.l1[i].recycle(a)
		h.l2[i].recycle(a)
	}
	h.l3.recycle(a)
}

// Access performs a load or store by core on the physical block containing
// a. It returns the level that served the access and any dirty blocks that
// must be written back to memory as a result of evictions. The returned
// slice aliases an internal scratch buffer and is only valid until the next
// Access call; callers consume it immediately.
func (h *Hierarchy) Access(core int, a uint64, write bool) (HitLevel, []uint64) {
	writebacks := h.wbBuf[:0]
	l1, l2 := h.l1[core], h.l2[core]

	if hit, _, _ := l1.Access(a, write); hit {
		return L1, nil
	}
	// L1 victims spill into L2 conceptually; we model only dirty traffic and
	// only track blocks leaving the chip (L3 evictions), so L1/L2 victims
	// are dropped unless dirty-and-not-elsewhere, which inclusivity makes
	// impossible: a dirty L1 victim is still present in L3.
	if hit, _, _ := l2.Access(a, write); hit {
		return L2, nil
	}
	hit, victim, evicted := h.l3.Access(a, write)
	if evicted {
		// Inclusive hierarchy: the departing L3 block must vanish from all
		// upper levels; any dirty upper copy joins the writeback.
		dirty := victim.Dirty
		for i := range h.l1 {
			if _, d := h.l1[i].Invalidate(victim.Addr); d {
				dirty = true
			}
			if _, d := h.l2[i].Invalidate(victim.Addr); d {
				dirty = true
			}
		}
		if dirty {
			writebacks = append(writebacks, victim.Addr)
			// Store the (possibly regrown) scratch only when it was
			// touched: the unconditional slice store was a measurable
			// write-barrier cost on the miss path.
			h.wbBuf = writebacks
		}
	}
	if hit {
		return L3, writebacks
	}
	return Memory, writebacks
}

// SetDirtyInL3 marks the block containing a dirty in the L3 if present. The
// hierarchy propagates store dirtiness lazily (stores allocate dirty at the
// level they hit); the node model calls this when a dirty block is evicted
// from an upper level in tests.
func (h *Hierarchy) SetDirtyInL3(a uint64) {
	if h.l3.Probe(a) {
		h.l3.Access(a, true)
	}
}

// L1Cache returns core's private L1 (for stats and tests).
func (h *Hierarchy) L1Cache(core int) *Cache { return h.l1[core] }

// L2Cache returns core's private L2.
func (h *Hierarchy) L2Cache(core int) *Cache { return h.l2[core] }

// L3Cache returns the shared L3.
func (h *Hierarchy) L3Cache() *Cache { return h.l3 }

// Misses returns the number of accesses that went to memory.
func (h *Hierarchy) Misses() uint64 { return h.l3.Misses() }
