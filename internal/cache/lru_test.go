package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// oraclePair builds the same geometry twice: once with the rank-word
// representation New selects at assoc ≤ 16, once forced onto the per-way
// stamp representation the rank word replaced. The stamp cache is the
// oracle: the rank word is only correct if every observable output —
// hit/miss, victim identity, victim dirtiness, Probe — is bit-identical.
func oraclePair(t *testing.T, sizeBytes uint64, ways int) (rank, stamp *Cache) {
	t.Helper()
	rank, err := newCache(nil, "rank", sizeBytes, ways, false)
	if err != nil {
		t.Fatal(err)
	}
	if rank.order == nil {
		t.Fatalf("geometry %d/%d did not select the rank word", sizeBytes, ways)
	}
	stamp, err = newCache(nil, "stamp", sizeBytes, ways, true)
	if err != nil {
		t.Fatal(err)
	}
	if stamp.used == nil {
		t.Fatal("forceStamps did not select the stamp representation")
	}
	return rank, stamp
}

// TestRankWordMatchesStampOracle drives randomized access/invalidate
// streams through both representations at every rank-capable associativity
// and requires bit-identical observable behaviour at each step. The
// address range is kept tight (a few sets' worth of conflicting blocks) so
// evictions, refills and re-invalidations all occur constantly.
func TestRankWordMatchesStampOracle(t *testing.T) {
	for _, tc := range []struct {
		sizeBytes uint64
		ways      int
	}{
		{64 * 4, 1},       // direct-mapped, 4 sets
		{64 * 2, 2},       // one set, 2 ways
		{64 * 4 * 2, 4},   // 2 sets
		{64 * 8, 8},       // one set, 8 ways
		{64 * 8 * 4, 8},   // 4 sets (the L1/L2 shape)
		{64 * 16, 16},     // one set, 16 ways (all nibbles used)
		{64 * 16 * 4, 16}, // 4 sets, 16 ways (the L3 shape)
	} {
		t.Run(fmt.Sprintf("%dB_%dway", tc.sizeBytes, tc.ways), func(t *testing.T) {
			rank, stamp := oraclePair(t, tc.sizeBytes, tc.ways)
			rng := rand.New(rand.NewSource(int64(tc.sizeBytes)*31 + int64(tc.ways)))

			// 4x the capacity in distinct blocks forces steady conflict.
			blocks := 4 * int(tc.sizeBytes) / 64
			steps := 20000
			if testing.Short() {
				steps = 4000
			}
			for i := 0; i < steps; i++ {
				a := uint64(rng.Intn(blocks)) * 64
				switch rng.Intn(10) {
				case 0: // invalidate (resident or not)
					p1, d1 := rank.Invalidate(a)
					p2, d2 := stamp.Invalidate(a)
					if p1 != p2 || d1 != d2 {
						t.Fatalf("step %d: Invalidate(%#x) diverged: rank=(%v,%v) stamp=(%v,%v)", i, a, p1, d1, p2, d2)
					}
				default:
					w := rng.Intn(3) == 0
					h1, v1, e1 := rank.Access(a, w)
					h2, v2, e2 := stamp.Access(a, w)
					if h1 != h2 || e1 != e2 || v1 != v2 {
						t.Fatalf("step %d: Access(%#x,%v) diverged: rank=(%v,%+v,%v) stamp=(%v,%+v,%v)",
							i, a, w, h1, v1, e1, h2, v2, e2)
					}
				}
				if p := uint64(rng.Intn(blocks)) * 64; rank.Probe(p) != stamp.Probe(p) {
					t.Fatalf("step %d: Probe diverged", i)
				}
			}
			if rank.Hits() != stamp.Hits() || rank.Misses() != stamp.Misses() {
				t.Fatalf("counters diverged: rank %d/%d stamp %d/%d",
					rank.Hits(), rank.Misses(), stamp.Hits(), stamp.Misses())
			}
		})
	}
}

// TestRankWordInvalidateTieBreak pins the subtle case the stamp scan
// resolves implicitly: multiple simultaneously-empty ways must refill
// lowest-way-first regardless of the order they were invalidated in.
func TestRankWordInvalidateTieBreak(t *testing.T) {
	for _, order := range [][2]uint64{{1, 3}, {3, 1}} {
		rank, stamp := oraclePair(t, 64*4, 4) // one set, 4 ways
		for _, c := range []*Cache{rank, stamp} {
			for w := uint64(0); w < 4; w++ {
				c.Access(w*64, false) // fill ways 0..3 with blocks 0..3
			}
			c.Invalidate(order[0] * 64)
			c.Invalidate(order[1] * 64)
		}
		// Two refills must land in the emptied ways lowest-way-first on
		// both representations: no evictions, then the next miss evicts
		// the same victim on both.
		for i, a := range []uint64{9 * 64, 10 * 64, 11 * 64} {
			h1, v1, e1 := rank.Access(a, false)
			h2, v2, e2 := stamp.Access(a, false)
			if h1 != h2 || e1 != e2 || v1 != v2 {
				t.Fatalf("invalidate order %v, refill %d: rank=(%v,%+v,%v) stamp=(%v,%+v,%v)",
					order, i, h1, v1, e1, h2, v2, e2)
			}
			if i < 2 && e1 {
				t.Fatalf("refill %d evicted despite empty ways", i)
			}
		}
	}
}

// TestInitOrderWord pins the rank-word layout: way 0 at the LRU position,
// filler nibbles 0xF above the used region.
func TestInitOrderWord(t *testing.T) {
	if got := initOrderWord(16); got != 0x0123456789ABCDEF {
		t.Errorf("initOrderWord(16) = %#x", got)
	}
	if got := initOrderWord(2); got != 0xFFFF_FFFF_FFFF_FF01 {
		t.Errorf("initOrderWord(2) = %#x", got)
	}
	if got := initOrderWord(1); got != 0xFFFF_FFFF_FFFF_FFF0 {
		t.Errorf("initOrderWord(1) = %#x", got)
	}
}

// BenchmarkCacheAccess guards the per-access cost of the three access
// outcomes the hierarchy mixes: repeat hits (way-cache path), scan hits
// (tag scan + rank promotion), and a streaming miss/eviction mix (victim
// selection). Run with -benchmem: every path must stay at 0 allocs/op.
func BenchmarkCacheAccess(b *testing.B) {
	for _, ways := range []int{8, 16} {
		c := MustNew("bench", 64<<10, ways) // the L2 shape (and L3 assoc)
		sets := int(c.Sets())

		b.Run(fmt.Sprintf("hit-mru/%dway", ways), func(b *testing.B) {
			c.Access(0, false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Access(0, false)
			}
		})
		b.Run(fmt.Sprintf("hit-scan/%dway", ways), func(b *testing.B) {
			// Two blocks in one set: each access hits the non-MRU way,
			// defeating the way cache and exercising promotion.
			a0, a1 := uint64(0), uint64(sets*64)
			c.Access(a0, false)
			c.Access(a1, false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Access([2]uint64{a0, a1}[i&1], false)
			}
		})
		b.Run(fmt.Sprintf("miss-evict/%dway", ways), func(b *testing.B) {
			// A strided stream over 2x the cache's reach: every access
			// misses and, once warm, evicts (dirty half the time).
			blocks := 2 * sets * ways
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Access(uint64(i%blocks)*64, i&2 == 0)
			}
		})
	}
}
