package cache

import "testing"

func smallHierarchy(t *testing.T, cores int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(HierarchyConfig{
		Cores: cores,
		// Tiny levels so evictions are easy to force.
		L1Size: 4 * 64, L1Ways: 2,
		L2Size: 8 * 64, L2Ways: 2,
		L3Size: 16 * 64, L3Ways: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := smallHierarchy(t, 1)
	if lvl, _ := h.Access(0, 0x1000, false); lvl != Memory {
		t.Fatalf("cold access served at %v", lvl)
	}
	if lvl, _ := h.Access(0, 0x1000, false); lvl != L1 {
		t.Fatalf("warm access served at %v, want L1", lvl)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := smallHierarchy(t, 1)
	h.Access(0, 0x0000, false)
	// Fill L1's set for 0x0000 (L1: 2 sets × 2 ways; same-set stride = 128B)
	// so 0x0000 falls out of L1 but stays in L2.
	h.Access(0, 0x0080, false)
	h.Access(0, 0x0100, false)
	if lvl, _ := h.Access(0, 0x0000, false); lvl != L2 {
		t.Fatalf("expected L2 hit, got %v", lvl)
	}
}

func TestHierarchyPrivateL1PerCore(t *testing.T) {
	h := smallHierarchy(t, 2)
	h.Access(0, 0x4000, false)
	// Core 1 misses its private L1/L2 but hits the shared L3.
	if lvl, _ := h.Access(1, 0x4000, false); lvl != L3 {
		t.Fatalf("core 1 served at %v, want shared L3", lvl)
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	h := smallHierarchy(t, 1)
	h.Access(0, 0x0000, true) // dirty in L1 (and resident in L3)
	// Evict 0x0000 from L3: its set (L3: 4 sets × 4 ways, same-set stride =
	// 256B) needs 4 more distinct blocks.
	for i := 1; i <= 4; i++ {
		_, wbs := h.Access(0, uint64(i)*0x100, false)
		for _, wb := range wbs {
			if wb == 0x0000 {
				// Back-invalidation found the dirty L1 copy and wrote it back.
				if h.L1Cache(0).Probe(0x0000) {
					t.Fatal("L1 copy survived back-invalidation")
				}
				return
			}
		}
	}
	t.Fatal("dirty block evicted from L3 without a writeback")
}

func TestWritebackOnlyWhenDirty(t *testing.T) {
	h := smallHierarchy(t, 1)
	var wbCount int
	// Clean streaming should evict plenty of blocks but write back none.
	for i := 0; i < 64; i++ {
		_, wbs := h.Access(0, uint64(i)*64, false)
		wbCount += len(wbs)
	}
	if wbCount != 0 {
		t.Fatalf("clean traffic produced %d writebacks", wbCount)
	}
}

func TestHierarchyMissCounter(t *testing.T) {
	h := smallHierarchy(t, 1)
	for i := 0; i < 10; i++ {
		h.Access(0, uint64(i)*4096, false)
	}
	if h.Misses() != 10 {
		t.Fatalf("misses = %d, want 10", h.Misses())
	}
}

func TestNewHierarchyRejectsBadConfig(t *testing.T) {
	if _, err := NewHierarchy(HierarchyConfig{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := NewHierarchy(HierarchyConfig{Cores: 1, L1Size: 100, L1Ways: 3}); err == nil {
		t.Fatal("bad L1 geometry accepted")
	}
}

func TestHitLevelString(t *testing.T) {
	for lvl, want := range map[HitLevel]string{L1: "L1", L2: "L2", L3: "L3", Memory: "memory", HitLevel(9): "HitLevel(9)"} {
		if lvl.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(lvl), lvl.String(), want)
		}
	}
}
