// Package cache implements the on-chip cache hierarchy of a compute node:
// set-associative, LRU-replaced, write-back write-allocate caches with 64B
// blocks, composed into the inclusive L1/L2/L3 hierarchy of Table II.
//
// The package is purely functional with respect to time: it reports which
// level served an access and which dirty blocks were evicted; the node model
// charges latencies and issues the write-back traffic (which, for FAM-zone
// blocks, itself needs system-level translation — a detail the paper's
// I-FAM/DeACT comparison depends on).
//
// The line arrays are laid out struct-of-arrays (tags and dirty bits in
// separate dense slices) so the hit path scans only tags, and a
// direct-mapped way cache — one MRU way per set — resolves repeat accesses
// to a set's most recent block with a single probe, no scan at all.
//
// Replacement is exact LRU. At associativity ≤ 16 each set's full recency
// order lives in one uint64 rank word (a 4-bit way index per recency
// position, MRU first), so hit promotion and victim selection are
// constant-width bit operations on a single word instead of a scan over a
// per-way stamp array. Wider caches fall back to per-way stamps. The two
// representations choose bit-identical victims (the rank word is
// property-tested against the stamp implementation), so simulation output
// does not depend on which one a geometry selects.
//
// Invariants: accesses allocate nothing, and a cache's behaviour is a pure
// deterministic function of its access history — both properties the
// simulator's byte-identical-report guarantee rests on.
package cache

import (
	"fmt"
	"math/bits"

	"deact/internal/addr"
	"deact/internal/arena"
)

// Victim describes a block evicted by an Access.
type Victim struct {
	Addr  uint64
	Dirty bool
}

// invalidTag marks an empty way in the tags array. Real tags are block
// numbers divided by the set count, far below 2^63 for any physical
// address space this simulator models.
const invalidTag = ^uint64(0)

// rankWays is the widest associativity whose recency order fits one rank
// word: 16 ways × 4-bit way index.
const rankWays = 16

// Cache is one set-associative cache level.
type Cache struct {
	name     string
	ways     int
	sets     uint64
	setMask  uint64   // sets-1 (set count is a power of two)
	setShift uint     // log2(sets)
	tags     []uint64 // sets × ways, row-major; invalidTag when empty
	dirty    []bool
	mruWay   []uint16 // direct-mapped way cache: per set, the last way hit

	// order is the rank-word recency state (ways ≤ rankWays): one uint64
	// per set listing way indices MRU-first, 4 bits per recency position;
	// unused high nibbles hold 0xF. nil in stamp mode.
	order []uint64
	// used holds per-way LRU stamps (ways > rankWays); 0 for empty ways
	// (stamps start at 1). nil in rank mode.
	used []uint64
	tick uint64

	hits     uint64
	misses   uint64
	inserted uint64
}

// New builds a cache of the given total size in bytes with the given
// associativity and 64B blocks. Size must be a power-of-two multiple of
// ways*64 so that the set count is a power of two.
func New(name string, sizeBytes uint64, ways int) (*Cache, error) {
	return NewInArena(nil, name, sizeBytes, ways)
}

// NewInArena is New drawing the line arrays (tags, recency state, dirty
// bits, way cache) from a, so a sweep's hundreds of systems recycle one
// set of allocations. A nil arena allocates normally.
func NewInArena(a *arena.Arena, name string, sizeBytes uint64, ways int) (*Cache, error) {
	return newCache(a, name, sizeBytes, ways, false)
}

// newCache is the real constructor. forceStamps selects the stamp
// representation even at rank-word-capable associativities — the
// equivalence property test uses it to pit the two against each other.
func newCache(a *arena.Arena, name string, sizeBytes uint64, ways int, forceStamps bool) (*Cache, error) {
	if ways <= 0 || ways > 1<<16 {
		return nil, fmt.Errorf("cache %s: ways %d out of range", name, ways)
	}
	sets := sizeBytes / (addr.BlockSize * uint64(ways))
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d bytes / %d ways yields non-power-of-two set count %d", name, sizeBytes, ways, sets)
	}
	n := sets * uint64(ways)
	c := &Cache{
		name:     name,
		ways:     ways,
		sets:     sets,
		setMask:  sets - 1,
		setShift: uint(bits.TrailingZeros64(sets)),
		tags:     arena.Slice[uint64](a, "cache.tags", int(n)),
		dirty:    arena.Slice[bool](a, "cache.dirty", int(n)),
		mruWay:   arena.Slice[uint16](a, "cache.mru", int(sets)),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if ways <= rankWays && !forceStamps {
		c.order = arena.Slice[uint64](a, "cache.order", int(sets))
		init := initOrderWord(ways)
		for i := range c.order {
			c.order[i] = init
		}
	} else {
		c.used = arena.Slice[uint64](a, "cache.used", int(n))
	}
	return c, nil
}

// MustNew is New for statically known-good configurations.
func MustNew(name string, sizeBytes uint64, ways int) *Cache {
	c, err := New(name, sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// recycle returns the cache's line arrays to a for the next run's
// construction. The cache must not be used afterwards.
func (c *Cache) recycle(a *arena.Arena) {
	arena.Release(a, "cache.tags", c.tags)
	arena.Release(a, "cache.dirty", c.dirty)
	arena.Release(a, "cache.mru", c.mruWay)
	arena.Release(a, "cache.order", c.order)
	arena.Release(a, "cache.used", c.used)
	c.tags, c.dirty, c.mruWay, c.order, c.used = nil, nil, nil, nil, nil
}

// Rank-word layout: nibble p of a set's order word holds the way index at
// recency position p — position 0 is the MRU way, position ways-1 the LRU
// way (the victim). Unused nibbles hold 0xF, a value no way index reaches
// (way indices only go to 15 when all 16 nibbles are in use), so they are
// inert under the SWAR search below.
const (
	nibLSB = 0x1111_1111_1111_1111
	nibMSB = 0x8888_8888_8888_8888
)

// initOrderWord returns the order word of an empty set: way 0 at the LRU
// position, way ways-1 at the MRU position, so empty ways fill in way
// order — exactly the tie-break the stamp scan applies to all-zero stamps.
func initOrderWord(ways int) uint64 {
	word := ^uint64(0)
	for p := 0; p < ways; p++ {
		word &^= 0xF << (4 * uint(p))
		word |= uint64(ways-1-p) << (4 * uint(p))
	}
	return word
}

// findPos returns the recency position of way w in word. Exactly one
// nibble equals w (the word is a permutation over the used positions); the
// zero-nibble SWAR can flag false positives only above a true zero, so the
// lowest flagged nibble is always the match.
func findPos(word, w uint64) uint {
	t := word ^ (w * nibLSB)
	z := (t - nibLSB) &^ t & nibMSB
	return uint(bits.TrailingZeros64(z)) >> 2
}

// promote moves the way w sitting at position p to position 0 (MRU),
// shifting positions 0..p-1 up by one. Positions above p — including the
// 0xF filler nibbles — are untouched.
func promote(word uint64, p uint, w uint64) uint64 {
	if p == 0 {
		return word
	}
	low := word & (uint64(1)<<(4*p) - 1)
	keep := word &^ (uint64(1)<<(4*(p+1)) - 1) // p+1 == 16 shifts to 0, keeping nothing
	return keep | low<<4 | w
}

func (c *Cache) index(a uint64) (set uint64, tag uint64) {
	blk := a >> addr.BlockShift
	return blk & c.setMask, blk >> c.setShift
}

// Probe reports whether the block containing a is present, without touching
// replacement state.
func (c *Cache) Probe(a uint64) bool {
	set, tag := c.index(a)
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == tag {
			return true
		}
	}
	return false
}

// Access looks up the block containing a, allocating it on miss. It returns
// whether the access hit and, on an allocation that displaced a valid block,
// the victim.
func (c *Cache) Access(a uint64, write bool) (hit bool, victim Victim, evicted bool) {
	set, tag := c.index(a)
	if c.order != nil {
		return c.accessRank(set, tag, write)
	}
	return c.accessStamp(set, tag, write)
}

// accessRank is the rank-word access path (ways ≤ rankWays).
func (c *Cache) accessRank(set, tag uint64, write bool) (hit bool, victim Victim, evicted bool) {
	base := set * uint64(c.ways)

	// Way-cache probe: the MRU way is at rank position 0 by construction,
	// so a repeat access to it needs no recency update at all.
	if i := base + uint64(c.mruWay[set]); c.tags[i] == tag {
		if write {
			c.dirty[i] = true
		}
		c.hits++
		return true, Victim{}, false
	}
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == tag {
			if write {
				c.dirty[i] = true
			}
			word := c.order[set]
			c.order[set] = promote(word, findPos(word, uint64(w)), uint64(w))
			c.mruWay[set] = uint16(w)
			c.hits++
			return true, Victim{}, false
		}
	}

	// Miss: the victim is the way at the LRU position — one nibble
	// extraction where the stamp representation scans the whole set.
	c.misses++
	word := c.order[set]
	vw := (word >> (4 * uint(c.ways-1))) & 0xF
	lruIdx := base + vw
	if c.tags[lruIdx] != invalidTag {
		victim = Victim{Addr: c.reconstruct(lruIdx, c.tags[lruIdx]), Dirty: c.dirty[lruIdx]}
		evicted = true
	}
	c.tags[lruIdx] = tag
	c.dirty[lruIdx] = write
	c.order[set] = promote(word, uint(c.ways-1), vw)
	c.mruWay[set] = uint16(vw)
	c.inserted++
	return false, victim, evicted
}

// accessStamp is the per-way stamp access path (ways > rankWays).
func (c *Cache) accessStamp(set, tag uint64, write bool) (hit bool, victim Victim, evicted bool) {
	base := set * uint64(c.ways)
	c.tick++

	// Way-cache probe: repeat access to the set's MRU block skips the scan.
	if i := base + uint64(c.mruWay[set]); c.tags[i] == tag {
		c.used[i] = c.tick
		if write {
			c.dirty[i] = true
		}
		c.hits++
		return true, Victim{}, false
	}
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == tag {
			c.used[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			c.mruWay[set] = uint16(w)
			c.hits++
			return true, Victim{}, false
		}
	}

	// Miss: a second scan picks the LRU way (empty ways carry stamp 0 and
	// lose every comparison, so they fill first; ties go to the lowest way).
	c.misses++
	lruIdx := base
	lruStamp := c.used[base]
	for w := 1; w < c.ways; w++ {
		i := base + uint64(w)
		if c.used[i] < lruStamp {
			lruStamp = c.used[i]
			lruIdx = i
		}
	}
	if c.tags[lruIdx] != invalidTag {
		victim = Victim{Addr: c.reconstruct(lruIdx, c.tags[lruIdx]), Dirty: c.dirty[lruIdx]}
		evicted = true
	}
	c.tags[lruIdx] = tag
	c.dirty[lruIdx] = write
	c.used[lruIdx] = c.tick
	c.mruWay[set] = uint16(lruIdx - base)
	c.inserted++
	return false, victim, evicted
}

// reconstruct rebuilds a block address from a line index and tag.
func (c *Cache) reconstruct(lineIdx, tag uint64) uint64 {
	set := lineIdx / uint64(c.ways)
	return (tag<<c.setShift | set) << addr.BlockShift
}

// Invalidate removes the block containing a if present, returning whether it
// was present and dirty (the caller must write it back if so — needed for
// inclusive back-invalidation).
func (c *Cache) Invalidate(a uint64) (present, dirty bool) {
	set, tag := c.index(a)
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == tag {
			present, dirty = true, c.dirty[i]
			c.tags[i] = invalidTag
			c.dirty[i] = false
			if c.order != nil {
				c.demote(set, base, w)
			} else {
				c.used[i] = 0
			}
			return present, dirty
		}
	}
	return false, false
}

// demote re-files the just-invalidated way w among the set's empty ways.
// The stamp scan picks empty ways lowest-index-first before any valid way,
// so the order word keeps all empty ways in a tail block sorted by way
// index: w lands below empties with smaller indices and above everything
// else. c.tags[base+w] is already invalid when this runs.
func (c *Cache) demote(set, base uint64, w int) {
	word := c.order[set]
	p := findPos(word, uint64(w))
	q := uint(c.ways - 1)
	for e := 0; e < w; e++ {
		if c.tags[base+uint64(e)] == invalidTag {
			q--
		}
	}
	if p == q {
		return
	}
	// Shift positions p+1..q down one place and park w at position q.
	segMask := (uint64(1)<<(4*(q+1)) - 1) &^ (uint64(1)<<(4*(p+1)) - 1)
	seg := (word & segMask) >> 4
	high := word &^ (uint64(1)<<(4*(q+1)) - 1)
	low := word & (uint64(1)<<(4*p) - 1)
	c.order[set] = high | uint64(w)<<(4*q) | seg | low
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() uint64 { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
