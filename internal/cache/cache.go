// Package cache implements the on-chip cache hierarchy of a compute node:
// set-associative, LRU-replaced, write-back write-allocate caches with 64B
// blocks, composed into the inclusive L1/L2/L3 hierarchy of Table II.
//
// The package is purely functional with respect to time: it reports which
// level served an access and which dirty blocks were evicted; the node model
// charges latencies and issues the write-back traffic (which, for FAM-zone
// blocks, itself needs system-level translation — a detail the paper's
// I-FAM/DeACT comparison depends on).
//
// The line arrays are laid out struct-of-arrays (tags, LRU stamps and dirty
// bits in separate dense slices) so the hit path scans only tags, and a
// direct-mapped way cache — one MRU way per set — resolves repeat accesses
// to a set's most recent block with a single probe, no scan at all.
package cache

import (
	"fmt"
	"math/bits"

	"deact/internal/addr"
)

// Victim describes a block evicted by an Access.
type Victim struct {
	Addr  uint64
	Dirty bool
}

// invalidTag marks an empty way in the tags array. Real tags are block
// numbers divided by the set count, far below 2^63 for any physical
// address space this simulator models.
const invalidTag = ^uint64(0)

// Cache is one set-associative cache level.
type Cache struct {
	name     string
	ways     int
	sets     uint64
	setMask  uint64   // sets-1 (set count is a power of two)
	setShift uint     // log2(sets)
	tags     []uint64 // sets × ways, row-major; invalidTag when empty
	used     []uint64 // LRU stamps; 0 for empty ways (stamps start at 1)
	dirty    []bool
	mruWay   []uint16 // direct-mapped way cache: per set, the last way hit
	tick     uint64
	hits     uint64
	misses   uint64
	inserted uint64
}

// New builds a cache of the given total size in bytes with the given
// associativity and 64B blocks. Size must be a power-of-two multiple of
// ways*64 so that the set count is a power of two.
func New(name string, sizeBytes uint64, ways int) (*Cache, error) {
	if ways <= 0 || ways > 1<<16 {
		return nil, fmt.Errorf("cache %s: ways %d out of range", name, ways)
	}
	sets := sizeBytes / (addr.BlockSize * uint64(ways))
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d bytes / %d ways yields non-power-of-two set count %d", name, sizeBytes, ways, sets)
	}
	n := sets * uint64(ways)
	c := &Cache{
		name:     name,
		ways:     ways,
		sets:     sets,
		setMask:  sets - 1,
		setShift: uint(bits.TrailingZeros64(sets)),
		tags:     make([]uint64, n),
		used:     make([]uint64, n),
		dirty:    make([]bool, n),
		mruWay:   make([]uint16, sets),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c, nil
}

// MustNew is New for statically known-good configurations.
func MustNew(name string, sizeBytes uint64, ways int) *Cache {
	c, err := New(name, sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) index(a uint64) (set uint64, tag uint64) {
	blk := a >> addr.BlockShift
	return blk & c.setMask, blk >> c.setShift
}

// Probe reports whether the block containing a is present, without touching
// replacement state.
func (c *Cache) Probe(a uint64) bool {
	set, tag := c.index(a)
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+uint64(w)] == tag {
			return true
		}
	}
	return false
}

// Access looks up the block containing a, allocating it on miss. It returns
// whether the access hit and, on an allocation that displaced a valid block,
// the victim.
func (c *Cache) Access(a uint64, write bool) (hit bool, victim Victim, evicted bool) {
	set, tag := c.index(a)
	base := set * uint64(c.ways)
	c.tick++

	// Way-cache probe: repeat access to the set's MRU block skips the scan.
	if i := base + uint64(c.mruWay[set]); c.tags[i] == tag {
		c.used[i] = c.tick
		if write {
			c.dirty[i] = true
		}
		c.hits++
		return true, Victim{}, false
	}
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == tag {
			c.used[i] = c.tick
			if write {
				c.dirty[i] = true
			}
			c.mruWay[set] = uint16(w)
			c.hits++
			return true, Victim{}, false
		}
	}

	// Miss: a second scan picks the LRU way (empty ways carry stamp 0 and
	// lose every comparison, so they fill first; ties go to the lowest way).
	c.misses++
	lruIdx := base
	lruStamp := c.used[base]
	for w := 1; w < c.ways; w++ {
		i := base + uint64(w)
		if c.used[i] < lruStamp {
			lruStamp = c.used[i]
			lruIdx = i
		}
	}
	if c.tags[lruIdx] != invalidTag {
		victim = Victim{Addr: c.reconstruct(lruIdx, c.tags[lruIdx]), Dirty: c.dirty[lruIdx]}
		evicted = true
	}
	c.tags[lruIdx] = tag
	c.dirty[lruIdx] = write
	c.used[lruIdx] = c.tick
	c.mruWay[set] = uint16(lruIdx - base)
	c.inserted++
	return false, victim, evicted
}

// reconstruct rebuilds a block address from a line index and tag.
func (c *Cache) reconstruct(lineIdx, tag uint64) uint64 {
	set := lineIdx / uint64(c.ways)
	return (tag<<c.setShift | set) << addr.BlockShift
}

// Invalidate removes the block containing a if present, returning whether it
// was present and dirty (the caller must write it back if so — needed for
// inclusive back-invalidation).
func (c *Cache) Invalidate(a uint64) (present, dirty bool) {
	set, tag := c.index(a)
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == tag {
			present, dirty = true, c.dirty[i]
			c.tags[i] = invalidTag
			c.used[i] = 0
			c.dirty[i] = false
			return present, dirty
		}
	}
	return false, false
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() uint64 { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
