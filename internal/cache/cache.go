// Package cache implements the on-chip cache hierarchy of a compute node:
// set-associative, LRU-replaced, write-back write-allocate caches with 64B
// blocks, composed into the inclusive L1/L2/L3 hierarchy of Table II.
//
// The package is purely functional with respect to time: it reports which
// level served an access and which dirty blocks were evicted; the node model
// charges latencies and issues the write-back traffic (which, for FAM-zone
// blocks, itself needs system-level translation — a detail the paper's
// I-FAM/DeACT comparison depends on).
package cache

import (
	"fmt"

	"deact/internal/addr"
)

// Victim describes a block evicted by an Access.
type Victim struct {
	Addr  uint64
	Dirty bool
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU stamp
}

// Cache is one set-associative cache level.
type Cache struct {
	name     string
	ways     int
	sets     uint64
	lines    []line // sets × ways, row-major
	tick     uint64
	hits     uint64
	misses   uint64
	inserted uint64
}

// New builds a cache of the given total size in bytes with the given
// associativity and 64B blocks. Size must be a power-of-two multiple of
// ways*64 so that the set count is a power of two.
func New(name string, sizeBytes uint64, ways int) (*Cache, error) {
	if ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways must be positive", name)
	}
	sets := sizeBytes / (addr.BlockSize * uint64(ways))
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: %d bytes / %d ways yields non-power-of-two set count %d", name, sizeBytes, ways, sets)
	}
	return &Cache{
		name:  name,
		ways:  ways,
		sets:  sets,
		lines: make([]line, sets*uint64(ways)),
	}, nil
}

// MustNew is New for statically known-good configurations.
func MustNew(name string, sizeBytes uint64, ways int) *Cache {
	c, err := New(name, sizeBytes, ways)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) index(a uint64) (setBase uint64, tag uint64) {
	blk := a >> addr.BlockShift
	return (blk % c.sets) * uint64(c.ways), blk / c.sets
}

// Probe reports whether the block containing a is present, without touching
// replacement state.
func (c *Cache) Probe(a uint64) bool {
	base, tag := c.index(a)
	for w := 0; w < c.ways; w++ {
		if l := &c.lines[base+uint64(w)]; l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Access looks up the block containing a, allocating it on miss. It returns
// whether the access hit and, on an allocation that displaced a valid block,
// the victim.
func (c *Cache) Access(a uint64, write bool) (hit bool, victim Victim, evicted bool) {
	base, tag := c.index(a)
	c.tick++
	var lruIdx uint64
	lruStamp := ^uint64(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		l := &c.lines[i]
		if l.valid && l.tag == tag {
			l.used = c.tick
			if write {
				l.dirty = true
			}
			c.hits++
			return true, Victim{}, false
		}
		stamp := l.used
		if !l.valid {
			stamp = 0
		}
		if stamp < lruStamp {
			lruStamp = stamp
			lruIdx = i
		}
	}
	c.misses++
	l := &c.lines[lruIdx]
	if l.valid {
		victim = Victim{Addr: c.reconstruct(lruIdx, l.tag), Dirty: l.dirty}
		evicted = true
	}
	*l = line{tag: tag, valid: true, dirty: write, used: c.tick}
	c.inserted++
	return false, victim, evicted
}

// reconstruct rebuilds a block address from a line index and tag.
func (c *Cache) reconstruct(lineIdx, tag uint64) uint64 {
	set := lineIdx / uint64(c.ways)
	return (tag*c.sets + set) << addr.BlockShift
}

// Invalidate removes the block containing a if present, returning whether it
// was present and dirty (the caller must write it back if so — needed for
// inclusive back-invalidation).
func (c *Cache) Invalidate(a uint64) (present, dirty bool) {
	base, tag := c.index(a)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+uint64(w)]
		if l.valid && l.tag == tag {
			present, dirty = true, l.dirty
			*l = line{}
			return present, dirty
		}
	}
	return false, false
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() uint64 { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }
