package cache

import (
	"deact/internal/arena"
)

// State is one Cache's mutable state for core.System.Snapshot: the full
// line arrays (tags, dirty bits, way cache, whichever recency
// representation the geometry selected) plus the counters. Geometry fields
// (sets, ways, masks) are not captured — a State is only restored into a
// cache built from the identical configuration.
type State struct {
	tags   []uint64
	dirty  []bool
	mruWay []uint16
	order  []uint64 // rank mode; empty in stamp mode
	used   []uint64 // stamp mode; empty in rank mode
	tick   uint64

	hits     uint64
	misses   uint64
	inserted uint64
}

// CaptureState captures the cache into st, reusing st's storage where it
// fits and drawing the rest from a (nil allocates normally).
func (c *Cache) CaptureState(a *arena.Arena, st *State) {
	st.tags = arena.CopyInto(a, "snap.cache.tags", st.tags, c.tags)
	st.dirty = arena.CopyInto(a, "snap.cache.dirty", st.dirty, c.dirty)
	st.mruWay = arena.CopyInto(a, "snap.cache.mru", st.mruWay, c.mruWay)
	st.order = arena.CopyInto(a, "snap.cache.order", st.order, c.order)
	st.used = arena.CopyInto(a, "snap.cache.used", st.used, c.used)
	st.tick = c.tick
	st.hits, st.misses, st.inserted = c.hits, c.misses, c.inserted
}

// RestoreState rewinds the cache to st, copying into the cache's own line
// arrays (no aliasing with st). The cache must have the geometry st was
// captured from.
func (c *Cache) RestoreState(st *State) {
	if len(st.tags) != len(c.tags) || len(st.order) != len(c.order) || len(st.used) != len(c.used) {
		panic("cache: RestoreState geometry mismatch for " + c.name)
	}
	copy(c.tags, st.tags)
	copy(c.dirty, st.dirty)
	copy(c.mruWay, st.mruWay)
	copy(c.order, st.order)
	copy(c.used, st.used)
	c.tick = st.tick
	c.hits, c.misses, c.inserted = st.hits, st.misses, st.inserted
}

// Release returns st's arrays to a for reuse by later captures. The state
// must not be restored from afterwards.
func (st *State) Release(a *arena.Arena) {
	arena.Release(a, "snap.cache.tags", st.tags)
	arena.Release(a, "snap.cache.dirty", st.dirty)
	arena.Release(a, "snap.cache.mru", st.mruWay)
	arena.Release(a, "snap.cache.order", st.order)
	arena.Release(a, "snap.cache.used", st.used)
	st.tags, st.dirty, st.mruWay, st.order, st.used = nil, nil, nil, nil, nil
}

// HierarchyState captures every level of a Hierarchy. The writeback scratch
// buffer is not state: its contents never survive an Access call.
type HierarchyState struct {
	l1, l2 []State
	l3     State
}

// CaptureState captures the hierarchy into st.
func (h *Hierarchy) CaptureState(a *arena.Arena, st *HierarchyState) {
	if cap(st.l1) < len(h.l1) {
		st.l1 = make([]State, len(h.l1))
		st.l2 = make([]State, len(h.l2))
	}
	st.l1, st.l2 = st.l1[:len(h.l1)], st.l2[:len(h.l2)]
	for i := range h.l1 {
		h.l1[i].CaptureState(a, &st.l1[i])
		h.l2[i].CaptureState(a, &st.l2[i])
	}
	h.l3.CaptureState(a, &st.l3)
}

// RestoreState rewinds the hierarchy to st.
func (h *Hierarchy) RestoreState(st *HierarchyState) {
	if len(st.l1) != len(h.l1) {
		panic("cache: RestoreState hierarchy core count mismatch")
	}
	for i := range h.l1 {
		h.l1[i].RestoreState(&st.l1[i])
		h.l2[i].RestoreState(&st.l2[i])
	}
	h.l3.RestoreState(&st.l3)
}

// Release returns every level's arrays to a.
func (st *HierarchyState) Release(a *arena.Arena) {
	for i := range st.l1 {
		st.l1[i].Release(a)
		st.l2[i].Release(a)
	}
	st.l3.Release(a)
}
