package cache

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New("x", 32*1024, 0); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New("x", 3000, 4); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	if _, err := New("x", 0, 4); err == nil {
		t.Error("zero size accepted")
	}
	c, err := New("l1", 32*1024, 8)
	if err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	if c.Sets() != 64 || c.Ways() != 8 || c.Name() != "l1" {
		t.Fatalf("geometry wrong: sets=%d ways=%d", c.Sets(), c.Ways())
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew("c", 1024, 2) // 8 sets
	if hit, _, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access missed")
	}
	// Same block, different offset word: still a hit.
	if hit, _, _ := c.Access(0x103F, false); !hit {
		t.Fatal("same-block access missed")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("counters: h=%d m=%d", c.Hits(), c.Misses())
	}
	if got := c.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate %v", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew("c", 2*64, 2) // 1 set, 2 ways
	c.Access(0x000, false)     // A
	c.Access(0x040, false)     // B
	c.Access(0x000, false)     // touch A; B is now LRU
	_, victim, evicted := c.Access(0x080, false)
	if !evicted || victim.Addr != 0x040 {
		t.Fatalf("LRU eviction wrong: evicted=%v victim=%#x", evicted, victim.Addr)
	}
	if !c.Probe(0x000) || c.Probe(0x040) {
		t.Fatal("wrong line evicted")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := MustNew("c", 64, 1) // direct-mapped, 1 line
	c.Access(0x000, true)    // dirty
	_, victim, evicted := c.Access(0x040, false)
	if !evicted || !victim.Dirty || victim.Addr != 0 {
		t.Fatalf("dirty victim lost: %+v evicted=%v", victim, evicted)
	}
	// Clean victim stays clean.
	_, victim, evicted = c.Access(0x080, false)
	if !evicted || victim.Dirty || victim.Addr != 0x040 {
		t.Fatalf("clean victim wrong: %+v", victim)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c := MustNew("c", 64, 1)
	c.Access(0x000, false) // clean allocate
	c.Access(0x000, true)  // hit-write dirties
	_, victim, _ := c.Access(0x040, false)
	if !victim.Dirty {
		t.Fatal("hit-write did not dirty the line")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew("c", 1024, 4)
	c.Access(0x2000, true)
	present, dirty := c.Invalidate(0x2000)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Probe(0x2000) {
		t.Fatal("block survived invalidation")
	}
	if present, _ := c.Invalidate(0x2000); present {
		t.Fatal("double invalidation reported present")
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	c := MustNew("c", 64*16, 1) // 16 sets, direct-mapped
	// Two addresses mapping to the same set, different tags.
	a1 := uint64(5 << 6)
	a2 := a1 + 16*64
	c.Access(a1, false)
	_, victim, evicted := c.Access(a2, false)
	if !evicted || victim.Addr != a1 {
		t.Fatalf("reconstructed victim %#x, want %#x", victim.Addr, a1)
	}
}

// Property: a probe immediately after an access always hits, and the cache
// never holds more distinct blocks than its capacity.
func TestCacheCoherentQuick(t *testing.T) {
	c := MustNew("c", 4096, 4)
	resident := map[uint64]bool{}
	f := func(a uint32, w bool) bool {
		blk := uint64(a) &^ 63
		_, victim, evicted := c.Access(blk, w)
		resident[blk] = true
		if evicted {
			delete(resident, victim.Addr)
		}
		if len(resident) > 64 { // 4096/64 blocks capacity
			return false
		}
		return c.Probe(blk)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
