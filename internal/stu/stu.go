// Package stu implements the System Translation Unit — the per-node,
// off-the-node hardware at the fabric edge (similar in spirit to the Gen-Z
// ZMMU) that enforces system-level access control on every FAM access and,
// on translation misses, walks the node's FAM page table (Figures 6–8).
//
// The STU cache has three organizations:
//
//   - I-FAM: each way holds {node-page tag, FAM page, ACM} — translation
//     and access control coupled (Figure 8a).
//   - DeACT-W: translation moves to the node's local DRAM, freeing 52 bits
//     per way; the way holds the ACM of 64/ACMBits *contiguous* FAM pages
//     (Figure 8b).
//   - DeACT-N: the way splits into sub-ways with truncated 44-bit tags,
//     each an independent {FAM page tag, ACM} pair, doubling (or tripling,
//     for narrow ACM) reach for randomly placed pages (Figure 8c).
//
// The STU sits on the per-FAM-access hot path of every scheme but E-FAM:
// lookups, ACM checks and FAM-table walks are array-backed and
// allocation-free in steady state, the port is a sim.Resource calendar
// bound to the engine clock, and all behaviour is deterministic for a
// fixed seed.
package stu

import (
	"fmt"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/pagetable"
	"deact/internal/sim"
	"deact/internal/tlb"
)

// Organization selects the STU cache layout (Figure 8).
type Organization int

// STU cache organizations.
const (
	OrgIFAM Organization = iota
	OrgDeACTW
	OrgDeACTN
)

// String implements fmt.Stringer.
func (o Organization) String() string {
	switch o {
	case OrgIFAM:
		return "I-FAM"
	case OrgDeACTW:
		return "DeACT-W"
	case OrgDeACTN:
		return "DeACT-N"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// Config sizes an STU.
type Config struct {
	// Entries is the total entry count of the STU cache (1024 in Table II;
	// Figure 13 sweeps 256–4096).
	Entries int
	// Ways is the associativity (8 in Table II; §V-D1 sweeps it).
	Ways int
	// Org selects the cache layout.
	Org Organization
	// ACMBits is the per-page metadata width (8/16/32; Figure 14).
	ACMBits uint
	// PairsPerWay overrides the number of (tag, ACM) pairs per way in
	// DeACT-N (Figure 14 explores 1–3). Zero selects the width's natural
	// value: 2 for 8- and 16-bit ACM, 1 for 32-bit.
	PairsPerWay int
	// PTWCacheEntries sizes the FAM page-table-walk cache (32, after [8]).
	PTWCacheEntries int
	// LookupTime is the STU cache lookup/occupancy time per request.
	LookupTime sim.Time
	// TrustReads enables the §III-A optional optimization for encrypted
	// memories: with per-node encryption keys, reads by the wrong node
	// yield ciphertext, so read access control can be skipped entirely —
	// only writes are vetted. Off by default (plaintext FAM).
	TrustReads bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0 || c.Ways <= 0 || c.Entries%c.Ways != 0:
		return fmt.Errorf("stu: bad cache geometry entries=%d ways=%d", c.Entries, c.Ways)
	case c.ACMBits != 8 && c.ACMBits != 16 && c.ACMBits != 32:
		return fmt.Errorf("stu: ACMBits %d must be 8, 16 or 32", c.ACMBits)
	case c.PairsPerWay < 0 || c.PairsPerWay > 3:
		return fmt.Errorf("stu: PairsPerWay %d out of range [0,3]", c.PairsPerWay)
	}
	return nil
}

// pagesPerWay returns how many contiguous pages' ACM one DeACT-W way holds
// (§V-D2: 8 for 8-bit, 4 for 16-bit, 2 for 32-bit metadata).
func (c Config) pagesPerWay() uint64 {
	switch c.ACMBits {
	case 8:
		return 8
	case 32:
		return 2
	default:
		return 4
	}
}

// pairsPerWay returns the DeACT-N sub-way count.
func (c Config) pairsPerWay() int {
	if c.PairsPerWay != 0 {
		return c.PairsPerWay
	}
	if c.ACMBits == 32 {
		return 1
	}
	return 2
}

// FAMAccessFunc performs one 64B access to the FAM device across the fabric
// and returns its completion time. The STU uses it for page-table, ACM and
// bitmap traffic — all of which count as address-translation requests at
// the FAM (Figures 4 and 11).
type FAMAccessFunc func(now sim.Time, a addr.FAddr, write bool) sim.Time

// ifamEntry is the coupled translation+ACM payload of Figure 8a.
type ifamEntry struct {
	fam addr.FPage
	e   acm.Entry
}

// Stats aggregates STU activity.
type Stats struct {
	TranslationHits   uint64 // I-FAM STU cache hits (Figure 10)
	TranslationMisses uint64
	ACMHits           uint64 // metadata found in the STU cache (Figure 9)
	ACMMisses         uint64
	ACMFetches        uint64 // 64B metadata blocks read from FAM
	BitmapFetches     uint64 // shared-page bitmap blocks read from FAM
	PTWSteps          uint64 // FAM page-table entries read from FAM
	Walks             uint64
	Denied            uint64
	BrokerFaults      uint64 // walks that needed a fresh broker allocation
	TrustedReads      uint64 // reads passed without ACM checks (TrustReads)
}

// STU is one node's system translation unit.
type STU struct {
	cfg     Config
	nodeID  uint16
	layout  addr.Layout
	meta    *acm.Store
	table   *pagetable.Table
	famRead FAMAccessFunc
	fault   func(np addr.NPPage) (addr.FPage, error) // broker allocation callback

	port sim.Resource

	ifam   *assoc[ifamEntry] // OrgIFAM
	wcache *assoc[struct{}]  // OrgDeACTW: key = ACM group of contiguous pages
	ncache *assoc[acm.Entry] // OrgDeACTN: key = FAM page (44-bit tag modeled exactly)
	ptw    *tlb.PTWCache

	walkBuf []pagetable.WalkStep // scratch reused across FAM-table walks

	stats Stats
}

// New builds an STU for the given node.
//
// table is the node's FAM page table (owned by the broker), meta the shared
// metadata store, fam the fabric+FAM access path, and fault the broker
// allocation service for unmapped node pages (may be nil if the OS
// pre-installs mappings on first touch).
func New(cfg Config, nodeID uint16, layout addr.Layout, meta *acm.Store,
	table *pagetable.Table, fam FAMAccessFunc,
	fault func(np addr.NPPage) (addr.FPage, error)) (*STU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if meta == nil || table == nil || fam == nil {
		return nil, fmt.Errorf("stu: meta, table and fam are required")
	}
	s := &STU{
		cfg:     cfg,
		nodeID:  nodeID,
		layout:  layout,
		meta:    meta,
		table:   table,
		famRead: fam,
		fault:   fault,
		ptw:     tlb.NewPTWCache(cfg.PTWCacheEntries),
	}
	switch cfg.Org {
	case OrgIFAM:
		s.ifam = newAssoc[ifamEntry](cfg.Entries, cfg.Ways)
	case OrgDeACTW:
		s.wcache = newAssoc[struct{}](cfg.Entries, cfg.Ways)
	case OrgDeACTN:
		s.ncache = newAssoc[acm.Entry](cfg.Entries*cfg.pairsPerWay(), cfg.Ways*cfg.pairsPerWay())
	default:
		return nil, fmt.Errorf("stu: unknown organization %v", cfg.Org)
	}
	return s, nil
}

// Stats returns a copy of the accumulated counters.
func (s *STU) Stats() Stats { return s.stats }

// Bind attaches the engine clock to the STU port so its reservation
// calendar retires bookings entirely in the past (see sim.Clock).
func (s *STU) Bind(c sim.Clock) { s.port.Bind(c) }

// NodeID returns the node this STU guards.
func (s *STU) NodeID() uint16 { return s.nodeID }

// n44 truncates a FAM page number to the 44-bit tag DeACT-N stores
// (Figure 8c); with ≤44-bit page numbers this is exact, matching the
// paper's observation that 44 bits cover any realistic node.
func n44(p addr.FPage) uint64 { return uint64(p) & ((1 << 44) - 1) }

// verify runs the access-control decision for fam page fp, charging ACM
// cache lookups and FAM metadata traffic as needed. Returns the completion
// time and the decision.
func (s *STU) verify(now sim.Time, fp addr.FPage, want acm.Perm) (sim.Time, acm.Decision) {
	_, t := s.port.Acquire(now, s.cfg.LookupTime)

	if s.cfg.TrustReads && want == acm.PermR {
		// Encrypted-memory deployment: a foreign reader only gets
		// ciphertext, so the read sails through with zero metadata traffic.
		s.stats.TrustedReads++
		return t, acm.Decision{Allowed: true}
	}

	if _, cached := s.lookupACM(fp); cached {
		s.stats.ACMHits++
	} else {
		s.stats.ACMMisses++
		// Fetch the 64B metadata block from FAM and fill the cache with
		// the coverage the organization provides.
		t = s.famRead(t, s.layout.ACMBlockAddr(fp), false)
		s.stats.ACMFetches++
		s.fillACM(fp)
	}

	// The policy decision uses the authoritative store — the cache models
	// where the bits came from (timing), and the broker invalidates cached
	// copies on revocation/migration. A shared page needs its bitmap.
	d := s.meta.Check(fp, s.nodeID, want)
	if d.BitmapFetch {
		t = s.famRead(t, s.layout.BitmapBlockAddr(fp.Huge(), s.nodeID), false)
		s.stats.BitmapFetches++
	}
	if !d.Allowed {
		s.stats.Denied++
	}
	return t, d
}

// lookupACM consults the organization-specific ACM cache.
func (s *STU) lookupACM(fp addr.FPage) (acm.Entry, bool) {
	switch s.cfg.Org {
	case OrgIFAM:
		// I-FAM couples ACM with the translation entry; verification of a
		// page is a hit iff the translation entry is resident. The caller
		// handles that path; reaching here means a direct ACM probe, which
		// I-FAM serves from the same structure keyed by FAM page via scan.
		// To keep I-FAM faithful we never call verify() for it.
		return acm.Entry{}, false
	case OrgDeACTW:
		group := uint64(fp) / s.cfg.pagesPerWay()
		_, ok := s.wcache.lookup(group)
		return s.meta.Entry(fp), ok
	default:
		return s.ncache.lookup(n44(fp))
	}
}

// fillACM installs metadata coverage for fp after a block fetch.
func (s *STU) fillACM(fp addr.FPage) {
	switch s.cfg.Org {
	case OrgDeACTW:
		s.wcache.insert(uint64(fp)/s.cfg.pagesPerWay(), struct{}{})
	case OrgDeACTN:
		s.ncache.insert(n44(fp), s.meta.Entry(fp))
	}
}

// VerifyMapped handles a DeACT request that arrived with the V flag set:
// the node already supplied the FAM address; the STU only vets it. This is
// the fast path of Figure 6 (step 3).
func (s *STU) VerifyMapped(now sim.Time, fp addr.FPage, want acm.Perm) (sim.Time, acm.Decision) {
	return s.verify(now, fp, want)
}

// walk resolves npPage through the FAM page table, charging one FAM access
// per step not covered by the PTW cache. Faults fall back to the broker.
func (s *STU) walk(now sim.Time, npPage addr.NPPage) (sim.Time, addr.FPage, error) {
	s.stats.Walks++
	start := s.ptw.BestStartLevel(uint64(npPage))
	steps, val, ok := s.table.WalkAppend(uint64(npPage), start, s.walkBuf[:0])
	defer func() { s.walkBuf = steps[:0] }()
	t := now
	for _, st := range steps {
		t = s.famRead(t, addr.FAddr(st.EntryAddr), false)
		s.stats.PTWSteps++
	}
	if !ok {
		if s.fault == nil {
			return t, 0, fmt.Errorf("stu(node %d): node page %#x has no FAM mapping", s.nodeID, npPage)
		}
		fp, err := s.fault(npPage)
		if err != nil {
			return t, 0, fmt.Errorf("stu(node %d): broker fault for node page %#x: %w", s.nodeID, npPage, err)
		}
		s.stats.BrokerFaults++
		// Retry the walk from the level that faulted; the broker has now
		// installed the missing subtree. The retried steps append in place
		// of the faulting step, reusing the scratch buffer.
		retryFrom := steps[len(steps)-1].Level
		head := len(steps) - 1
		var val2 uint64
		var ok2 bool
		steps, val2, ok2 = s.table.WalkAppend(uint64(npPage), retryFrom, steps[:head])
		if !ok2 {
			return t, 0, fmt.Errorf("stu(node %d): broker did not install mapping for %#x", s.nodeID, npPage)
		}
		for _, st2 := range steps[head:] {
			t = s.famRead(t, addr.FAddr(st2.EntryAddr), false)
			s.stats.PTWSteps++
		}
		if addr.FPage(val2) != fp {
			return t, 0, fmt.Errorf("stu(node %d): broker mapping mismatch for %#x", s.nodeID, npPage)
		}
		val = val2
	}
	s.ptw.FillFromWalk(uint64(npPage), steps)
	return t, addr.FPage(val), nil
}

// HandleUnmapped serves a DeACT request with V=0: the node's FAM translator
// missed, so the STU walks the FAM page table on its behalf, verifies the
// access, and returns the mapping for the translator to cache (Figure 6,
// steps 4–5).
func (s *STU) HandleUnmapped(now sim.Time, npPage addr.NPPage, want acm.Perm) (done sim.Time, fp addr.FPage, d acm.Decision, err error) {
	_, t := s.port.Acquire(now, s.cfg.LookupTime)
	t, fp, err = s.walk(t, npPage)
	if err != nil {
		return t, 0, acm.Decision{}, err
	}
	t, d = s.verify(t, fp, want)
	return t, fp, d, nil
}

// TranslateAndVerify is the I-FAM request path: every FAM-zone access stops
// at the STU, which translates the node address and checks permissions in
// one coupled cache (Figure 2b).
func (s *STU) TranslateAndVerify(now sim.Time, npPage addr.NPPage, want acm.Perm) (done sim.Time, fp addr.FPage, d acm.Decision, err error) {
	if s.cfg.Org != OrgIFAM {
		return now, 0, acm.Decision{}, fmt.Errorf("stu: TranslateAndVerify requires the I-FAM organization, have %v", s.cfg.Org)
	}
	_, t := s.port.Acquire(now, s.cfg.LookupTime)
	if ent, ok := s.ifam.lookup(uint64(npPage)); ok {
		s.stats.TranslationHits++
		s.stats.ACMHits++ // coupled entry: ACM rides along (Figure 9's I-FAM series)
		d := s.meta.Check(ent.fam, s.nodeID, want)
		if d.BitmapFetch {
			t = s.famRead(t, s.layout.BitmapBlockAddr(ent.fam.Huge(), s.nodeID), false)
			s.stats.BitmapFetches++
		}
		if !d.Allowed {
			s.stats.Denied++
		}
		return t, ent.fam, d, nil
	}
	s.stats.TranslationMisses++
	s.stats.ACMMisses++
	t, fp, err = s.walk(t, npPage)
	if err != nil {
		return t, 0, acm.Decision{}, err
	}
	// The coupled entry needs the metadata too: one ACM block fetch.
	t = s.famRead(t, s.layout.ACMBlockAddr(fp), false)
	s.stats.ACMFetches++
	ent := ifamEntry{fam: fp, e: s.meta.Entry(fp)}
	s.ifam.insert(uint64(npPage), ent)
	d = s.meta.Check(fp, s.nodeID, want)
	if d.BitmapFetch {
		t = s.famRead(t, s.layout.BitmapBlockAddr(fp.Huge(), s.nodeID), false)
		s.stats.BitmapFetches++
	}
	if !d.Allowed {
		s.stats.Denied++
	}
	return t, fp, d, nil
}

// TranslationHitRate returns the I-FAM STU translation hit rate (Figure 10).
func (s *STU) TranslationHitRate() float64 {
	tot := s.stats.TranslationHits + s.stats.TranslationMisses
	if tot == 0 {
		return 0
	}
	return float64(s.stats.TranslationHits) / float64(tot)
}

// ACMHitRate returns the metadata hit rate (Figure 9).
func (s *STU) ACMHitRate() float64 {
	tot := s.stats.ACMHits + s.stats.ACMMisses
	if tot == 0 {
		return 0
	}
	return float64(s.stats.ACMHits) / float64(tot)
}

// InvalidateNodePage drops any coupled I-FAM entry for npPage (migration).
func (s *STU) InvalidateNodePage(npPage addr.NPPage) {
	if s.ifam != nil {
		s.ifam.invalidate(uint64(npPage))
	}
}

// InvalidateACM drops cached metadata for a FAM page (migration, §VI).
func (s *STU) InvalidateACM(fp addr.FPage) {
	switch s.cfg.Org {
	case OrgDeACTW:
		s.wcache.invalidate(uint64(fp) / s.cfg.pagesPerWay())
	case OrgDeACTN:
		s.ncache.invalidate(n44(fp))
	}
}

// Flush empties all STU state (full shootdown).
func (s *STU) Flush() {
	if s.ifam != nil {
		s.ifam.flush()
	}
	if s.wcache != nil {
		s.wcache.flush()
	}
	if s.ncache != nil {
		s.ncache.flush()
	}
	s.ptw.Flush()
}
