package stu

// assoc is a small set-associative LRU lookup table used for the STU cache
// in its three organizations. Unlike the node TLB (package tlb) the value
// type varies by organization, so this one is generic.
type assoc[V any] struct {
	sets    uint64
	setMask uint64 // sets-1 when sets is a power of two, else 0 (use modulo)
	ways    int
	keys    []uint64
	vals    []V
	valid   []bool
	stamps  []uint64
	tick    uint64
	hits    uint64
	misses  uint64
}

func newAssoc[V any](entries, ways int) *assoc[V] {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("stu: bad assoc geometry")
	}
	n := entries
	a := &assoc[V]{
		sets:   uint64(entries / ways),
		ways:   ways,
		keys:   make([]uint64, n),
		vals:   make([]V, n),
		valid:  make([]bool, n),
		stamps: make([]uint64, n),
	}
	if a.sets&(a.sets-1) == 0 {
		a.setMask = a.sets - 1
	}
	return a
}

func (a *assoc[V]) setBase(key uint64) uint64 {
	if a.setMask != 0 {
		return (key & a.setMask) * uint64(a.ways)
	}
	return (key % a.sets) * uint64(a.ways)
}

func (a *assoc[V]) lookup(key uint64) (V, bool) {
	base := a.setBase(key)
	a.tick++
	for w := 0; w < a.ways; w++ {
		i := base + uint64(w)
		if a.valid[i] && a.keys[i] == key {
			a.stamps[i] = a.tick
			a.hits++
			return a.vals[i], true
		}
	}
	a.misses++
	var zero V
	return zero, false
}

// peek looks up without touching hit/miss counters or LRU state.
func (a *assoc[V]) peek(key uint64) (V, bool) {
	base := a.setBase(key)
	for w := 0; w < a.ways; w++ {
		i := base + uint64(w)
		if a.valid[i] && a.keys[i] == key {
			return a.vals[i], true
		}
	}
	var zero V
	return zero, false
}

func (a *assoc[V]) insert(key uint64, v V) {
	base := a.setBase(key)
	a.tick++
	victim := base
	victimStamp := ^uint64(0)
	for w := 0; w < a.ways; w++ {
		i := base + uint64(w)
		if a.valid[i] && a.keys[i] == key {
			a.vals[i] = v
			a.stamps[i] = a.tick
			return
		}
		stamp := a.stamps[i]
		if !a.valid[i] {
			stamp = 0
		}
		if stamp < victimStamp {
			victimStamp = stamp
			victim = i
		}
	}
	a.keys[victim] = key
	a.vals[victim] = v
	a.valid[victim] = true
	a.stamps[victim] = a.tick
}

func (a *assoc[V]) invalidate(key uint64) bool {
	base := a.setBase(key)
	for w := 0; w < a.ways; w++ {
		i := base + uint64(w)
		if a.valid[i] && a.keys[i] == key {
			a.valid[i] = false
			return true
		}
	}
	return false
}

func (a *assoc[V]) flush() {
	for i := range a.valid {
		a.valid[i] = false
	}
}
