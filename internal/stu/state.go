package stu

import (
	"deact/internal/acm"
	"deact/internal/sim"
	"deact/internal/tlb"
)

// assocState captures one assoc table. Generic over the value type so each
// organization's payload is copied by value.
type assocState[V any] struct {
	keys   []uint64
	vals   []V
	valid  []bool
	stamps []uint64
	tick   uint64
	hits   uint64
	misses uint64
}

func (a *assoc[V]) captureState(st *assocState[V]) {
	st.keys = append(st.keys[:0], a.keys...)
	st.vals = append(st.vals[:0], a.vals...)
	st.valid = append(st.valid[:0], a.valid...)
	st.stamps = append(st.stamps[:0], a.stamps...)
	st.tick = a.tick
	st.hits, st.misses = a.hits, a.misses
}

func (a *assoc[V]) restoreState(st *assocState[V]) {
	if len(st.keys) != len(a.keys) {
		panic("stu: restoreState assoc geometry mismatch")
	}
	copy(a.keys, st.keys)
	copy(a.vals, st.vals)
	copy(a.valid, st.valid)
	copy(a.stamps, st.stamps)
	a.tick = st.tick
	a.hits, a.misses = st.hits, st.misses
}

// State is an STU's mutable state for core.System.Snapshot: the port
// calendar, whichever cache organization is active, the FAM walk cache and
// the counters. The walk scratch buffer is not state (it never survives a
// call), and the page-table alias is restored by the broker, not here.
type State struct {
	port   sim.ResourceState
	ifam   assocState[ifamEntry]
	wcache assocState[struct{}]
	ncache assocState[acm.Entry]
	ptw    tlb.PTWCacheState
	stats  Stats
}

// CaptureState captures the STU into st, reusing st's storage.
func (s *STU) CaptureState(st *State) {
	s.port.CaptureState(&st.port)
	if s.ifam != nil {
		s.ifam.captureState(&st.ifam)
	}
	if s.wcache != nil {
		s.wcache.captureState(&st.wcache)
	}
	if s.ncache != nil {
		s.ncache.captureState(&st.ncache)
	}
	s.ptw.CaptureState(&st.ptw)
	st.stats = s.stats
}

// RestoreState rewinds the STU to st. The STU must be built from the
// configuration st was captured from.
func (s *STU) RestoreState(st *State) {
	s.port.RestoreState(&st.port)
	if s.ifam != nil {
		s.ifam.restoreState(&st.ifam)
	}
	if s.wcache != nil {
		s.wcache.restoreState(&st.wcache)
	}
	if s.ncache != nil {
		s.ncache.restoreState(&st.ncache)
	}
	s.ptw.RestoreState(&st.ptw)
	s.stats = st.stats
}
