package stu

import (
	"testing"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/broker"
	"deact/internal/sim"
)

func layout() addr.Layout {
	return addr.Layout{DRAMSize: 1 << 30, FAMZoneSize: 2 << 30, FAMSize: 4 << 30, ACMBits: 16}
}

// fixture wires an STU to a broker-backed FAM page table with a counting
// fixed-latency FAM access function.
type fixture struct {
	b        *broker.Broker
	s        *STU
	famReads uint64
}

func newFixture(t *testing.T, cfg Config, nodeID uint16) *fixture {
	t.Helper()
	b, err := broker.New(layout(), 11)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := b.NodeTable(nodeID)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{b: b}
	fam := func(now sim.Time, a addr.FAddr, write bool) sim.Time {
		f.famReads++
		return now + sim.US(1) // 500ns each way, service folded in
	}
	fault := func(np addr.NPPage) (addr.FPage, error) { return b.MapForNode(nodeID, np) }
	s, err := New(cfg, nodeID, layout(), b.Meta(), tbl, fam, fault)
	if err != nil {
		t.Fatal(err)
	}
	f.s = s
	return f
}

func defaultCfg(org Organization) Config {
	return Config{Entries: 1024, Ways: 8, Org: org, ACMBits: 16, PTWCacheEntries: 32, LookupTime: sim.NS(2)}
}

func TestConfigValidate(t *testing.T) {
	if err := defaultCfg(OrgIFAM).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Entries: 0, Ways: 1, ACMBits: 16},
		{Entries: 8, Ways: 0, ACMBits: 16},
		{Entries: 9, Ways: 2, ACMBits: 16},
		{Entries: 8, Ways: 2, ACMBits: 12},
		{Entries: 8, Ways: 2, ACMBits: 16, PairsPerWay: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestOrganizationString(t *testing.T) {
	for o, want := range map[Organization]string{OrgIFAM: "I-FAM", OrgDeACTW: "DeACT-W", OrgDeACTN: "DeACT-N", Organization(7): "Organization(7)"} {
		if o.String() != want {
			t.Errorf("%d String = %q", int(o), o.String())
		}
	}
}

func TestGeometryDerivations(t *testing.T) {
	for _, tc := range []struct {
		bits  uint
		pages uint64
		pairs int
	}{{8, 8, 2}, {16, 4, 2}, {32, 2, 1}} {
		c := Config{ACMBits: tc.bits}
		if c.pagesPerWay() != tc.pages {
			t.Errorf("ACMBits=%d pagesPerWay=%d want %d", tc.bits, c.pagesPerWay(), tc.pages)
		}
		if c.pairsPerWay() != tc.pairs {
			t.Errorf("ACMBits=%d pairsPerWay=%d want %d", tc.bits, c.pairsPerWay(), tc.pairs)
		}
	}
	c := Config{ACMBits: 8, PairsPerWay: 3}
	if c.pairsPerWay() != 3 {
		t.Error("PairsPerWay override ignored")
	}
}

func TestIFAMTranslateMissThenHit(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgIFAM), 1)
	np := addr.NPPage(0x40000) // in FAM zone for 1GB DRAM
	// The OS installs the mapping at first touch (allocation is off the
	// translation critical path); the STU then finds a complete table.
	if _, err := f.b.MapForNode(1, np); err != nil {
		t.Fatal(err)
	}
	done, fp, d, err := f.s.TranslateAndVerify(0, np, acm.PermR)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Allowed {
		t.Fatalf("own page denied: %+v", d)
	}
	st := f.s.Stats()
	if st.TranslationMisses != 1 || st.TranslationHits != 0 {
		t.Fatalf("miss not recorded: %+v", st)
	}
	// Cold walk: 4 PTE steps + 1 ACM fetch = 5 FAM accesses minimum.
	if f.famReads < 5 {
		t.Fatalf("cold I-FAM miss did %d FAM reads, want ≥5", f.famReads)
	}
	if done < sim.US(5) {
		t.Fatalf("cold miss completed too fast: %v", done)
	}
	// Second access: pure hit, no new FAM traffic.
	before := f.famReads
	done2, fp2, d2, err := f.s.TranslateAndVerify(done, np, acm.PermR)
	if err != nil || !d2.Allowed || fp2 != fp {
		t.Fatalf("hit path broken: %v %v", err, d2)
	}
	if f.famReads != before {
		t.Fatal("I-FAM hit generated FAM traffic")
	}
	if done2 != done+sim.NS(2) {
		t.Fatalf("hit latency %v, want lookup time only", done2-done)
	}
	if f.s.TranslationHitRate() != 0.5 {
		t.Fatalf("hit rate %v", f.s.TranslationHitRate())
	}
}

func TestIFAMRejectsWrongOrgCalls(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgDeACTW), 1)
	if _, _, _, err := f.s.TranslateAndVerify(0, 1, acm.PermR); err == nil {
		t.Fatal("TranslateAndVerify accepted on DeACT-W STU")
	}
}

func TestDeACTUnmappedThenVerify(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgDeACTN), 2)
	np := addr.NPPage(0x50000)
	done, fp, d, err := f.s.HandleUnmapped(0, np, acm.PermRW)
	if err != nil || !d.Allowed {
		t.Fatalf("unmapped handling failed: %v %+v", err, d)
	}
	st := f.s.Stats()
	if st.Walks != 1 || st.PTWSteps == 0 {
		t.Fatalf("walk not recorded: %+v", st)
	}
	if st.ACMMisses != 1 || st.ACMFetches != 1 {
		t.Fatalf("cold ACM not fetched: %+v", st)
	}
	// Now the mapped fast path: verification only, ACM cached.
	before := f.famReads
	done2, d2 := f.s.VerifyMapped(done, fp, acm.PermRW)
	if !d2.Allowed {
		t.Fatalf("verified access denied: %+v", d2)
	}
	if f.famReads != before {
		t.Fatal("warm verify generated FAM traffic")
	}
	if got := f.s.Stats().ACMHits; got != 1 {
		t.Fatalf("ACM hits = %d, want 1", got)
	}
	if done2 != done+sim.NS(2) {
		t.Fatalf("warm verify latency %v", done2-done)
	}
}

func TestVerifyDeniesForeignPage(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgDeACTN), 3)
	// Node 4 owns this page; node 3's STU must deny even a "mapped" (forged)
	// request — the decoupled-translation security property.
	foreign, err := f.b.AllocatePage(4)
	if err != nil {
		t.Fatal(err)
	}
	_, d := f.s.VerifyMapped(0, foreign, acm.PermR)
	if d.Allowed {
		t.Fatal("foreign page access allowed — access control broken")
	}
	if f.s.Stats().Denied != 1 {
		t.Fatal("denial not counted")
	}
}

func TestVerifySharedBitmapPath(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgDeACTN), 5)
	huge, err := f.b.AllocateSharedRegion(acm.PermR)
	if err != nil {
		t.Fatal(err)
	}
	f.b.Grant(huge, 5, acm.PermR)
	page := addr.FPage(huge*addr.PagesPerHuge + 3)
	_, d := f.s.VerifyMapped(0, page, acm.PermR)
	if !d.Allowed || !d.Shared {
		t.Fatalf("granted shared access denied: %+v", d)
	}
	if f.s.Stats().BitmapFetches != 1 {
		t.Fatalf("bitmap fetches = %d, want 1", f.s.Stats().BitmapFetches)
	}
	// Write needs a write grant.
	_, d = f.s.VerifyMapped(0, page, acm.PermRW)
	if d.Allowed {
		t.Fatal("read-only grant allowed a write")
	}
}

func TestDeACTWContiguousCoverage(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgDeACTW), 6)
	// Allocate enough pages to find two in the same group of 4.
	var pages []addr.FPage
	for i := 0; i < 200; i++ {
		p, err := f.b.AllocatePage(6)
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	var a, b addr.FPage
	found := false
outer:
	for i, p := range pages {
		for _, q := range pages[i+1:] {
			if p != q && uint64(p)/4 == uint64(q)/4 {
				a, b = p, q
				found = true
				break outer
			}
		}
	}
	if !found {
		t.Skip("random placement yielded no same-group pair")
	}
	f.s.VerifyMapped(0, a, acm.PermR) // miss, fills group
	_, d := f.s.VerifyMapped(0, b, acm.PermR)
	if !d.Allowed {
		t.Fatal("same-group page denied")
	}
	st := f.s.Stats()
	if st.ACMHits != 1 || st.ACMMisses != 1 {
		t.Fatalf("W-coverage not shared within group: %+v", st)
	}
}

func TestDeACTNDoublesEffectiveEntries(t *testing.T) {
	// With 16-bit ACM, DeACT-N holds Entries×2 independent pages while
	// DeACT-W holds Entries groups. Under random placement, N must beat W
	// for a working set near the cache size.
	cfgW := defaultCfg(OrgDeACTW)
	cfgW.Entries, cfgW.Ways = 64, 8
	cfgN := defaultCfg(OrgDeACTN)
	cfgN.Entries, cfgN.Ways = 64, 8
	fw := newFixture(t, cfgW, 7)
	fn := newFixture(t, cfgN, 7)
	var pw, pn []addr.FPage
	for i := 0; i < 100; i++ {
		p1, err := fw.b.AllocatePage(7)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := fn.b.AllocatePage(7)
		if err != nil {
			t.Fatal(err)
		}
		pw, pn = append(pw, p1), append(pn, p2)
	}
	for round := 0; round < 10; round++ {
		for i := range pw {
			fw.s.VerifyMapped(0, pw[i], acm.PermR)
			fn.s.VerifyMapped(0, pn[i], acm.PermR)
		}
	}
	if fn.s.ACMHitRate() <= fw.s.ACMHitRate() {
		t.Fatalf("DeACT-N hit rate %.3f not above DeACT-W %.3f under random placement",
			fn.s.ACMHitRate(), fw.s.ACMHitRate())
	}
}

func TestPTWCacheShortensSecondWalk(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgDeACTN), 8)
	for _, np := range []addr.NPPage{0x60000, 0x60001} {
		if _, err := f.b.MapForNode(8, np); err != nil {
			t.Fatal(err)
		}
	}
	f.s.HandleUnmapped(0, 0x60000, acm.PermR)
	first := f.s.Stats().PTWSteps
	if first != 4 {
		t.Fatalf("cold walk took %d steps, want 4", first)
	}
	// Adjacent node page shares the PTE page: walk should need 1 step.
	f.s.HandleUnmapped(0, 0x60001, acm.PermR)
	second := f.s.Stats().PTWSteps - first
	if second != 1 {
		t.Fatalf("adjacent walk took %d steps, want 1", second)
	}
}

func TestBrokerFaultPath(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgDeACTN), 9)
	done, fp, d, err := f.s.HandleUnmapped(0, 0x70000, acm.PermR)
	if err != nil || !d.Allowed {
		t.Fatalf("fault path failed: %v", err)
	}
	if f.s.Stats().BrokerFaults != 1 {
		t.Fatal("broker fault not counted")
	}
	if done == 0 || fp == 0 && !d.Allowed {
		t.Fatal("fault path returned nothing")
	}
	// No fault handler: error.
	tbl, _ := f.b.NodeTable(10)
	s2, err := New(defaultCfg(OrgDeACTN), 10, layout(), f.b.Meta(), tbl,
		func(now sim.Time, a addr.FAddr, w bool) sim.Time { return now }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s2.HandleUnmapped(0, 0x70000, acm.PermR); err == nil {
		t.Fatal("missing fault handler not reported")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	f := newFixture(t, defaultCfg(OrgDeACTN), 11)
	_, fp, _, err := f.s.HandleUnmapped(0, 0x80000, acm.PermR)
	if err != nil {
		t.Fatal(err)
	}
	f.s.InvalidateACM(fp)
	before := f.s.Stats().ACMMisses
	f.s.VerifyMapped(0, fp, acm.PermR)
	if f.s.Stats().ACMMisses != before+1 {
		t.Fatal("invalidated ACM still hit")
	}
	f.s.Flush()
	before = f.s.Stats().ACMMisses
	f.s.VerifyMapped(0, fp, acm.PermR)
	if f.s.Stats().ACMMisses != before+1 {
		t.Fatal("flush did not clear ACM cache")
	}
}

func TestNewValidatesDependencies(t *testing.T) {
	if _, err := New(defaultCfg(OrgIFAM), 1, layout(), nil, nil, nil, nil); err == nil {
		t.Fatal("nil dependencies accepted")
	}
}

func TestTrustReadsSkipsReadVerification(t *testing.T) {
	cfg := defaultCfg(OrgDeACTN)
	cfg.TrustReads = true
	f := newFixture(t, cfg, 12)
	foreign, err := f.b.AllocatePage(13)
	if err != nil {
		t.Fatal(err)
	}
	// Encrypted-memory model: the read is allowed (ciphertext is useless)
	// and costs no metadata traffic…
	before := f.famReads
	_, d := f.s.VerifyMapped(0, foreign, acm.PermR)
	if !d.Allowed {
		t.Fatal("trusted read denied")
	}
	if f.famReads != before {
		t.Fatal("trusted read fetched metadata")
	}
	if f.s.Stats().TrustedReads != 1 {
		t.Fatal("trusted read not counted")
	}
	// …but a write to the foreign page is still blocked.
	_, d = f.s.VerifyMapped(0, foreign, acm.PermRW)
	if d.Allowed {
		t.Fatal("trusted-reads mode allowed a foreign WRITE — tampering possible")
	}
}
