// Package trace records and replays access-reference streams in a
// compact, versioned, delta-encoded binary format, making captured
// instruction streams first-class benchmarks: a Recorder taps the
// workload sources of a live run and captures the exact Op stream each
// core consumed; a Trace replays those streams as drop-in
// workload.Source implementations that are bit-identical across replays
// and snapshot/fork-compatible via their recorded stream positions.
//
// # Format
//
// A trace is one self-contained byte blob:
//
//	"DEACTRC1"                     8-byte magic
//	uvarint   version (currently 1)
//	uvarint   len(benchmark) + benchmark name bytes
//	uvarint   stream count (one stream per core, global core order)
//	per stream:
//	    uvarint op count (> 0)
//	    uvarint payload length in bytes + payload
//
// Each op in a payload is a flags byte followed by varints:
//
//	bit 0   Write
//	bit 1   Blocking
//	bit 2   PC delta follows (zigzag varint); otherwise PC repeats
//	bits 3-7  Compute gap 0..30 inline; 31 escapes to a uvarint
//	[uvarint compute]     only when the inline field is 31
//	[zigzag varint ΔPC]   only when bit 2 is set
//	zigzag varint Δaddr   vs. the previous op's address (first op: vs. 0)
//
// Delta encoding makes strided and looping streams a couple of bytes per
// op. Tenant IDs are deliberately not recorded: like SetTenant on the
// generators, tenancy is run configuration, re-stamped at replay time, so
// one trace serves any tenant layout.
//
// Decoding is allocation-free in steady state: Replay.Next walks the
// in-memory payload with binary.Uvarint/Varint only. Load validates every
// stream completely (exact op counts, clean payload boundaries) before
// returning, so Next can trust the bytes.
package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"

	"deact/internal/addr"
	"deact/internal/workload"
)

const (
	magic   = "DEACTRC1"
	version = 1

	flagWrite    = 1 << 0
	flagBlocking = 1 << 1
	flagPC       = 1 << 2
	computeShift = 3
	// computeEscape in the inline compute field means "uvarint follows".
	computeEscape = 31
)

// Recorder captures the per-core Op streams of one run. Build it with the
// run's core count, wrap each core's source with Tap, run, then Encode or
// Save the trace. A Recorder serves exactly one run at a time: taps are
// not safe for use from concurrent runs, and tapped sources refuse
// snapshot capture (recording a forked run would interleave streams).
type Recorder struct {
	bench   string
	streams []streamEnc
}

type streamEnc struct {
	buf    []byte
	n      uint64
	prev   uint64
	prevPC uint64
}

// NewRecorder prepares a recorder for a run of the named benchmark with
// the given number of cores (= streams, in global core order).
func NewRecorder(bench string, streams int) *Recorder {
	return &Recorder{bench: bench, streams: make([]streamEnc, streams)}
}

// Streams returns the number of per-core streams the recorder captures.
func (r *Recorder) Streams() int { return len(r.streams) }

// Ops returns the number of ops recorded so far on stream i.
func (r *Recorder) Ops(i int) uint64 { return r.streams[i].n }

// Tap wraps src so every op it produces is appended to stream i. The tap
// delegates Next/SetTenant/Tenant to src unchanged — a recording run is
// draw-identical to an unrecorded one.
func (r *Recorder) Tap(i int, src workload.Source) workload.Source {
	return &tap{src: src, enc: &r.streams[i]}
}

type tap struct {
	src workload.Source
	enc *streamEnc
}

func (t *tap) Next() workload.Op {
	op := t.src.Next()
	t.enc.append(op)
	return op
}

func (t *tap) SetTenant(tn uint8) { t.src.SetTenant(tn) }
func (t *tap) Tenant() uint8      { return t.src.Tenant() }

// State and RestoreState panic: a recording run must consume its streams
// linearly, so it cannot be snapshotted or forked. Record cold, replay
// forked.
func (t *tap) State() workload.GeneratorState {
	panic("trace: recording sources do not support snapshot/restore")
}

func (t *tap) RestoreState(workload.GeneratorState) {
	panic("trace: recording sources do not support snapshot/restore")
}

func (e *streamEnc) append(op workload.Op) {
	flags := byte(0)
	if op.Write {
		flags |= flagWrite
	}
	if op.Blocking {
		flags |= flagBlocking
	}
	if op.PC != e.prevPC {
		flags |= flagPC
	}
	c := op.Compute
	if c < computeEscape {
		flags |= byte(c) << computeShift
	} else {
		flags |= computeEscape << computeShift
	}
	e.buf = append(e.buf, flags)
	if c >= computeEscape {
		e.buf = binary.AppendUvarint(e.buf, uint64(c))
	}
	if op.PC != e.prevPC {
		e.buf = binary.AppendVarint(e.buf, int64(op.PC-e.prevPC))
		e.prevPC = op.PC
	}
	e.buf = binary.AppendVarint(e.buf, int64(uint64(op.Addr)-e.prev))
	e.prev = uint64(op.Addr)
	e.n++
}

// Encode serializes the recorded streams into the trace format.
func (r *Recorder) Encode() []byte {
	var out []byte
	out = append(out, magic...)
	out = binary.AppendUvarint(out, version)
	out = binary.AppendUvarint(out, uint64(len(r.bench)))
	out = append(out, r.bench...)
	out = binary.AppendUvarint(out, uint64(len(r.streams)))
	for i := range r.streams {
		s := &r.streams[i]
		out = binary.AppendUvarint(out, s.n)
		out = binary.AppendUvarint(out, uint64(len(s.buf)))
		out = append(out, s.buf...)
	}
	return out
}

// WriteTo writes the encoded trace to w.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(r.Encode())
	return int64(n), err
}

// Save writes the encoded trace to path.
func (r *Recorder) Save(path string) error {
	if err := os.WriteFile(path, r.Encode(), 0o644); err != nil {
		return fmt.Errorf("trace: save: %w", err)
	}
	return nil
}

// Trace is a decoded, validated, immutable trace. One Trace may back any
// number of concurrent replays: Source returns a fresh cursor over the
// shared payload bytes each call.
type Trace struct {
	bench   string
	id      string
	streams []stream
}

type stream struct {
	data []byte
	ops  uint64
}

// Load reads and decodes the trace at path.
func Load(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: load: %w", err)
	}
	t, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("trace: load %s: %w", path, err)
	}
	return t, nil
}

// Decode parses and fully validates an encoded trace. Every stream is
// walked op by op so that replay can proceed without bounds anxiety.
func Decode(data []byte) (*Trace, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic (not a deact trace)")
	}
	rest := data[len(magic):]
	v, n := binary.Uvarint(rest)
	if n <= 0 || v != version {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", v, version)
	}
	rest = rest[n:]
	bl, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < bl {
		return nil, fmt.Errorf("trace: truncated benchmark name")
	}
	bench := string(rest[n : n+int(bl)])
	rest = rest[n+int(bl):]
	sc, n := binary.Uvarint(rest)
	if n <= 0 || sc == 0 || sc > 1<<20 {
		return nil, fmt.Errorf("trace: invalid stream count %d", sc)
	}
	rest = rest[n:]
	t := &Trace{bench: bench, streams: make([]stream, sc)}
	for i := range t.streams {
		ops, n := binary.Uvarint(rest)
		if n <= 0 || ops == 0 {
			return nil, fmt.Errorf("trace: stream %d: invalid op count", i)
		}
		rest = rest[n:]
		bl, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < bl {
			return nil, fmt.Errorf("trace: stream %d: truncated payload", i)
		}
		payload := rest[n : n+int(bl)]
		rest = rest[n+int(bl):]
		if err := validateStream(payload, ops); err != nil {
			return nil, fmt.Errorf("trace: stream %d: %w", i, err)
		}
		t.streams[i] = stream{data: payload, ops: ops}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after last stream", len(rest))
	}
	sum := sha256.Sum256(data)
	t.id = hex.EncodeToString(sum[:])[:32]
	return t, nil
}

// validateStream decodes the whole payload once, requiring exactly ops
// ops and a clean end.
func validateStream(data []byte, ops uint64) error {
	pos := 0
	for i := uint64(0); i < ops; i++ {
		if pos >= len(data) {
			return fmt.Errorf("payload ends at op %d of %d", i, ops)
		}
		flags := data[pos]
		pos++
		if flags>>computeShift == computeEscape {
			v, n := binary.Uvarint(data[pos:])
			if n <= 0 || v > 1<<30 {
				return fmt.Errorf("op %d: bad compute varint", i)
			}
			pos += n
		}
		if flags&flagPC != 0 {
			if _, n := binary.Varint(data[pos:]); n <= 0 {
				return fmt.Errorf("op %d: bad pc varint", i)
			} else {
				pos += n
			}
		}
		if _, n := binary.Varint(data[pos:]); n <= 0 {
			return fmt.Errorf("op %d: bad address varint", i)
		} else {
			pos += n
		}
	}
	if pos != len(data) {
		return fmt.Errorf("%d trailing payload bytes", len(data)-pos)
	}
	return nil
}

// ID is the trace's content identity: the first 32 hex characters of the
// SHA-256 of the encoded bytes. core.Config.TraceID carries it so replay
// runs fingerprint (and therefore cache, dedup and snapshot-group)
// distinctly per trace.
func (t *Trace) ID() string { return t.id }

// Benchmark is the benchmark name recorded in the trace metadata.
func (t *Trace) Benchmark() string { return t.bench }

// Streams returns the number of per-core streams.
func (t *Trace) Streams() int { return len(t.streams) }

// Ops returns the op count of stream i.
func (t *Trace) Ops(i int) uint64 { return t.streams[i].ops }

// Source returns a fresh replay cursor over stream i.
func (t *Trace) Source(i int) *Replay {
	return &Replay{data: t.streams[i].data}
}

// Replay feeds a recorded stream back as a workload.Source. A replay that
// consumes more ops than were recorded wraps to the beginning of its
// stream (with delta context reset), so budgets longer than the recording
// remain well-defined and deterministic. Next allocates nothing.
type Replay struct {
	data   []byte
	pos    int
	n      uint64 // ops produced
	prev   uint64 // last address emitted (delta context)
	prevPC uint64
	tenant uint8
}

var _ workload.Source = (*Replay)(nil)

// Next decodes and returns the next recorded op.
func (r *Replay) Next() workload.Op {
	if r.pos >= len(r.data) {
		r.pos, r.prev, r.prevPC = 0, 0, 0 // wrap: restart the stream
	}
	flags := r.data[r.pos]
	r.pos++
	compute := int(flags >> computeShift)
	if compute == computeEscape {
		v, n := binary.Uvarint(r.data[r.pos:])
		compute = int(v)
		r.pos += n
	}
	if flags&flagPC != 0 {
		d, n := binary.Varint(r.data[r.pos:])
		r.prevPC += uint64(d)
		r.pos += n
	}
	d, n := binary.Varint(r.data[r.pos:])
	r.prev += uint64(d)
	r.pos += n
	r.n++
	return workload.Op{
		Compute:  compute,
		Addr:     addr.VAddr(r.prev),
		Write:    flags&flagWrite != 0,
		Blocking: flags&flagBlocking != 0,
		Tenant:   r.tenant,
		PC:       r.prevPC,
	}
}

// SetTenant stamps t onto every replayed op; tenancy is run
// configuration, not trace content.
func (r *Replay) SetTenant(t uint8) { r.tenant = t }

// Tenant returns the stamped tenant ID.
func (r *Replay) Tenant() uint8 { return r.tenant }

// State captures the replay position for core.System.Snapshot: Cursor is
// the byte offset, Ops the op count, Aux/Aux2 the address and PC delta
// context. The RNG field stays zero — replay draws nothing.
func (r *Replay) State() workload.GeneratorState {
	return workload.GeneratorState{
		Cursor: uint64(r.pos),
		Ops:    r.n,
		Aux:    r.prev,
		Aux2:   r.prevPC,
	}
}

// RestoreState rewinds the replay to st. Any Replay over the same stream
// may restore a state captured from another — forked measure phases all
// resume from the recorded position bit-identically.
func (r *Replay) RestoreState(st workload.GeneratorState) {
	r.pos = int(st.Cursor)
	r.n = st.Ops
	r.prev = st.Aux
	r.prevPC = st.Aux2
}

// Equal reports whether two traces have identical content.
func (t *Trace) Equal(o *Trace) bool {
	if t.bench != o.bench || len(t.streams) != len(o.streams) {
		return false
	}
	for i := range t.streams {
		if t.streams[i].ops != o.streams[i].ops || !bytes.Equal(t.streams[i].data, o.streams[i].data) {
			return false
		}
	}
	return true
}
