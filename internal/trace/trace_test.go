package trace

import (
	"bytes"
	"testing"

	"deact/internal/workload"
)

// recordOps runs n ops of the named benchmark's generator through a
// recorder tap and returns both the recorder and the ops it saw.
func recordOps(t *testing.T, bench string, n int) (*Recorder, []workload.Op) {
	t.Helper()
	p, err := workload.Get(bench)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewSource(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(bench, 1)
	tapped := rec.Tap(0, src)
	tapped.SetTenant(3)
	ops := make([]workload.Op, n)
	for i := range ops {
		ops[i] = tapped.Next()
	}
	return rec, ops
}

// TestRoundTrip: encode → decode → replay reproduces the recorded op
// stream exactly (tenant re-stamped, everything else bit-identical).
func TestRoundTrip(t *testing.T) {
	rec, ops := recordOps(t, "mcf", 5000)
	if rec.Ops(0) != 5000 {
		t.Fatalf("recorder counted %d ops, want 5000", rec.Ops(0))
	}
	tr, err := Decode(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if tr.Benchmark() != "mcf" || tr.Streams() != 1 || tr.Ops(0) != 5000 {
		t.Fatalf("metadata: bench=%q streams=%d ops=%d", tr.Benchmark(), tr.Streams(), tr.Ops(0))
	}
	rp := tr.Source(0)
	rp.SetTenant(3)
	for i, want := range ops {
		if got := rp.Next(); got != want {
			t.Fatalf("op %d: replayed %+v, want %+v", i, got, want)
		}
	}
}

// TestReplayBitIdentical: two independent replays of the same trace (and a
// second Decode of the same bytes) produce identical streams and IDs.
func TestReplayBitIdentical(t *testing.T) {
	rec, _ := recordOps(t, "canl", 2000)
	enc := rec.Encode()
	a, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decode(append([]byte(nil), enc...))
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() || len(a.ID()) != 32 {
		t.Fatalf("IDs differ or malformed: %q vs %q", a.ID(), b.ID())
	}
	if !a.Equal(b) {
		t.Fatal("decoded traces not Equal")
	}
	ra, rb := a.Source(0), b.Source(0)
	for i := 0; i < 2000; i++ {
		if oa, ob := ra.Next(), rb.Next(); oa != ob {
			t.Fatalf("op %d: replays diverged: %+v vs %+v", i, oa, ob)
		}
	}
}

// TestReplayWrap: consuming past the recorded length restarts the stream
// from op 0 with delta context reset.
func TestReplayWrap(t *testing.T) {
	rec, ops := recordOps(t, "sp", 100)
	tr, err := Decode(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	rp := tr.Source(0)
	rp.SetTenant(3)
	for i := 0; i < 350; i++ {
		want := ops[i%100]
		if got := rp.Next(); got != want {
			t.Fatalf("op %d (wrapped %d): %+v, want %+v", i, i%100, got, want)
		}
	}
}

// TestReplayStateRestore: a state captured mid-replay restores into a fresh
// cursor over the same stream and continues identically — the snapshot/fork
// contract.
func TestReplayStateRestore(t *testing.T) {
	rec, _ := recordOps(t, "dc", 1000)
	tr, err := Decode(rec.Encode())
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Source(0)
	orig.SetTenant(7)
	for i := 0; i < 437; i++ {
		orig.Next()
	}
	st := orig.State()
	if st.RNG.Draws != 0 {
		t.Fatalf("replay state consumed %d RNG draws, want 0", st.RNG.Draws)
	}
	fork := tr.Source(0)
	fork.SetTenant(7)
	fork.RestoreState(st)
	for i := 0; i < 800; i++ { // crosses the wrap point
		want, got := orig.Next(), fork.Next()
		if want != got {
			t.Fatalf("op %d after restore: %+v, want %+v", i, got, want)
		}
	}
}

// TestTapRefusesSnapshot: recording sources panic on State/RestoreState —
// a recording run cannot be forked.
func TestTapRefusesSnapshot(t *testing.T) {
	rec, _ := recordOps(t, "mcf", 1)
	p, _ := workload.Get("mcf")
	src, _ := workload.NewSource(p, 1)
	_ = rec // silence; fresh recorder below keeps streams consistent
	tapped := NewRecorder("mcf", 1).Tap(0, src)
	assertPanics(t, "State", func() { tapped.State() })
	assertPanics(t, "RestoreState", func() { tapped.RestoreState(workload.GeneratorState{}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s on a recording tap did not panic", name)
		}
	}()
	f()
}

// TestDecodeRejectsCorruption: truncation anywhere, trailing bytes, bad
// magic and version are all detected up front.
func TestDecodeRejectsCorruption(t *testing.T) {
	rec, _ := recordOps(t, "mcf", 200)
	enc := rec.Encode()
	if _, err := Decode(enc); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(enc))
		}
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[len(magic)] = 2 // version
	if _, err := Decode(bad); err == nil {
		t.Error("future version accepted")
	}
}

// TestEncodeStable: Encode is deterministic and WriteTo emits the same
// bytes.
func TestEncodeStable(t *testing.T) {
	rec, _ := recordOps(t, "canl", 300)
	a, b := rec.Encode(), rec.Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("Encode not deterministic")
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, buf.Bytes()) {
		t.Fatal("WriteTo differs from Encode")
	}
}

// TestSaveLoad: the file round trip preserves identity.
func TestSaveLoad(t *testing.T) {
	rec, _ := recordOps(t, "sp", 500)
	path := t.TempDir() + "/t.trace"
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Decode(rec.Encode())
	if !got.Equal(want) || got.ID() != want.ID() {
		t.Fatal("loaded trace differs from encoded")
	}
}

// TestCompactness: the delta encoding keeps the steady-state cost small —
// well under the 18+ bytes a flat fixed-width record would need.
func TestCompactness(t *testing.T) {
	rec, _ := recordOps(t, "mcf", 10000)
	perOp := float64(len(rec.Encode())) / 10000
	if perOp > 8 {
		t.Errorf("encoding costs %.1f bytes/op, want ≤ 8", perOp)
	}
}

// BenchmarkTraceReplay measures steady-state decode; the 0 allocs/op bar
// is enforced by the -benchmem CI smoke and asserted here via ReportAllocs.
func BenchmarkTraceReplay(b *testing.B) {
	p, err := workload.Get("mcf")
	if err != nil {
		b.Fatal(err)
	}
	src, err := workload.NewSource(p, 42)
	if err != nil {
		b.Fatal(err)
	}
	rec := NewRecorder("mcf", 1)
	tapped := rec.Tap(0, src)
	for i := 0; i < 4096; i++ {
		tapped.Next()
	}
	tr, err := Decode(rec.Encode())
	if err != nil {
		b.Fatal(err)
	}
	rp := tr.Source(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.Next()
	}
}
