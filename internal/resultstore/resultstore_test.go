package resultstore

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"deact/internal/core"
)

// storeTestConfig is a small-but-real run; tenants=2 populates the
// per-tenant histograms so round-trips cover them.
func storeTestConfig(scheme core.Scheme, bench string, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = bench
	cfg.CoresPerNode = 2
	cfg.Tenants = 2
	cfg.WarmupInstructions = 1_000
	cfg.MeasureInstructions = 2_000
	cfg.Seed = seed
	return cfg
}

func mustRun(t testing.TB, cfg core.Config) core.Result {
	t.Helper()
	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestStoreHitEqualsMiss is the byte-identity gate: a warm Get — even
// through a fresh Store handle, as a new process would hold — must return
// a Result deeply equal to the simulated one with an identical canonical
// encoding, histograms included.
func TestStoreHitEqualsMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeTestConfig(core.DeACTN, "mcf", 42)
	want := mustRun(t, cfg)
	if _, ok := st.Get(cfg); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := st.Put(cfg, want); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, 0) // fresh handle: nothing cached in memory
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st2.Get(cfg)
	if !ok {
		t.Fatal("persisted entry missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stored result is not the simulated result:\n got %+v\nwant %+v", got, want)
	}
	ge, _ := json.Marshal(got)
	we, _ := json.Marshal(want)
	if !bytes.Equal(ge, we) {
		t.Fatal("hit and miss encodings differ byte-wise")
	}
	if e, ok := st2.Lookup(cfg.Fingerprint()); !ok || e.Config.Fingerprint() != cfg.Fingerprint() {
		t.Fatal("Lookup did not return the envelope")
	}
}

// TestStoreModelHashInvalidation: a model-version bump must turn every
// stored result into a miss and reclaim the stale files.
func TestStoreModelHashInvalidation(t *testing.T) {
	dir := t.TempDir()
	cfg := storeTestConfig(core.IFAM, "sp", 42)
	res := mustRun(t, cfg)

	stA, err := openModel(dir, "model-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := stA.Put(cfg, res); err != nil {
		t.Fatal(err)
	}

	stB, err := openModel(dir, "model-b", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stB.Get(cfg); ok {
		t.Fatal("result computed under model-a served under model-b")
	}
	dirs, _ := filepath.Glob(filepath.Join(dir, "v-*"))
	if len(dirs) != 1 {
		t.Fatalf("stale model directory not reclaimed: %v", dirs)
	}
	// Reverting the model does not resurrect the invalidated entries.
	stA2, err := openModel(dir, "model-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stA2.Get(cfg); ok {
		t.Fatal("invalidated entry resurrected")
	}
}

// TestStoreCorruptedEntryIsAMiss: garbage on disk — truncated writes from
// a killed process, bit rot, foreign files — must read as cache misses
// (and be reclaimed), never as errors or wrong results.
func TestStoreCorruptedEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := storeTestConfig(core.DeACTW, "canl", 42)
	res := mustRun(t, cfg)
	fp := cfg.Fingerprint()
	other := storeTestConfig(core.EFAM, "dc", 7)

	for name, corrupt := range map[string][]byte{
		"garbage":   []byte("not json at all"),
		"truncated": {'{', '"', 'M', 'o'},
		"empty":     {},
		"wrong-entry": func() []byte {
			// A valid entry filed under the wrong address must not serve.
			b, _ := json.Marshal(Entry{Model: core.ModelVersion,
				Fingerprint: other.Fingerprint(), Config: other, Result: res})
			return b
		}(),
	} {
		if err := st.Put(cfg, res); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(st.path(fp), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Get(cfg); ok {
			t.Fatalf("%s: corrupted entry served", name)
		}
		if _, statErr := os.Stat(st.path(fp)); !os.IsNotExist(statErr) {
			t.Fatalf("%s: corrupted entry not reclaimed", name)
		}
		// The miss is recoverable: re-persisting restores the hit.
		if err := st.Put(cfg, res); err != nil {
			t.Fatal(err)
		}
		if got, ok := st.Get(cfg); !ok || !reflect.DeepEqual(got, res) {
			t.Fatalf("%s: recovery Put did not restore the entry", name)
		}
	}
}

// TestStoreEvictionOrder: over budget, the least recently *used* entry
// goes first — a Get refreshes recency, so the touched oldest entry
// survives a newer untouched one.
func TestStoreEvictionOrder(t *testing.T) {
	dir := t.TempDir()
	cfgA := storeTestConfig(core.DeACTN, "mcf", 1)
	cfgB := storeTestConfig(core.DeACTN, "mcf", 2)
	cfgC := storeTestConfig(core.DeACTN, "mcf", 3)
	resA, resB, resC := mustRun(t, cfgA), mustRun(t, cfgB), mustRun(t, cfgC)

	size := func(cfg core.Config, res core.Result) int64 {
		b, err := json.Marshal(Entry{Model: core.ModelVersion,
			Fingerprint: cfg.Fingerprint(), Config: cfg, Result: res})
		if err != nil {
			t.Fatal(err)
		}
		return int64(len(b))
	}
	// Room for any two entries, never all three.
	budget := size(cfgA, resA) + size(cfgB, resB) + size(cfgC, resC) - 1

	st, err := Open(dir, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(cfgA, resA); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(cfgB, resB); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(cfgA); !ok { // touch A: B becomes the LRU entry
		t.Fatal("A missing before eviction")
	}
	if err := st.Put(cfgC, resC); err != nil {
		t.Fatal(err)
	}

	if _, ok := st.Get(cfgB); ok {
		t.Fatal("LRU entry B survived eviction")
	}
	if _, ok := st.Get(cfgA); !ok {
		t.Fatal("recently used entry A was evicted")
	}
	if _, ok := st.Get(cfgC); !ok {
		t.Fatal("just-written entry C was evicted")
	}
	if n := st.Len(); n != 2 {
		t.Fatalf("Len() = %d after eviction, want 2", n)
	}
	if st.Bytes() > budget {
		t.Fatalf("footprint %d still over budget %d", st.Bytes(), budget)
	}
}

// TestStoreConcurrentWriters exercises the mutex seams under the race
// detector: concurrent Put/Get/Lookup on overlapping fingerprints with a
// budget small enough to force eviction during the storm.
func TestStoreConcurrentWriters(t *testing.T) {
	cfgs := []core.Config{
		storeTestConfig(core.DeACTN, "mcf", 1),
		storeTestConfig(core.IFAM, "mcf", 1),
		storeTestConfig(core.DeACTN, "mcf", 2),
	}
	results := make([]core.Result, len(cfgs))
	for i, cfg := range cfgs {
		results[i] = mustRun(t, cfg)
	}
	one, err := json.Marshal(Entry{Model: core.ModelVersion,
		Fingerprint: cfgs[0].Fingerprint(), Config: cfgs[0], Result: results[0]})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(t.TempDir(), int64(len(one))*2+16) // ~2 entries: eviction churns
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := (g + i) % len(cfgs)
				if (g+i)%2 == 0 {
					if err := st.Put(cfgs[k], results[k]); err != nil {
						t.Error(err)
						return
					}
				} else if got, ok := st.Get(cfgs[k]); ok {
					if !reflect.DeepEqual(got, results[k]) {
						t.Error("concurrent Get returned a wrong result")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStoreRejectsBadFingerprints: Lookup input is external (the HTTP
// API); path traversal or malformed addresses must be plain misses.
func TestStoreRejectsBadFingerprints(t *testing.T) {
	st, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{"", "..", "../../etc/passwd", "ABCDEF00112233445566778899aabbcc",
		"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz", "0123"} {
		if _, ok := st.Lookup(fp); ok {
			t.Errorf("bad fingerprint %q produced a hit", fp)
		}
	}
}

// BenchmarkStoreHit guards the warm-serving fast path: one Get of a
// persisted entry (read, decode, fingerprint check). It rides the CI
// bench-smoke tier, so a pathological slowdown in the hit path is visible
// in every bench artifact.
func BenchmarkStoreHit(b *testing.B) {
	cfg := storeTestConfig(core.DeACTN, "mcf", 42)
	res := mustRun(b, cfg)
	st, err := Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Put(cfg, res); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := st.Get(cfg); !ok {
			b.Fatal("hit path missed")
		}
	}
}
