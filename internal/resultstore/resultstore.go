// Package resultstore is a persistent content-addressed cache of
// simulation results: (model hash, config fingerprint) → core.Result.
//
// core.Config.Fingerprint() already gives every run a canonical content
// address — the experiments Runner dedups in-process on it — but that
// cache dies with the process, so every sweep re-pays simulation cost on
// each invocation. The store persists results behind the same address, so
// repeat traffic (re-running EXPERIMENTS.md, capacity sweeps, CI golden
// passes, deact-serve queries) becomes cache hits.
//
// Properties:
//
//   - Content-addressed and versioned: entries live under a directory
//     derived from core.ModelVersion, so a modeling change (the same
//     boundary that regenerates the golden report) invalidates every
//     stored result automatically — stale-version directories are removed
//     on Open.
//   - Exact: the entry encoding is the canonical JSON of core.Config and
//     core.Result (histogram state included), which round-trips
//     bit-exactly. A warm Get returns bytes identical to the cold run.
//   - Atomic and corruption-tolerant: writes go to a temp file in the
//     store directory and are renamed into place; a reader never observes
//     a partial entry. A truncated, corrupted or foreign file decodes as a
//     cache miss (and is deleted), never as an error or a wrong result.
//   - Bounded: the on-disk footprint is capped (MaxBytes); beyond it the
//     least recently used entry is evicted. Recency is tracked in memory
//     for the store's lifetime and persisted coarsely through file mtimes,
//     so recency survives process restarts at mtime granularity.
//
// A Store is safe for concurrent use by multiple goroutines of one
// process. Concurrent processes sharing a directory are safe against
// torn reads (renames are atomic) but may each hold their own recency
// view.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"deact/internal/core"
)

// DefaultMaxBytes caps the store footprint when Open is given 0: enough
// for hundreds of thousands of typical entries (a few KB each), small
// enough to never matter on a development machine.
const DefaultMaxBytes = 256 << 20

// Entry is the on-disk envelope of one stored result. Fingerprint and
// Model bind the payload to its content address and simulation semantics;
// Config is stored alongside the result so the serve API can show what a
// fingerprint stands for.
type Entry struct {
	// Model is the core.ModelVersion hash the result was computed under.
	Model string
	// Fingerprint is Config.Fingerprint(), the entry's content address.
	Fingerprint string
	// Config is the canonical configuration that produced Result.
	Config core.Config
	// Result is the simulation result, exact to the bit.
	Result core.Result
}

// modelHash condenses a model-version tag to the fixed-width directory
// token entries are filed under.
func modelHash(version string) string {
	sum := sha256.Sum256([]byte("deact-model:" + version))
	return hex.EncodeToString(sum[:])[:16]
}

// entryMeta is the in-memory index record of one on-disk entry.
type entryMeta struct {
	size int64
	seq  uint64 // recency: larger = more recently used
}

// Store is a persistent content-addressed result cache rooted at one
// directory. Open it with Open; the zero value is not usable.
type Store struct {
	dir      string // version directory entries live in
	model    string // model-version tag entries must carry
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entryMeta // fingerprint → meta
	total   int64                 // sum of entry sizes
	clock   uint64                // recency counter
}

// Open opens (creating if needed) the store rooted at dir, keyed to the
// current core.ModelVersion. maxBytes bounds the on-disk footprint
// (0 means DefaultMaxBytes). Entry directories of other model versions
// are removed: their results were computed under different simulation
// semantics and can never be served again.
func Open(dir string, maxBytes int64) (*Store, error) {
	return openModel(dir, core.ModelVersion, maxBytes)
}

// openModel is Open with an explicit model tag, so tests can simulate a
// model-version bump without editing the build-time constant.
func openModel(dir, model string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	vdir := filepath.Join(dir, "v-"+modelHash(model))
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: %w", err)
	}
	// Auto-invalidation: results under any other model hash were computed
	// by different simulation semantics — drop them wholesale.
	stale, err := filepath.Glob(filepath.Join(dir, "v-*"))
	if err == nil {
		for _, d := range stale {
			if d != vdir {
				os.RemoveAll(d)
			}
		}
	}
	s := &Store{dir: vdir, model: model, maxBytes: maxBytes, entries: map[string]*entryMeta{}}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// scan indexes the entries already on disk, seeding recency from file
// mtimes (oldest first) so eviction order survives restarts coarsely.
func (s *Store) scan() error {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	type rec struct {
		fp   string
		size int64
		mod  time.Time
	}
	var recs []rec
	for _, e := range ents {
		name := e.Name()
		fp, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() {
			continue // temp files and strangers never enter the index
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{fp: fp, size: info.Size(), mod: info.ModTime()})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].mod.Before(recs[j].mod) })
	for _, r := range recs {
		s.clock++
		s.entries[r.fp] = &entryMeta{size: r.size, seq: s.clock}
		s.total += r.size
	}
	return nil
}

// path returns the entry file for a fingerprint.
func (s *Store) path(fp string) string { return filepath.Join(s.dir, fp+".json") }

// Get returns the stored result for cfg, if a valid entry exists. Any
// read or decode failure — missing file, truncated write survivor,
// corrupted bytes, mismatched fingerprint — is a cache miss, never an
// error: the caller simulates and re-persists.
func (s *Store) Get(cfg core.Config) (core.Result, bool) {
	e, ok := s.Lookup(cfg.Fingerprint())
	return e.Result, ok
}

// Lookup is Get by fingerprint, returning the full envelope (the serve
// API's GET /result/{fingerprint} answers from it).
func (s *Store) Lookup(fp string) (Entry, bool) {
	if !validFingerprint(fp) {
		return Entry{}, false
	}
	data, err := os.ReadFile(s.path(fp))
	if err != nil {
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		s.drop(fp) // corrupted: delete so it stops charging the budget
		return Entry{}, false
	}
	// Bind the payload to its address and semantics: a renamed file, a
	// foreign entry or a stale model tag must miss, and the embedded
	// config must actually hash to the address it is filed under.
	if e.Model != s.model || e.Fingerprint != fp || e.Config.Fingerprint() != fp {
		s.drop(fp)
		return Entry{}, false
	}
	s.touch(fp, int64(len(data)))
	return e, true
}

// touch marks fp most recently used (indexing it if scan never saw it)
// and refreshes the file mtime so recency coarsely survives restarts.
func (s *Store) touch(fp string, size int64) {
	s.mu.Lock()
	m := s.entries[fp]
	if m == nil {
		m = &entryMeta{size: size}
		s.entries[fp] = m
		s.total += size
	}
	s.clock++
	m.seq = s.clock
	s.mu.Unlock()
	now := time.Now()
	os.Chtimes(s.path(fp), now, now) // best-effort
}

// drop removes a bad entry from disk and the index.
func (s *Store) drop(fp string) {
	s.mu.Lock()
	if m := s.entries[fp]; m != nil {
		s.total -= m.size
		delete(s.entries, fp)
	}
	s.mu.Unlock()
	os.Remove(s.path(fp))
}

// Put persists res under cfg's fingerprint, atomically (temp file +
// rename: a concurrent reader sees the old entry or the new one, never a
// torn one), then evicts least-recently-used entries until the store fits
// its byte budget again. An entry larger than the whole budget is not
// stored. Persisting is idempotent: re-putting a fingerprint replaces the
// entry with identical bytes.
func (s *Store) Put(cfg core.Config, res core.Result) error {
	fp := cfg.Fingerprint()
	e := Entry{Model: s.model, Fingerprint: fp, Config: cfg, Result: res}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", fp, err)
	}
	if int64(len(data)) > s.maxBytes {
		return nil // can't ever fit; storing it would evict everything else
	}
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", fp, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", fp, err)
	}
	if err := os.Rename(tmp.Name(), s.path(fp)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: publish %s: %w", fp, err)
	}

	s.mu.Lock()
	if m := s.entries[fp]; m != nil {
		s.total -= m.size // replaced in place
		delete(s.entries, fp)
	}
	s.clock++
	s.entries[fp] = &entryMeta{size: int64(len(data)), seq: s.clock}
	s.total += int64(len(data))
	var victims []string
	for s.total > s.maxBytes {
		var victim string
		var vm *entryMeta
		for f, m := range s.entries {
			if f != fp && (vm == nil || m.seq < vm.seq) {
				victim, vm = f, m
			}
		}
		if vm == nil {
			break
		}
		s.total -= vm.size
		delete(s.entries, victim)
		victims = append(victims, victim)
	}
	s.mu.Unlock()
	for _, v := range victims {
		os.Remove(s.path(v))
	}
	return nil
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the indexed on-disk footprint.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// validFingerprint gates Lookup input: fingerprints are fixed-width hex,
// and anything else must not be able to escape the store directory or
// collide with temp files.
func validFingerprint(fp string) bool {
	if len(fp) != 32 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
