package resultstore

import (
	"encoding/json"
	"os"
	"testing"

	"deact/internal/core"
)

// FuzzLookup feeds arbitrary bytes to the store as an on-disk entry file
// and pins the reclamation contract: Lookup never panics, never errors,
// and any entry it cannot fully validate — truncated write survivors,
// bit-flipped JSON, foreign or re-addressed envelopes — is a miss whose
// file is deleted so it stops charging the byte budget.
func FuzzLookup(f *testing.F) {
	cfg := core.DefaultConfig()
	cfg.WarmupInstructions = 100
	cfg.MeasureInstructions = 100
	fp := cfg.Fingerprint()

	// Seed with the two interesting regions: a fully valid entry (must
	// hit) and progressively damaged variants of it (must miss + reclaim).
	dir := f.TempDir()
	st, err := Open(dir, 0)
	if err != nil {
		f.Fatal(err)
	}
	if err := st.Put(cfg, core.Result{Instructions: 100}); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(st.path(fp))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"Model":"bogus"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		s, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(s.path(fp), data, 0o644); err != nil {
			t.Fatal(err)
		}
		e, ok := s.Lookup(fp)
		if ok {
			// A hit must be a bit-exact, correctly addressed envelope.
			if e.Fingerprint != fp || e.Config.Fingerprint() != fp {
				t.Fatalf("hit with broken binding: %+v", e)
			}
			var want Entry
			if json.Unmarshal(data, &want) != nil {
				t.Fatal("hit on undecodable bytes")
			}
			return
		}
		// A miss on decodable-but-invalid bytes must reclaim the file;
		// a miss on valid JSON that simply fails binding likewise. Only
		// unreadable files (impossible here — we just wrote it) may
		// survive a miss.
		if _, err := os.Stat(s.path(fp)); !os.IsNotExist(err) {
			t.Fatalf("missed entry not reclaimed (stat err: %v)", err)
		}
	})
}
