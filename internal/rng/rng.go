// Package rng wraps math/rand with a draw-counting source so a generator's
// exact position in its stream can be captured and restored. The simulator's
// snapshot/fork machinery (core.System.Snapshot) needs every RNG consumer —
// broker placement, translator replacement, workload generation — to resume
// a forked run at the precise stream position the warmup phase reached, and
// math/rand does not expose its internal state.
//
// A Rand draws from the standard rand.NewSource generator through a counting
// Source64, so the value sequence is identical to
// rand.New(rand.NewSource(seed)) — migrating a consumer to this package
// changes no simulation output. State() returns (seed, draws); Restore
// reseeds and replays the drawn prefix. Replay is exact regardless of which
// methods consumed the stream: the underlying generator advances exactly one
// step per source call, whether that call was Int63 or Uint64.
//
// Rand deliberately exposes only the methods the simulator uses (Intn,
// Uint64, Float64) rather than embedding *rand.Rand: any new consumption
// path must come through the counted source, so a snapshot can never
// silently miss draws. rand.Rand's only cached internal state (readVal /
// readPos) is touched exclusively by Read, which this package does not
// expose.
package rng

import "math/rand"

// countingSource counts how many times the underlying generator advanced.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (s *countingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.draws = 0
}

// Rand is a deterministic, snapshot-capable random stream.
type Rand struct {
	cs   countingSource
	r    *rand.Rand
	seed int64
}

// New returns a Rand producing the identical value sequence to
// rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	r := &Rand{seed: seed}
	r.cs.src = rand.NewSource(seed).(rand.Source64)
	r.r = rand.New(&r.cs)
	return r
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, like
// rand.Intn.
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.r.Uint64() }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// State identifies a stream position: the seed plus how many times the
// underlying generator has advanced.
type State struct {
	Seed  int64
	Draws uint64
}

// State captures the stream position.
func (r *Rand) State() State { return State{Seed: r.seed, Draws: r.cs.draws} }

// Restore rewinds (or fast-forwards) the stream to st by reseeding and
// replaying the drawn prefix. Replaying with Uint64 is exact for any mix of
// source calls: rand.NewSource's generator advances one step per call
// whichever accessor was used. The cost is linear in st.Draws (~10⁷
// draws/ms), negligible against the simulation that produced them.
func (r *Rand) Restore(st State) {
	r.cs.Seed(st.Seed)
	r.seed = st.Seed
	for i := uint64(0); i < st.Draws; i++ {
		r.cs.src.Uint64()
	}
	r.cs.draws = st.Draws
}
