// Package addr defines the address spaces of a DeACT-style fabric-attached
// memory (FAM) system and the arithmetic the rest of the simulator performs
// on them.
//
// Three distinct address spaces exist (§II-C, §III-A of the paper):
//
//   - Virtual addresses (VAddr): what applications issue on a node.
//   - Node-physical addresses (NPAddr): the imaginary flat physical space
//     each node's unmodified OS manages. It is split into two NUMA-like
//     zones — low addresses back onto the node's local DRAM, high addresses
//     back onto FAM through a second translation level.
//   - FAM addresses (FAddr): real physical addresses inside the shared
//     fabric-attached memory pool. The top of the pool is carved out for
//     access-control metadata (ACM) and shared-page bitmaps (Figure 5).
//
// Using separate Go types for the three spaces turns a whole class of
// translation bugs into compile errors.
package addr

import "fmt"

// Fundamental granularities, shared across the whole simulator.
const (
	PageShift  = 12
	PageSize   = 1 << PageShift // 4KB pages, as in the paper
	BlockShift = 6
	BlockSize  = 1 << BlockShift // 64B memory access granularity

	// HugeShift is the shift of the 1GB regions used for shared pages and
	// their access-control bitmaps (Figure 5).
	HugeShift = 30
	HugeSize  = 1 << HugeShift

	// PagesPerHuge is the number of 4KB pages in one 1GB shared region.
	PagesPerHuge = HugeSize / PageSize
)

// VAddr is a virtual address issued by an application on a node.
type VAddr uint64

// NPAddr is a node-physical address in the node's imaginary flat space.
type NPAddr uint64

// FAddr is a real FAM (fabric-attached memory) physical address.
type FAddr uint64

// Page numbers for each space. Keeping these distinct too avoids mixing a
// node page number into FAM metadata indexing (the bug class DeACT's V flag
// exists to manage in hardware).
type (
	// VPage is a virtual page number.
	VPage uint64
	// NPPage is a node-physical page number.
	NPPage uint64
	// FPage is a FAM-physical page number.
	FPage uint64
)

// Page extracts the virtual page number.
func (a VAddr) Page() VPage { return VPage(a >> PageShift) }

// Offset returns the intra-page offset of a virtual address.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Block returns the 64B-aligned block address containing a.
func (a VAddr) Block() VAddr { return a &^ (BlockSize - 1) }

// Page extracts the node-physical page number.
func (a NPAddr) Page() NPPage { return NPPage(a >> PageShift) }

// Offset returns the intra-page offset of a node-physical address.
func (a NPAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Block returns the 64B-aligned block address containing a.
func (a NPAddr) Block() NPAddr { return a &^ (BlockSize - 1) }

// Page extracts the FAM page number.
func (a FAddr) Page() FPage { return FPage(a >> PageShift) }

// Offset returns the intra-page offset of a FAM address.
func (a FAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Block returns the 64B-aligned block address containing a.
func (a FAddr) Block() FAddr { return a &^ (BlockSize - 1) }

// Addr returns the first address of the page.
func (p VPage) Addr() VAddr { return VAddr(p) << PageShift }

// Addr returns the first address of the page.
func (p NPPage) Addr() NPAddr { return NPAddr(p) << PageShift }

// Addr returns the first address of the page.
func (p FPage) Addr() FAddr { return FAddr(p) << PageShift }

// Huge returns the index of the 1GB region containing the page.
func (p FPage) Huge() uint64 { return uint64(p) / PagesPerHuge }

// Layout describes the node-physical address map of one node plus the FAM
// pool layout shared by all nodes.
type Layout struct {
	// DRAMSize is the capacity of the node's local DRAM in bytes. The
	// node-physical range [0, DRAMSize) is the local zone.
	DRAMSize uint64
	// FAMZoneSize is the size of the node-physical high zone that the OS
	// believes is ordinary (remote) memory; accesses there need system-level
	// translation to FAM addresses.
	FAMZoneSize uint64
	// FAMSize is the total capacity of the shared FAM pool in bytes,
	// including the metadata carve-out at the top.
	FAMSize uint64
	// ACMBits is the per-4KB-page access-control metadata width in bits
	// (8, 16 or 32; Figure 14 sweeps this).
	ACMBits uint
}

// Validate checks internal consistency.
func (l Layout) Validate() error {
	switch {
	case l.DRAMSize == 0 || l.DRAMSize%PageSize != 0:
		return fmt.Errorf("addr: DRAMSize %d must be a positive multiple of the page size", l.DRAMSize)
	case l.FAMZoneSize == 0 || l.FAMZoneSize%PageSize != 0:
		return fmt.Errorf("addr: FAMZoneSize %d must be a positive multiple of the page size", l.FAMZoneSize)
	case l.FAMSize == 0 || l.FAMSize%PageSize != 0:
		return fmt.Errorf("addr: FAMSize %d must be a positive multiple of the page size", l.FAMSize)
	case l.ACMBits != 8 && l.ACMBits != 16 && l.ACMBits != 32:
		return fmt.Errorf("addr: ACMBits %d must be 8, 16 or 32", l.ACMBits)
	case l.MetadataBytes() >= l.FAMSize:
		return fmt.Errorf("addr: metadata (%d bytes) swallows the whole FAM pool (%d bytes)", l.MetadataBytes(), l.FAMSize)
	}
	return nil
}

// InLocalZone reports whether a node-physical address is backed by the
// node's local DRAM.
func (l Layout) InLocalZone(a NPAddr) bool { return uint64(a) < l.DRAMSize }

// InFAMZone reports whether a node-physical address falls in the high zone
// that needs system-level translation.
func (l Layout) InFAMZone(a NPAddr) bool {
	return uint64(a) >= l.DRAMSize && uint64(a) < l.DRAMSize+l.FAMZoneSize
}

// LocalPages returns the number of node-physical pages in the local zone.
func (l Layout) LocalPages() uint64 { return l.DRAMSize / PageSize }

// FAMZonePages returns the number of node-physical pages in the FAM zone.
func (l Layout) FAMZonePages() uint64 { return l.FAMZoneSize / PageSize }

// FAMZoneBase returns the first node-physical address of the FAM zone.
func (l Layout) FAMZoneBase() NPAddr { return NPAddr(l.DRAMSize) }

// TotalFAMPages returns the number of 4KB pages in the whole FAM pool,
// metadata included.
func (l Layout) TotalFAMPages() uint64 { return l.FAMSize / PageSize }

// ACMEntriesPerBlock returns how many per-page metadata entries fit in one
// 64B block (32 for 16-bit ACM — the "very high spatial locality" the paper
// leans on in §III-A).
func (l Layout) ACMEntriesPerBlock() uint64 { return (BlockSize * 8) / uint64(l.ACMBits) }

// MetadataBytes returns the size of the metadata carve-out: per-page ACM
// entries plus one 8KB bitmap (64K bits) per 1GB region (Figure 5: the
// bitmap exists for every 1GB region "regardless of being used as a shared
// page or not").
func (l Layout) MetadataBytes() uint64 {
	acm := l.TotalFAMPages() * uint64(l.ACMBits) / 8
	regions := (l.FAMSize + HugeSize - 1) / HugeSize
	bitmaps := regions * (PagesPerHuge / 8) // 64K bits = 8KB per region
	return acm + bitmaps
}

// UsableFAMPages returns the number of FAM pages available for allocation
// after the metadata carve-out.
func (l Layout) UsableFAMPages() uint64 {
	meta := (l.MetadataBytes() + PageSize - 1) / PageSize
	return l.TotalFAMPages() - meta
}

// MetadataBase returns the FAM address where the metadata region starts
// (MTAdd in §III-A). Metadata is placed at the top of the pool.
func (l Layout) MetadataBase() FAddr {
	return FAddr(l.UsableFAMPages() * PageSize)
}

// ACMBlockAddr returns the FAM address of the 64B block holding the ACM
// entry for the given FAM page: MTAdd + (page / entriesPerBlock) * 64.
func (l Layout) ACMBlockAddr(p FPage) FAddr {
	return l.MetadataBase() + FAddr(uint64(p)/l.ACMEntriesPerBlock()*BlockSize)
}

// BitmapBase returns the FAM address where the shared-page bitmaps start,
// immediately after the per-page ACM entries.
func (l Layout) BitmapBase() FAddr {
	return l.MetadataBase() + FAddr(l.TotalFAMPages()*uint64(l.ACMBits)/8)
}

// BitmapBlockAddr returns the FAM address of the 64B bitmap block holding
// the sharing bit for (1GB region, nodeID). Each region has a 64K-bit bitmap
// (one bit per node); node n's bit lives in byte n/8 of the region's bitmap.
func (l Layout) BitmapBlockAddr(huge uint64, nodeID uint16) FAddr {
	regionBase := l.BitmapBase() + FAddr(huge*(PagesPerHuge/8))
	return (regionBase + FAddr(nodeID/8)).Block()
}

// NPFromVP composes a node-physical address from a page and an offset.
func NPFromVP(p NPPage, offset uint64) NPAddr { return p.Addr() + NPAddr(offset) }

// FFromNP composes a FAM address from a FAM page and the offset of the
// original node-physical address (translation swaps pages, keeps offsets).
func FFromNP(p FPage, offset uint64) FAddr { return p.Addr() + FAddr(offset) }
