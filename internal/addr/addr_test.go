package addr

import (
	"testing"
	"testing/quick"
)

func testLayout() Layout {
	return Layout{
		DRAMSize:    1 << 30, // 1GB
		FAMZoneSize: 4 << 30, // 4GB node window
		FAMSize:     16 << 30,
		ACMBits:     16,
	}
}

func TestLayoutValidate(t *testing.T) {
	if err := testLayout().Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	bad := []Layout{
		{DRAMSize: 0, FAMZoneSize: PageSize, FAMSize: PageSize, ACMBits: 16},
		{DRAMSize: PageSize + 1, FAMZoneSize: PageSize, FAMSize: PageSize, ACMBits: 16},
		{DRAMSize: PageSize, FAMZoneSize: 0, FAMSize: PageSize, ACMBits: 16},
		{DRAMSize: PageSize, FAMZoneSize: PageSize, FAMSize: 0, ACMBits: 16},
		{DRAMSize: PageSize, FAMZoneSize: PageSize, FAMSize: 1 << 30, ACMBits: 7},
		// Metadata swallows pool: tiny FAM with bitmap overhead.
		{DRAMSize: PageSize, FAMZoneSize: PageSize, FAMSize: 2 * PageSize, ACMBits: 32},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layout %d accepted", i)
		}
	}
}

func TestZoneClassification(t *testing.T) {
	l := testLayout()
	if !l.InLocalZone(0) || !l.InLocalZone(NPAddr(l.DRAMSize-1)) {
		t.Fatal("local zone misclassified")
	}
	if l.InLocalZone(NPAddr(l.DRAMSize)) {
		t.Fatal("first FAM-zone address classified local")
	}
	if !l.InFAMZone(NPAddr(l.DRAMSize)) {
		t.Fatal("FAM zone base misclassified")
	}
	if l.InFAMZone(NPAddr(l.DRAMSize + l.FAMZoneSize)) {
		t.Fatal("address past FAM zone classified in-zone")
	}
	if l.FAMZoneBase() != NPAddr(l.DRAMSize) {
		t.Fatal("FAMZoneBase wrong")
	}
}

func TestPageArithmetic(t *testing.T) {
	v := VAddr(0x12345678)
	if v.Page() != VPage(0x12345) {
		t.Fatalf("VAddr.Page = %#x", v.Page())
	}
	if v.Offset() != 0x678 {
		t.Fatalf("VAddr.Offset = %#x", v.Offset())
	}
	if v.Block() != 0x12345640 {
		t.Fatalf("VAddr.Block = %#x", v.Block())
	}
	if VPage(5).Addr() != VAddr(5*PageSize) {
		t.Fatal("VPage.Addr wrong")
	}
	np := NPAddr(0xABCDE0)
	if np.Page().Addr()+NPAddr(np.Offset()) != np {
		t.Fatal("NP page/offset decomposition not invertible")
	}
	f := FAddr(0xFEDCBA)
	if f.Page().Addr()+FAddr(f.Offset()) != f {
		t.Fatal("F page/offset decomposition not invertible")
	}
	if FPage(PagesPerHuge+1).Huge() != 1 {
		t.Fatal("FPage.Huge wrong")
	}
}

func TestACMGeometry16(t *testing.T) {
	l := testLayout()
	if got := l.ACMEntriesPerBlock(); got != 32 {
		t.Fatalf("entries per block = %d, want 32 (paper: one 64B block covers 32 pages)", got)
	}
	base := l.MetadataBase()
	// Pages 0..31 share one block; page 32 starts the next.
	if l.ACMBlockAddr(0) != base || l.ACMBlockAddr(31) != base {
		t.Fatal("pages 0-31 must share the first ACM block")
	}
	if l.ACMBlockAddr(32) != base+BlockSize {
		t.Fatal("page 32 must use the second ACM block")
	}
}

func TestACMGeometryWidths(t *testing.T) {
	for _, tc := range []struct {
		bits uint
		want uint64
	}{{8, 64}, {16, 32}, {32, 16}} {
		l := testLayout()
		l.ACMBits = tc.bits
		if got := l.ACMEntriesPerBlock(); got != tc.want {
			t.Errorf("ACMBits=%d: entries per block = %d, want %d", tc.bits, got, tc.want)
		}
	}
}

func TestMetadataOverheadIsSmall(t *testing.T) {
	l := testLayout()
	// Paper: bitmap overhead "less than 0.0001%"; total metadata for 16-bit
	// ACM is ~0.05% of the pool. Sanity-check it stays well under 1%.
	if frac := float64(l.MetadataBytes()) / float64(l.FAMSize); frac > 0.01 {
		t.Fatalf("metadata fraction %.4f too large", frac)
	}
	if l.UsableFAMPages() >= l.TotalFAMPages() {
		t.Fatal("metadata carve-out missing")
	}
	if l.MetadataBase() != FAddr(l.UsableFAMPages()*PageSize) {
		t.Fatal("metadata base inconsistent with usable pages")
	}
}

func TestBitmapAddressing(t *testing.T) {
	l := testLayout()
	bb := l.BitmapBase()
	if bb <= l.MetadataBase() {
		t.Fatal("bitmap region must follow ACM entries")
	}
	// Region 0, nodes 0..511 fall in the first 64B block (8 bits/byte).
	if l.BitmapBlockAddr(0, 0) != bb.Block() {
		t.Fatal("bitmap block for region 0 node 0 wrong")
	}
	if l.BitmapBlockAddr(0, 511) != bb.Block() {
		t.Fatal("nodes 0-511 must share one bitmap block")
	}
	if l.BitmapBlockAddr(0, 512) != bb.Block()+BlockSize {
		t.Fatal("node 512 must land in the next bitmap block")
	}
	// Different regions use different bitmap areas 8KB apart.
	if l.BitmapBlockAddr(1, 0)-l.BitmapBlockAddr(0, 0) != PagesPerHuge/8 {
		t.Fatal("regions' bitmaps must be 8KB apart")
	}
}

func TestComposeHelpers(t *testing.T) {
	if NPFromVP(3, 17) != NPAddr(3*PageSize+17) {
		t.Fatal("NPFromVP wrong")
	}
	if FFromNP(7, 4095) != FAddr(7*PageSize+4095) {
		t.Fatal("FFromNP wrong")
	}
}

// Property: block addresses are always 64B aligned and within the metadata
// region for in-range pages.
func TestACMBlockAlignedQuick(t *testing.T) {
	l := testLayout()
	f := func(p uint32) bool {
		page := FPage(uint64(p) % l.UsableFAMPages())
		a := l.ACMBlockAddr(page)
		return uint64(a)%BlockSize == 0 && a >= l.MetadataBase() && uint64(a) < l.FAMSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: page/offset decomposition round-trips for all three spaces.
func TestDecompositionQuick(t *testing.T) {
	f := func(x uint64) bool {
		v, n, fa := VAddr(x), NPAddr(x), FAddr(x)
		return v.Page().Addr()+VAddr(v.Offset()) == v &&
			n.Page().Addr()+NPAddr(n.Offset()) == n &&
			fa.Page().Addr()+FAddr(fa.Offset()) == fa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
