package cli

import (
	"flag"
	"io"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"deact/internal/experiments"
)

// TestFlagGroupsParse pins the shared flag surface: names, defaults and
// the Options assembly, including opening the result store for -store.
func TestFlagGroupsParse(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	sc := ScaleFlags(fs, 80_000, 60_000, 2)
	rn := RunnerFlags(fs)
	pf := ProfilingFlags(fs, "the run")
	dir := filepath.Join(t.TempDir(), "store")
	if err := fs.Parse([]string{
		"-warmup", "1000", "-measure", "2000", "-cores", "3", "-seed", "7",
		"-benchmarks", "mcf,sp", "-parallelism", "2", "-share-warmup",
		"-store", dir,
	}); err != nil {
		t.Fatal(err)
	}
	opts, err := rn.Options(sc)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Warmup != 1000 || opts.Measure != 2000 || opts.Cores != 3 || opts.Seed != 7 {
		t.Fatalf("scale flags not threaded into Options: %+v", opts)
	}
	if !reflect.DeepEqual(opts.Benchmarks, []string{"mcf", "sp"}) {
		t.Fatalf("benchmarks = %v", opts.Benchmarks)
	}
	if opts.Parallelism != 2 || !opts.ShareWarmup {
		t.Fatalf("runner flags not threaded into Options: %+v", opts)
	}
	if opts.Store == nil {
		t.Fatal("-store did not open a result store")
	}
	if pf.CPU != "" || pf.Mem != "" {
		t.Fatalf("profiling flags defaulted on: %+v", pf)
	}
}

// TestFlagGroupDefaults: per-command defaults land, the store stays off,
// and the benchmark subset stays nil (meaning "all").
func TestFlagGroupDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sc := ScaleFlags(fs, 60_000, 50_000, 4)
	rn := RunnerFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts, err := rn.Options(sc)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Warmup != 60_000 || opts.Measure != 50_000 || opts.Cores != 4 || opts.Seed != 42 {
		t.Fatalf("defaults not honored: %+v", opts)
	}
	if opts.Benchmarks != nil || opts.Store != nil {
		t.Fatalf("optional knobs defaulted on: %+v", opts)
	}
}

// TestProgressPrinterCached: the progress line surfaces a running cached
// tally once any run is served from the store, and stays silent before.
func TestProgressPrinterCached(t *testing.T) {
	var buf strings.Builder
	p := ProgressPrinter(&buf)

	p(experiments.RunInfo{Completed: 1, Submitted: 3})
	if got := buf.String(); strings.Contains(got, "cached") {
		t.Fatalf("cached tally shown before any cached run: %q", got)
	}
	if !strings.Contains(buf.String(), "runs: 1/3 completed") {
		t.Fatalf("progress line missing: %q", buf.String())
	}

	buf.Reset()
	p(experiments.RunInfo{Completed: 2, Submitted: 3, Cached: true})
	if got := buf.String(); !strings.Contains(got, "runs: 2/3 completed (1 cached)") {
		t.Fatalf("cached tally missing: %q", got)
	}

	// The tally is cumulative and persists on later uncached updates.
	buf.Reset()
	p(experiments.RunInfo{Completed: 3, Submitted: 3})
	if got := buf.String(); !strings.Contains(got, "runs: 3/3 completed (1 cached)") {
		t.Fatalf("cumulative tally wrong: %q", got)
	}
}
