// Package cli holds the flag groups the deact commands share, so every
// binary documents the same units for the same knob and picks up new
// shared flags (like -store) in one place instead of four.
//
// Three groups cover the surface:
//
//   - Scale: -warmup/-measure/-cores/-seed — how much work each simulated
//     core does and how wide a node is. Defaults differ per command (a
//     sweep trades steady-state sharpness for wall time; a single run does
//     not), so they are parameters, not constants.
//   - Runner: -benchmarks/-parallelism/-share-warmup/-store — the knobs of
//     commands built on experiments.Runner. Options assembles an
//     experiments.Options from both groups, opening the persistent result
//     store when -store names a directory.
//   - Profiling: -cpuprofile/-memprofile — pprof output, wrapping
//     internal/profiling so commands keep the start/flush discipline.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"deact/internal/experiments"
	"deact/internal/profiling"
	"deact/internal/resultstore"
)

// Scale holds the simulation-scale flags. Warmup and Measure are
// instruction counts per core — not cycles.
type Scale struct {
	Warmup  uint64
	Measure uint64
	Cores   int
	Seed    int64
}

// ScaleFlags registers -warmup/-measure/-cores/-seed on fs with the
// calling command's defaults. Names, units and help text are shared; only
// the defaults differ between commands.
func ScaleFlags(fs *flag.FlagSet, warmup, measure uint64, cores int) *Scale {
	s := &Scale{}
	fs.Uint64Var(&s.Warmup, "warmup", warmup, "warmup instructions per core (instruction count, not cycles)")
	fs.Uint64Var(&s.Measure, "measure", measure, "measured instructions per core (instruction count, not cycles)")
	fs.IntVar(&s.Cores, "cores", cores, "cores per node")
	fs.Int64Var(&s.Seed, "seed", 42, "random seed (drives placement, workloads and replacement; fixed seed = byte-identical output)")
	return s
}

// Runner holds the worker-pool and caching flags of commands built on
// experiments.Runner.
type Runner struct {
	Benchmarks  string
	Parallelism int
	ShareWarmup bool
	StoreDir    string
}

// RunnerFlags registers -benchmarks/-parallelism/-share-warmup/-store.
func RunnerFlags(fs *flag.FlagSet) *Runner {
	r := &Runner{}
	fs.StringVar(&r.Benchmarks, "benchmarks", "", "comma-separated benchmark subset (default: all 14)")
	fs.IntVar(&r.Parallelism, "parallelism", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
	fs.BoolVar(&r.ShareWarmup, "share-warmup", false, "simulate shared warmup prefixes once and fork the measured phases (byte-identical output)")
	fs.StringVar(&r.StoreDir, "store", "", "persistent result-store directory: warm entries are served without simulating, cold runs are persisted for the next invocation (empty = no store)")
	return r
}

// Options assembles an experiments.Options from the parsed flag values,
// opening the persistent result store when -store was given. Output is
// byte-identical with and without a store; only the work changes.
func (r *Runner) Options(s *Scale) (experiments.Options, error) {
	opts := experiments.Options{Warmup: s.Warmup, Measure: s.Measure, Cores: s.Cores, Seed: s.Seed,
		Parallelism: r.Parallelism, ShareWarmup: r.ShareWarmup}
	if r.Benchmarks != "" {
		opts.Benchmarks = strings.Split(r.Benchmarks, ",")
	}
	if r.StoreDir != "" {
		st, err := resultstore.Open(r.StoreDir, 0)
		if err != nil {
			return experiments.Options{}, err
		}
		opts.Store = st
	}
	return opts, nil
}

// Profiling holds the pprof output flags.
type Profiling struct {
	CPU string
	Mem string
}

// ProfilingFlags registers -cpuprofile/-memprofile on fs. what names the
// workload in the help text ("the full sweep", "the full report run").
func ProfilingFlags(fs *flag.FlagSet, what string) *Profiling {
	p := &Profiling{}
	fs.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile of "+what+" to this file")
	fs.StringVar(&p.Mem, "memprofile", "", "write an allocation profile taken after "+what+" to this file")
	return p
}

// Start begins CPU profiling if -cpuprofile was given; call the returned
// stop in a defer so the profile flushes on error paths too.
func (p *Profiling) Start(cmd string) (stop func(), err error) {
	return profiling.StartCPU(cmd, p.CPU)
}

// WriteHeap writes the allocation profile if -memprofile was given; call
// it after the workload finished.
func (p *Profiling) WriteHeap() error { return profiling.WriteHeap(p.Mem) }

// ProgressPrinter returns an OnRunDone hook that keeps one live
// completed/total line on w (the runner serializes calls). Runs answered
// from the persistent result store count like any completed run and are
// additionally surfaced as a running "(N cached)" tally, so a warm
// sweep's line shows where its speed came from.
func ProgressPrinter(w io.Writer) func(experiments.RunInfo) {
	cached := 0
	return func(ri experiments.RunInfo) {
		if ri.Cached {
			cached++
		}
		fmt.Fprintf(w, "\rruns: %d/%d completed", ri.Completed, ri.Submitted)
		if cached > 0 {
			fmt.Fprintf(w, " (%d cached)", cached)
		}
		if ri.Completed == ri.Submitted {
			fmt.Fprint(w, " ")
		}
	}
}
