package memdev

import "deact/internal/sim"

// State is a Device's mutable state for core.System.Snapshot: the port and
// per-bank reservation calendars, the rotating prune position (it influences
// which calendars are pruned when, so restoring it keeps a forked run's
// calendar evolution identical to a cold run's), and the access counters.
type State struct {
	port  sim.ServerState
	banks []sim.ServerState
	scan  int
	tick  uint64

	reads  uint64
	writes uint64
}

// CaptureState captures the device into st, reusing st's storage.
func (d *Device) CaptureState(st *State) {
	d.port.CaptureState(&st.port)
	if cap(st.banks) < len(d.banks) {
		st.banks = make([]sim.ServerState, len(d.banks))
	}
	st.banks = st.banks[:len(d.banks)]
	for i := range d.banks {
		d.banks[i].CaptureState(&st.banks[i])
	}
	st.scan, st.tick = d.scan, d.tick
	st.reads, st.writes = d.reads, d.writes
}

// RestoreState rewinds the device to st. The device must have the same bank
// count st was captured from (guaranteed when both come from the same
// Config).
func (d *Device) RestoreState(st *State) {
	if len(st.banks) != len(d.banks) {
		panic("memdev: RestoreState bank count mismatch")
	}
	d.port.RestoreState(&st.port)
	for i := range d.banks {
		d.banks[i].RestoreState(&st.banks[i])
	}
	d.scan, d.tick = st.scan, st.tick
	d.reads, d.writes = st.reads, st.writes
}
