package memdev

import (
	"testing"

	"deact/internal/sim"
)

// benchClock is a manually advanced sim.Clock standing in for the engine.
type benchClock struct{ now sim.Time }

func (c *benchClock) Now() sim.Time { return c.now }

// BenchmarkMemdevAccess measures one Device.Access on the batched bank
// model. "inorder" is the tail fast path (arrivals march forward, as event
// dispatch order produces); "outoforder" jitters arrivals backward inside a
// trailing window, forcing gap-calendar bookings the way overlapping access
// chains do. allocs/op must be zero in steady state: the guard that device
// calendars stay allocation-free and O(1) amortized.
func BenchmarkMemdevAccess(b *testing.B) {
	run := func(b *testing.B, jitter sim.Time) {
		d := New(Config{Name: "bench", Banks: 32,
			ReadLatency: sim.NS(60), WriteLatency: sim.NS(150), PortLatency: sim.NS(2)})
		clk := &benchClock{}
		d.Bind(clk)
		b.ReportAllocs()
		b.ResetTimer()
		var now sim.Time
		for i := 0; i < b.N; i++ {
			now += 100
			// The engine clock trails the arrival front by the in-flight
			// window, as real event dispatch does.
			if now > 2*sim.Microsecond {
				clk.now = now - 2*sim.Microsecond
			}
			arrive := now
			if jitter != 0 {
				// Deterministic backward jitter within the window the
				// engine's in-flight chains produce.
				back := (sim.Time(i) * 7919) % jitter
				if back < arrive {
					arrive -= back
				}
			}
			d.Access(arrive, uint64(i)*64, i%4 == 0)
		}
	}
	b.Run("inorder", func(b *testing.B) { run(b, 0) })
	b.Run("outoforder", func(b *testing.B) { run(b, 2000) })
}
