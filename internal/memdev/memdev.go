// Package memdev models the timing of the two memory devices in a DeACT
// system (Table II of the paper):
//
//   - the node-local DRAM (1GB default), and
//   - the fabric-attached NVM pool (16GB, read 60ns / write 150ns, 32 banks,
//     128 outstanding requests).
//
// A device is a set of banks, each a serially occupied sim.Server, fronted
// by a controller port that serializes request issue. Requests are mapped to
// banks by block-interleaving, the common DRAM/NVM layout.
//
// The contention model is batched: each bank (and the port) keeps a tail
// time served in O(1) for in-order arrivals and a small gap calendar for
// out-of-order ones. Bind attaches the engine clock, which retires gaps
// entirely in the past; on top of each bank pruning itself on access, a
// rotating scan hint prunes one further bank per request so rarely touched
// banks' calendars are retired between their own accesses.
package memdev

import (
	"fmt"

	"deact/internal/sim"
)

// Config describes one memory device.
type Config struct {
	// Name is used in error and stats output.
	Name string
	// Banks is the number of independently occupied banks.
	Banks int
	// ReadLatency and WriteLatency are per-access bank service times.
	ReadLatency  sim.Time
	WriteLatency sim.Time
	// PortLatency is the controller front-door occupancy per request. It
	// bounds device throughput the way a limited outstanding-request window
	// does in the real controller.
	PortLatency sim.Time
	// InterleaveShift selects the address bits used for bank selection;
	// block interleaving (6) spreads consecutive 64B blocks across banks.
	InterleaveShift uint
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("memdev %s: banks must be positive", c.Name)
	case c.ReadLatency == 0 || c.WriteLatency == 0:
		return fmt.Errorf("memdev %s: latencies must be non-zero", c.Name)
	}
	return nil
}

// Device is a banked memory device.
type Device struct {
	cfg      Config
	clock    sim.Clock
	port     sim.Server
	banks    []sim.Server
	bankMask uint64 // len(banks)-1 when a power of two, else 0
	scan     int    // rotating prune hint over banks
	tick     uint64 // access counter driving the rotating prune

	reads  uint64
	writes uint64
}

// New builds a device from cfg. It panics on invalid configuration: device
// configs are produced by core.Config validation, so a bad one here is a
// programming error.
func New(cfg Config) *Device {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.InterleaveShift == 0 {
		cfg.InterleaveShift = 6
	}
	d := &Device{cfg: cfg, banks: make([]sim.Server, cfg.Banks)}
	if n := uint64(cfg.Banks); n&(n-1) == 0 {
		d.bankMask = n - 1
	}
	return d
}

// Bind attaches the engine clock to the port and every bank, enabling exact
// retirement of past calendar state (see sim.Clock).
func (d *Device) Bind(c sim.Clock) {
	d.clock = c
	d.port.Bind(c)
	for i := range d.banks {
		d.banks[i].Bind(c)
	}
}

// bankFor maps an address to a bank by block interleaving.
func (d *Device) bankFor(a uint64) *sim.Server {
	blk := a >> d.cfg.InterleaveShift
	if d.bankMask != 0 {
		return &d.banks[blk&d.bankMask]
	}
	return &d.banks[blk%uint64(len(d.banks))]
}

// Access reserves the controller port and the target bank for one 64B
// request arriving at now, and returns the completion time.
func (d *Device) Access(now sim.Time, a uint64, write bool) sim.Time {
	_, issued := d.port.Acquire(now, d.cfg.PortLatency)
	svc := d.cfg.ReadLatency
	if write {
		svc = d.cfg.WriteLatency
		d.writes++
	} else {
		d.reads++
	}
	_, done := d.bankFor(a).Acquire(issued, svc)
	if d.tick++; d.tick&15 == 0 && d.clock != nil {
		// Rotating scan hint: periodically retire one bank's past gaps, so
		// every bank's calendar is pruned at a fraction of the device's
		// access rate even if the bank itself is cold.
		d.scan++
		if d.scan >= len(d.banks) {
			d.scan = 0
		}
		d.banks[d.scan].Prune(d.clock.Now())
	}
	return done
}

// Reads returns the number of read accesses served.
func (d *Device) Reads() uint64 { return d.reads }

// Writes returns the number of write accesses served.
func (d *Device) Writes() uint64 { return d.writes }

// Accesses returns the total number of requests served.
func (d *Device) Accesses() uint64 { return d.reads + d.writes }

// BusyTime returns the aggregate bank busy time, for utilization reporting.
func (d *Device) BusyTime() sim.Time {
	var t sim.Time
	for i := range d.banks {
		t += d.banks[i].BusyTime()
	}
	return t
}

// Name returns the configured device name.
func (d *Device) Name() string { return d.cfg.Name }

// Banks returns the configured bank count.
func (d *Device) Banks() int { return len(d.banks) }
