package memdev

import (
	"testing"
	"testing/quick"

	"deact/internal/sim"
)

func nvmConfig() Config {
	return Config{
		Name:         "fam-nvm",
		Banks:        32,
		ReadLatency:  sim.NS(60),
		WriteLatency: sim.NS(150),
		PortLatency:  sim.NS(2),
	}
}

func TestValidate(t *testing.T) {
	if err := nvmConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, c := range []Config{
		{Name: "x", Banks: 0, ReadLatency: 1, WriteLatency: 1},
		{Name: "x", Banks: 1, ReadLatency: 0, WriteLatency: 1},
		{Name: "x", Banks: 1, ReadLatency: 1, WriteLatency: 0},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestReadWriteLatency(t *testing.T) {
	d := New(nvmConfig())
	done := d.Access(0, 0, false)
	if done != sim.NS(62) { // 2ns port + 60ns read
		t.Fatalf("read done = %v, want 62ns", done)
	}
	done = d.Access(sim.NS(1000), 64, true)
	if done != sim.NS(1152) { // port + 150ns write
		t.Fatalf("write done = %v, want 1152ns", done)
	}
	if d.Reads() != 1 || d.Writes() != 1 || d.Accesses() != 2 {
		t.Fatalf("counters wrong: r=%d w=%d", d.Reads(), d.Writes())
	}
}

func TestBankConflictSerializes(t *testing.T) {
	cfg := nvmConfig()
	cfg.PortLatency = 0
	d := New(cfg)
	// Same block → same bank → second read queues behind the first.
	d1 := d.Access(0, 0, false)
	d2 := d.Access(0, 0, false)
	if d2 != d1+sim.NS(60) {
		t.Fatalf("bank conflict not serialized: d1=%v d2=%v", d1, d2)
	}
	// Different blocks → different banks → both finish at the same time.
	d3 := d.Access(sim.NS(10000), 1<<6, false)
	d4 := d.Access(sim.NS(10000), 2<<6, false)
	if d3 != d4 {
		t.Fatalf("independent banks serialized: d3=%v d4=%v", d3, d4)
	}
}

func TestBlockInterleaving(t *testing.T) {
	cfg := nvmConfig()
	cfg.Banks = 4
	cfg.PortLatency = 0
	d := New(cfg)
	// Blocks 0..3 map to banks 0..3; block 4 wraps to bank 0.
	t0 := d.Access(0, 0, false)
	t4 := d.Access(0, 4<<6, false)
	if t4 != t0+sim.NS(60) {
		t.Fatalf("block 4 should conflict with block 0: t0=%v t4=%v", t0, t4)
	}
}

func TestPortBoundsThroughput(t *testing.T) {
	cfg := nvmConfig()
	cfg.PortLatency = sim.NS(10)
	d := New(cfg)
	// 8 simultaneous requests to 8 different banks: issue is serialized by
	// the 10ns port, so completions are staggered 10ns apart.
	var last sim.Time
	for i := 0; i < 8; i++ {
		done := d.Access(0, uint64(i)<<6, false)
		want := sim.NS(uint64(10*(i+1) + 60))
		if done != want {
			t.Fatalf("req %d done=%v want %v", i, done, want)
		}
		last = done
	}
	if last != sim.NS(140) {
		t.Fatalf("last completion %v, want 140ns", last)
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	d := New(nvmConfig())
	d.Access(0, 0, false)
	d.Access(0, 64, true)
	if d.BusyTime() != sim.NS(210) {
		t.Fatalf("busy = %v, want 210ns", d.BusyTime())
	}
	if d.Name() != "fam-nvm" || d.Banks() != 32 {
		t.Fatal("accessors wrong")
	}
}

// Property: completion time is never before arrival plus the minimum
// service, and counters match the number of calls.
func TestAccessMonotoneQuick(t *testing.T) {
	d := New(nvmConfig())
	var now sim.Time
	var n uint64
	f := func(gap uint16, a uint64, w bool) bool {
		now += sim.Time(gap)
		min := d.cfg.ReadLatency
		if w {
			min = d.cfg.WriteLatency
		}
		done := d.Access(now, a, w)
		n++
		return done >= now+min && d.Accesses() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
