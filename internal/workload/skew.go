// Skewed page selection without math.Pow in the reference hot loop.
//
// The skewed component of every profile maps a uniform draw u ∈ [0,1) to a
// page via page(u) = ⌊footprint · u^SkewExp⌋ (clamped to footprint-1). That
// map is a step function with at most `footprint` steps, so instead of
// evaluating math.Pow per reference we precompute, once per (footprint,
// SkewExp) pair, the exact float64 boundary at which each step begins, and
// answer queries with a binary search over the boundary array.
//
// The boundaries are found by bisection over the *bit patterns* of the
// candidate floats: non-negative float64s are ordered identically to their
// bit patterns, so bisecting on bits visits every representable value in
// [0,1] and converges to the exact smallest u with page(u) ≥ p — there is no
// epsilon, and the tabled path reproduces the pow path bit-for-bit (the
// equivalence is enforced by tests and by the byte-diffed golden report).
// Construction costs ~64 pow evaluations per boundary and the tables are
// shared globally, so a profile's table is built once per process.
package workload

import (
	"math"
	"sort"
	"sync"
)

// skewTableMaxPages bounds table construction: a profile with a footprint
// beyond this (none in the catalog; the largest is 14336 pages) falls back
// to the direct pow path rather than building a multi-megabyte table.
const skewTableMaxPages = 1 << 20

// skewedPagePow is the original direct evaluation: the page for draw u under
// (footprint, k) popularity skew. It remains the reference implementation —
// skewTable must agree with it on every representable u — and the fallback
// for untabled footprints.
func skewedPagePow(footprint uint64, k, u float64) uint64 {
	page := uint64(float64(footprint) * math.Pow(u, k))
	if page >= footprint {
		page = footprint - 1
	}
	return page
}

// skewTable answers page(u) queries for one (footprint, SkewExp) pair.
type skewTable struct {
	footprint uint64
	// bounds[i] is the exact smallest float64 u with
	// uint64(footprint·u^k) ≥ i+1. Pages unreachable by any u < 1 have no
	// entry (the array simply ends early).
	bounds []float64
}

// page returns the page for draw u, bit-identical to
// skewedPagePow(t.footprint, k, u).
func (t *skewTable) page(u float64) uint64 {
	// The number of boundaries ≤ u is exactly uint64(footprint·u^k): the
	// same value the direct formula computes, found by binary search
	// instead of pow.
	p := uint64(sort.Search(len(t.bounds), func(i int) bool { return t.bounds[i] > u }))
	if p >= t.footprint {
		p = t.footprint - 1
	}
	return p
}

type skewKey struct {
	footprint uint64
	k         float64
}

var (
	skewMu     sync.Mutex
	skewTables = map[skewKey]*skewTable{}
)

// skewTableFor returns the shared table for (footprint, k), building it on
// first use. It returns nil when the profile is uniform (k ≤ 1, where the
// generator uses an unbiased bounded draw instead) or the footprint exceeds
// the table bound.
func skewTableFor(footprint uint64, k float64) *skewTable {
	if k <= 1 || footprint == 0 || footprint > skewTableMaxPages {
		return nil
	}
	key := skewKey{footprint: footprint, k: k}
	skewMu.Lock()
	defer skewMu.Unlock()
	if t, ok := skewTables[key]; ok {
		return t
	}
	t := buildSkewTable(footprint, k)
	skewTables[key] = t
	return t
}

// buildSkewTable bisects out the step boundaries of u ↦ uint64(footprint·u^k).
func buildSkewTable(footprint uint64, k float64) *skewTable {
	fpf := float64(footprint)
	stepAt := func(bits uint64) uint64 {
		return uint64(fpf * math.Pow(math.Float64frombits(bits), k))
	}
	one := math.Float64bits(1.0)
	t := &skewTable{footprint: footprint, bounds: make([]float64, 0, footprint)}
	lo := uint64(0) // invariant: stepAt(lo) < p
	for p := uint64(1); p <= footprint; p++ {
		if stepAt(one) < p {
			break // p unreachable even at u = 1; so is everything after it
		}
		// Smallest bits b in (lo, one] with stepAt(b) ≥ p. The function is
		// monotone in u for k > 0, so boundaries are found in order and lo
		// carries over from the previous page.
		hi := one // invariant: stepAt(hi) ≥ p
		for lo+1 < hi {
			mid := lo + (hi-lo)/2
			if stepAt(mid) >= p {
				hi = mid
			} else {
				lo = mid
			}
		}
		if hi == one {
			break // only u = 1 itself reaches p, and Float64() never draws 1
		}
		t.bounds = append(t.bounds, math.Float64frombits(hi))
		lo = hi - 1 // stepAt(hi-1) < p ≤ stepAt(next boundary)
	}
	return t
}
