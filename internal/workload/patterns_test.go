package workload

import (
	"testing"

	"deact/internal/addr"
)

// patternProfile is a small but valid profile the pattern tests share.
func patternProfile(pattern string, degree int) Profile {
	return Profile{
		Name: "pat-test", Suite: "test", FootprintPages: 64,
		MemPer1000: 250, WriteProb: 0.2, StrideBlocks: 2,
		Pattern: pattern, PatternDegree: degree,
	}
}

// TestNewSourceDispatch: NewSource selects the generator the Pattern field
// names, including the skew default for "".
func TestNewSourceDispatch(t *testing.T) {
	cases := []struct {
		pattern string
		want    string
	}{
		{"", "*workload.Generator"},
		{PatternSkew, "*workload.Generator"},
		{PatternPointerChase, "*workload.pointerChase"},
		{PatternGraphFrontier, "*workload.graphFrontier"},
		{PatternStencil, "*workload.stencil"},
	}
	for _, c := range cases {
		src, err := NewSource(patternProfile(c.pattern, 0), 1)
		if err != nil {
			t.Fatalf("NewSource(%q): %v", c.pattern, err)
		}
		if got := typeName(src); got != c.want {
			t.Errorf("NewSource(%q) = %s, want %s", c.pattern, got, c.want)
		}
	}
	if _, err := NewSource(patternProfile("spiral", 0), 1); err == nil {
		t.Error("NewSource with unknown pattern: no error")
	}
}

func typeName(v interface{}) string {
	switch v.(type) {
	case *Generator:
		return "*workload.Generator"
	case *pointerChase:
		return "*workload.pointerChase"
	case *graphFrontier:
		return "*workload.graphFrontier"
	case *stencil:
		return "*workload.stencil"
	}
	return "?"
}

// TestPatternValidate: the new Profile fields reject bad values.
func TestPatternValidate(t *testing.T) {
	bad := patternProfile("spiral", 0)
	if err := bad.Validate(); err == nil {
		t.Error("unknown pattern validated")
	}
	bad = patternProfile(PatternStencil, -1)
	if err := bad.Validate(); err == nil {
		t.Error("negative degree validated")
	}
	bad = patternProfile(PatternStencil, maxPatternDegree+1)
	if err := bad.Validate(); err == nil {
		t.Error("oversized degree validated")
	}
	if err := patternProfile(PatternStencil, maxPatternDegree).Validate(); err != nil {
		t.Errorf("max degree rejected: %v", err)
	}
}

// TestPatternDeterminism: same (profile, seed) → identical streams;
// different seeds diverge. Also checks the shared Op invariants: addresses
// stay inside the footprint and every op carries a nonzero PC.
func TestPatternDeterminism(t *testing.T) {
	for _, pattern := range []string{PatternPointerChase, PatternGraphFrontier, PatternStencil} {
		p := patternProfile(pattern, 0)
		a, err := NewSource(p, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := NewSource(p, 7)
		c, _ := NewSource(p, 8)
		limit := vbase + addr.VAddr(p.FootprintPages*blocksPerPage*addr.BlockSize)
		diverged := false
		for i := 0; i < 2000; i++ {
			oa, ob, oc := a.Next(), b.Next(), c.Next()
			if oa != ob {
				t.Fatalf("%s op %d: same seed diverged: %+v vs %+v", pattern, i, oa, ob)
			}
			if oa != oc {
				diverged = true
			}
			if oa.Addr < vbase || oa.Addr >= limit {
				t.Fatalf("%s op %d: addr %#x outside footprint", pattern, i, oa.Addr)
			}
			if oa.PC == 0 {
				t.Fatalf("%s op %d: zero PC", pattern, i)
			}
		}
		if !diverged {
			t.Errorf("%s: seeds 7 and 8 produced identical streams", pattern)
		}
	}
}

// TestPatternStateRestore: capturing State mid-stream and restoring it into
// a freshly constructed source reproduces exactly the ops the original
// produces — the contract core.System.Snapshot forking depends on.
func TestPatternStateRestore(t *testing.T) {
	for _, pattern := range []string{PatternSkew, PatternPointerChase, PatternGraphFrontier, PatternStencil} {
		p := patternProfile(pattern, 3)
		orig, err := NewSource(p, 99)
		if err != nil {
			t.Fatal(err)
		}
		orig.SetTenant(5)
		for i := 0; i < 1234; i++ {
			orig.Next()
		}
		st := orig.State()

		fresh, _ := NewSource(p, 99)
		fresh.SetTenant(5)
		fresh.RestoreState(st)
		for i := 0; i < 777; i++ {
			want, got := orig.Next(), fresh.Next()
			if want != got {
				t.Fatalf("%s op %d after restore: %+v, want %+v", pattern, i, got, want)
			}
		}
	}
}

// TestPatternNextAllocs: steady-state generation allocates nothing, the
// same bar the skew Generator meets.
func TestPatternNextAllocs(t *testing.T) {
	for _, pattern := range []string{PatternPointerChase, PatternGraphFrontier, PatternStencil} {
		src, err := NewSource(patternProfile(pattern, 0), 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			src.Next()
		}
		if n := testing.AllocsPerRun(200, func() { src.Next() }); n != 0 {
			t.Errorf("%s: Next allocates %.1f per op, want 0", pattern, n)
		}
	}
}

// TestStencilWriteStream: only the last stencil stream writes, every op is
// non-blocking, and each stream keeps a stable distinct PC.
func TestStencilWriteStream(t *testing.T) {
	const deg = 4
	src, err := NewSource(patternProfile(PatternStencil, deg), 1)
	if err != nil {
		t.Fatal(err)
	}
	pcs := map[uint64]bool{}
	for i := 0; i < 4*deg; i++ {
		op := src.Next()
		if op.Blocking {
			t.Fatalf("op %d: stencil op blocking", i)
		}
		if want := i%deg == deg-1; op.Write != want {
			t.Fatalf("op %d: Write=%v, want %v", i, op.Write, want)
		}
		pcs[op.PC] = true
	}
	if len(pcs) != deg {
		t.Errorf("stencil used %d distinct PCs, want %d", len(pcs), deg)
	}
}

// TestCatalogIsolation: Catalog returns a copy — mutating it must not leak
// into the shared catalog that Get and Suites serve.
func TestCatalogIsolation(t *testing.T) {
	m := Catalog()
	if len(m) == 0 {
		t.Fatal("empty catalog")
	}
	mutated := m["mcf"]
	mutated.FootprintPages = 1
	m["mcf"] = mutated
	delete(m, "canl")
	m["bogus"] = Profile{Name: "bogus"}

	got, err := Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if got.FootprintPages == 1 {
		t.Error("mutating Catalog() result leaked into Get")
	}
	if _, err := Get("canl"); err != nil {
		t.Errorf("delete on Catalog() copy leaked: %v", err)
	}
	if _, err := Get("bogus"); err == nil {
		t.Error("insert on Catalog() copy leaked into Get")
	}
	if got2 := Catalog(); got2["mcf"].FootprintPages == 1 {
		t.Error("second Catalog() call observed first caller's mutation")
	}
}
