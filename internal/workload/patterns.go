// The v2 pattern generators: structured access models selected by
// Profile.Pattern. Unlike the probabilistic skew Generator, each imposes a
// specific algorithmic structure (linked traversal, frontier expansion,
// strided stencil) on top of a catalog profile's footprint, memory
// intensity and write mix — the workload axis the paper's synthetic
// calibration could not explore. All three share the Generator's
// contracts: deterministic per seed, zero allocations in Next, every RNG
// draw accounted so GeneratorState capture/restore is exact.
package workload

import (
	"fmt"
	"math/bits"

	"deact/internal/addr"
	"deact/internal/rng"
)

// patternBase carries the pieces every pattern generator shares: profile,
// RNG, tenant stamping and the derived block counts.
type patternBase struct {
	p        Profile
	rng      *rng.Rand
	fpBlocks uint64
	meanGap  int
	ops      uint64
	tenant   uint8
}

func newPatternBase(p Profile, seed int64) (patternBase, error) {
	if err := p.Validate(); err != nil {
		return patternBase{}, err
	}
	if p.StrideBlocks <= 0 {
		p.StrideBlocks = 1
	}
	return patternBase{
		p:        p,
		rng:      rng.New(seed),
		fpBlocks: p.FootprintPages * blocksPerPage,
		meanGap:  1000/p.MemPer1000 - 1,
	}, nil
}

// gap draws the compute gap with the same distribution (and draw count)
// as the skew Generator: mean 1000/MemPer1000 - 1, uniform jitter.
func (b *patternBase) gap() int {
	if b.meanGap > 0 {
		return b.rng.Intn(2*b.meanGap + 1)
	}
	return b.meanGap
}

func (b *patternBase) SetTenant(t uint8) { b.tenant = t }
func (b *patternBase) Tenant() uint8     { return b.tenant }

func (b *patternBase) op(block uint64, write, blocking bool, pc uint64, compute int) Op {
	return Op{
		Compute:  compute,
		Addr:     vbase + addr.VAddr(block*addr.BlockSize),
		Write:    write,
		Blocking: blocking,
		Tenant:   b.tenant,
		PC:       pc,
	}
}

// lcg advances the pointer-chain state; the full-period 64-bit LCG keeps
// successive chain nodes decorrelated without any RNG draws.
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }

// reduce maps a full-width random word onto [0, n) multiplicatively
// (Lemire reduction) — cheap, deterministic, bias ~n/2^64.
func reduce(x, n uint64) uint64 {
	hi, _ := bits.Mul64(x, n)
	return hi
}

// pointerChase walks a deterministic pointer chain over the footprint.
// Every chase step is one blocking load of the next node followed by
// degree-1 non-blocking payload loads from the node's adjacent blocks
// ("fat" list nodes). The degree dials memory-level parallelism: degree 1
// is a pure dependent chain (nothing to overlap, the worst case for FAM
// translation latency), larger degrees give the core overlap work per
// step. State: Aux is the chain value, Cursor the remaining payload count.
type pointerChase struct {
	patternBase
	degree  int
	cur     uint64 // chain state; current node block = reduce(cur, fpBlocks)
	payload uint64 // payload loads remaining before the next chase step
}

func newPointerChase(p Profile, seed int64) (*pointerChase, error) {
	b, err := newPatternBase(p, seed)
	if err != nil {
		return nil, err
	}
	deg := p.PatternDegree
	if deg == 0 {
		deg = 4
	}
	// A nonzero start keeps the LCG out of its zero-adjacent prefix.
	return &pointerChase{
		patternBase: b,
		degree:      deg,
		cur:         uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D,
	}, nil
}

func (g *pointerChase) Next() Op {
	g.ops++
	compute := g.gap()
	write := g.rng.Float64() < g.p.WriteProb
	if g.payload > 0 {
		// Payload loads sweep the blocks after the node head, so each
		// visited node produces a short sequential burst.
		off := uint64(g.degree) - g.payload
		g.payload--
		block := (reduce(g.cur, g.fpBlocks) + off) % g.fpBlocks
		return g.op(block, write, false, pcChaseBody, compute)
	}
	g.cur = lcg(g.cur)
	g.payload = uint64(g.degree) - 1
	return g.op(reduce(g.cur, g.fpBlocks), write, true, pcChasePtr, compute)
}

func (g *pointerChase) State() GeneratorState {
	return GeneratorState{RNG: g.rng.State(), Cursor: g.payload, Ops: g.ops, Aux: g.cur}
}

func (g *pointerChase) RestoreState(st GeneratorState) {
	g.rng.Restore(st.RNG)
	g.payload = st.Cursor
	g.ops = st.Ops
	g.cur = st.Aux
}

// graphFrontier models frontier expansion over a CSR-like layout: the low
// eighth of the footprint holds the vertex array, scanned sequentially
// with a blocking fetch per vertex; each vertex then visits a burst of
// edge-region blocks (uniform in [1, 2·degree-1], mean ≈ degree) chosen
// with a quadratic skew toward low vertex IDs, the hub structure of
// power-law graphs. State: Cursor is the vertex index, Aux the remaining
// edge visits for the current vertex.
type graphFrontier struct {
	patternBase
	degree       int
	vertexBlocks uint64
	edgeBlocks   uint64
	vertex       uint64
	rem          uint64
}

func newGraphFrontier(p Profile, seed int64) (*graphFrontier, error) {
	b, err := newPatternBase(p, seed)
	if err != nil {
		return nil, err
	}
	deg := p.PatternDegree
	if deg == 0 {
		deg = 8
	}
	vb := b.fpBlocks / 8
	if vb == 0 {
		vb = 1
	}
	eb := b.fpBlocks - vb
	if eb == 0 {
		return nil, fmt.Errorf("workload %s: footprint too small for graph-frontier", p.Name)
	}
	return &graphFrontier{patternBase: b, degree: deg, vertexBlocks: vb, edgeBlocks: eb}, nil
}

func (g *graphFrontier) Next() Op {
	g.ops++
	compute := g.gap()
	if g.rem == 0 {
		// Next vertex: sequential scan of the vertex array, blocking
		// (out-degree and edge offsets depend on the fetched vertex).
		g.vertex++
		if g.vertex >= g.vertexBlocks {
			g.vertex = 0
		}
		g.rem = 1 + uint64n(g.rng, uint64(2*g.degree-1))
		return g.op(g.vertex, false, true, pcVertex, compute)
	}
	g.rem--
	// Edge visit: u² skews toward low edge blocks (hubs).
	u := g.rng.Float64()
	eb := uint64(float64(g.edgeBlocks) * u * u)
	if eb >= g.edgeBlocks {
		eb = g.edgeBlocks - 1
	}
	write := g.rng.Float64() < g.p.WriteProb
	return g.op(g.vertexBlocks+eb, write, false, pcEdge, compute)
}

func (g *graphFrontier) State() GeneratorState {
	return GeneratorState{RNG: g.rng.State(), Cursor: g.vertex, Ops: g.ops, Aux: g.rem}
}

func (g *graphFrontier) RestoreState(st GeneratorState) {
	g.rng.Restore(st.RNG)
	g.vertex = st.Cursor
	g.ops = st.Ops
	g.rem = st.Aux
}

// stencil interleaves degree strided streams at fixed offsets across the
// footprint — the classic structured-grid sweep (read degree-1 input
// planes, write one output plane). Fully deterministic addresses, never
// blocking, one jitter draw per op; each stream has its own PC, so this
// is the pattern a PC-keyed stream prefetcher should cover almost
// completely. State: Cursor is the sweep base position, Aux the
// round-robin stream index.
type stencil struct {
	patternBase
	streams uint64
	rowOff  uint64 // block offset between consecutive streams
	stride  uint64
	base    uint64
	sidx    uint64
}

func newStencil(p Profile, seed int64) (*stencil, error) {
	b, err := newPatternBase(p, seed)
	if err != nil {
		return nil, err
	}
	deg := uint64(p.PatternDegree)
	if deg == 0 {
		deg = 4
	}
	if deg > b.fpBlocks {
		deg = b.fpBlocks
	}
	return &stencil{
		patternBase: b,
		streams:     deg,
		rowOff:      b.fpBlocks / deg,
		stride:      uint64(b.p.StrideBlocks),
	}, nil
}

func (g *stencil) Next() Op {
	g.ops++
	compute := g.gap()
	s := g.sidx
	block := (g.base + s*g.rowOff) % g.fpBlocks
	g.sidx++
	if g.sidx == g.streams {
		g.sidx = 0
		g.base = (g.base + g.stride) % g.fpBlocks
	}
	// The last stream is the output plane: deterministic writes, no draw.
	return g.op(block, s == g.streams-1, false, pcStencilBase+16*s, compute)
}

func (g *stencil) State() GeneratorState {
	return GeneratorState{RNG: g.rng.State(), Cursor: g.base, Ops: g.ops, Aux: g.sidx}
}

func (g *stencil) RestoreState(st GeneratorState) {
	g.rng.Restore(st.RNG)
	g.base = st.Cursor
	g.ops = st.Ops
	g.sidx = st.Aux
}
