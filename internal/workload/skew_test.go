package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestSkewTableMatchesPow checks the tabled inversion against the direct pow
// formula: exhaustively at every step boundary and its representable
// neighbors (where the two could first disagree), and on a large randomized
// sample, for every skewed catalog profile.
func TestSkewTableMatchesPow(t *testing.T) {
	for _, name := range Names() {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.SkewExp <= 1 {
			continue
		}
		tab := skewTableFor(p.FootprintPages, p.SkewExp)
		if tab == nil {
			t.Fatalf("%s: no table for footprint=%d k=%g", name, p.FootprintPages, p.SkewExp)
		}
		check := func(u float64) {
			if u < 0 || u >= 1 {
				return
			}
			got, want := tab.page(u), skewedPagePow(p.FootprintPages, p.SkewExp, u)
			if got != want {
				t.Fatalf("%s: page(%v) = %d, pow path = %d", name, u, got, want)
			}
		}
		for i, b := range tab.bounds {
			// The boundary is the exact first float reaching step i+1.
			prev := math.Float64frombits(math.Float64bits(b) - 1)
			if bp := skewedPagePow(p.FootprintPages, p.SkewExp, b); bp < uint64(i+1) {
				t.Fatalf("%s: bound %d = %v maps to %d", name, i, b, bp)
			}
			if pp := skewedPagePow(p.FootprintPages, p.SkewExp, prev); pp >= uint64(i+1) {
				t.Fatalf("%s: pred of bound %d = %v maps to %d", name, i, prev, pp)
			}
			check(b)
			check(prev)
		}
		r := rand.New(rand.NewSource(int64(len(name))))
		for i := 0; i < 200_000; i++ {
			check(r.Float64())
		}
		check(0)
		check(math.Float64frombits(math.Float64bits(1.0) - 1))
	}
}

// TestSkewTableUniformIsNil checks uniform profiles skip the table.
func TestSkewTableUniformIsNil(t *testing.T) {
	if tab := skewTableFor(1024, 1.0); tab != nil {
		t.Fatalf("k=1 built a table")
	}
	if tab := skewTableFor(0, 2.0); tab != nil {
		t.Fatalf("footprint=0 built a table")
	}
	if tab := skewTableFor(skewTableMaxPages+1, 2.0); tab != nil {
		t.Fatalf("oversized footprint built a table")
	}
}

// TestGeneratorStateRoundTrip checks that restoring a captured generator
// state reproduces the native stream exactly.
func TestGeneratorStateRoundTrip(t *testing.T) {
	p, err := Get("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5_000; i++ {
		g.Next()
	}
	st := g.State()
	var want []Op
	for i := 0; i < 2_000; i++ {
		want = append(want, g.Next())
	}
	fresh, err := NewGenerator(p, 999) // different seed: Restore must override it
	if err != nil {
		t.Fatal(err)
	}
	fresh.RestoreState(st)
	for i, w := range want {
		if got := fresh.Next(); got != w {
			t.Fatalf("op %d: got %+v want %+v", i, got, w)
		}
	}
}
