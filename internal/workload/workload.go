// Package workload provides synthetic memory-reference generators standing
// in for the paper's benchmark binaries (Table III: SPEC 2006, PARSEC,
// Intel GAP, Mantevo and NAS programs traced under SST).
//
// We cannot replay the authors' traces, so each benchmark is modeled by the
// access-pattern characteristics that the paper's figures actually depend
// on:
//
//   - footprint (how many distinct pages are touched — drives TLB, FAM
//     translation cache and STU cache pressure),
//   - page-level locality (sequential/strided streaming vs. uniform random
//     vs. pointer chasing — drives every hit rate in Figures 9–11),
//   - cache-level miss intensity (MPKI, Table III — drives how much FAM
//     traffic exists at all), and
//   - dependence structure (pointer chases block the core; streaming
//     overlaps — drives how much latency the core can hide).
//
// The generators are deterministic per seed: every draw comes from one
// per-generator seeded RNG, and generation allocates nothing in steady
// state, so a core's instruction stream is a pure function of (benchmark,
// seed). ARCHITECTURE.md records where this substitution for the paper's
// traces sits in the overall pipeline and why it preserves the evaluated
// behaviour.
package workload

import (
	"fmt"
	"sort"
	"sync"

	"deact/internal/addr"
	"deact/internal/rng"
)

// Op is one generated instruction window: Compute non-memory instructions
// followed by one memory reference.
type Op struct {
	// Compute is the number of non-memory instructions preceding the
	// reference.
	Compute int
	// Addr is the virtual address referenced.
	Addr addr.VAddr
	// Write marks stores.
	Write bool
	// Blocking marks dependent loads the core cannot overlap (pointer
	// chasing); streaming loads are overlapped up to the MLP window.
	Blocking bool
	// Tenant identifies the tenant this reference belongs to. It is stamped
	// by the generator (SetTenant) and carried unchanged through cpu.Core
	// into node.Node, where latency is recorded per tenant. 0 in
	// single-tenant runs.
	Tenant uint8
	// PC identifies the static generation site that produced this
	// reference, standing in for the program counter of the load/store
	// instruction. Each generator stamps a distinct constant per branch of
	// its pattern (hot/seq/chase, per-stream, …), so the node's PC-keyed
	// stream prefetcher sees the same stable keys a real instruction
	// stream would provide. Stamping consumes no RNG draws. 0 means
	// "no PC" and is never trained on.
	PC uint64
}

// Source is a reference-stream producer a cpu.Core can drive: the skew
// Generator, the pattern generators of this package, and trace.Replay all
// implement it. Next must be deterministic given the source's construction
// parameters and allocation-free in steady state. SetTenant is
// configuration, not stream state (see Generator.SetTenant). State and
// RestoreState capture and rewind the stream position for
// core.System.Snapshot; a source restored into st must reproduce exactly
// the ops a source that reached st natively would produce.
type Source interface {
	Next() Op
	SetTenant(t uint8)
	Tenant() uint8
	State() GeneratorState
	RestoreState(st GeneratorState)
}

// Profile characterizes one benchmark.
type Profile struct {
	// Name is the short name used throughout the paper's figures.
	Name string
	// Suite is the benchmark suite (Table III).
	Suite string
	// PaperMPKI is the misses-per-kilo-instruction the paper reports
	// (Table III); used for calibration reporting, not enforced.
	PaperMPKI float64
	// ATSensitive records the paper's observation of whether the benchmark
	// suffers heavily from indirection in I-FAM (§V-C: canl, sssp, ccsv,
	// cactus, mcf… vs. the insensitive bc, lu, mg, sp).
	ATSensitive bool

	// FootprintPages is the virtual working set in 4KB pages.
	FootprintPages uint64
	// HotPages is a small hot region absorbing HotProb of references
	// (models cache-resident structures).
	HotPages uint64
	// HotProb is the probability a reference goes to the hot region.
	HotProb float64
	// SeqProb is the probability a reference continues a sequential scan.
	SeqProb float64
	// ChaseProb is the probability of a blocking pointer-chase reference.
	ChaseProb float64
	// WriteProb is the store fraction.
	WriteProb float64
	// MemPer1000 is memory references per 1000 instructions.
	MemPer1000 int
	// StrideBlocks is the scan stride in 64B blocks.
	StrideBlocks int
	// SkewExp shapes page popularity for the random and chase components:
	// a page is chosen as footprint·u^SkewExp for uniform u, so values >1
	// concentrate accesses on low page numbers (temporal locality real
	// programs exhibit); 0 or 1 means uniform.
	SkewExp float64

	// Pattern selects the generator model implementing this profile.
	// "" (or PatternSkew) is the default probabilistic skew model;
	// PatternPointerChase, PatternGraphFrontier and PatternStencil select
	// the v2 structured generators, which reuse the profile's footprint,
	// memory intensity, write fraction and stride but impose their own
	// access structure. NewSource dispatches on this field.
	Pattern string
	// PatternDegree is the selected pattern's parallelism dial: payload
	// blocks per node for pointer-chase, mean out-degree for
	// graph-frontier, concurrent streams for stencil. 0 uses the
	// pattern's default; ignored by the skew model.
	PatternDegree int
}

// Pattern names accepted in Profile.Pattern (and core.Config.Pattern).
const (
	// PatternSkew is the default probabilistic model; equivalent to "".
	PatternSkew = "skew"
	// PatternPointerChase walks a deterministic pointer chain: each node
	// visit is a blocking load followed by PatternDegree-1 sequential
	// payload blocks ("fat" list nodes), so the degree dials how much
	// latency the core can overlap per chase step.
	PatternPointerChase = "pointer-chase"
	// PatternGraphFrontier scans a vertex region sequentially (blocking
	// vertex fetch) and visits a skewed burst of edge-region blocks per
	// vertex; PatternDegree is the mean out-degree.
	PatternGraphFrontier = "graph-frontier"
	// PatternStencil interleaves PatternDegree strided streams at fixed
	// offsets (the last stream writes), the most prefetch-friendly
	// pattern in the catalog.
	PatternStencil = "stencil"
)

// Patterns returns the valid non-empty Pattern names.
func Patterns() []string {
	return []string{PatternSkew, PatternPointerChase, PatternGraphFrontier, PatternStencil}
}

// ValidPattern reports whether s names a known pattern ("" included).
func ValidPattern(s string) bool {
	switch s {
	case "", PatternSkew, PatternPointerChase, PatternGraphFrontier, PatternStencil:
		return true
	}
	return false
}

// Validate checks profile consistency.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: empty name")
	case p.FootprintPages == 0:
		return fmt.Errorf("workload %s: zero footprint", p.Name)
	case p.MemPer1000 <= 0 || p.MemPer1000 > 1000:
		return fmt.Errorf("workload %s: MemPer1000 %d out of (0,1000]", p.Name, p.MemPer1000)
	case p.HotProb < 0 || p.SeqProb < 0 || p.ChaseProb < 0 || p.HotProb+p.SeqProb+p.ChaseProb > 1:
		return fmt.Errorf("workload %s: component probabilities invalid", p.Name)
	case p.WriteProb < 0 || p.WriteProb > 1:
		return fmt.Errorf("workload %s: WriteProb %f invalid", p.Name, p.WriteProb)
	case p.HotProb > 0 && p.HotPages == 0:
		return fmt.Errorf("workload %s: HotProb without HotPages", p.Name)
	case !ValidPattern(p.Pattern):
		return fmt.Errorf("workload %s: unknown pattern %q (have %v)", p.Name, p.Pattern, Patterns())
	case p.PatternDegree < 0 || p.PatternDegree > maxPatternDegree:
		return fmt.Errorf("workload %s: PatternDegree %d out of [0,%d]", p.Name, p.PatternDegree, maxPatternDegree)
	}
	return nil
}

// maxPatternDegree bounds PatternDegree; it keeps the per-stream PC space
// of the stencil pattern dense and the per-vertex edge bursts sane.
const maxPatternDegree = 256

// vbase is the virtual base address of every generated working set.
const vbase addr.VAddr = 0x10_0000_0000

// blocksPerPage is the number of 64B blocks in a 4KB page.
const blocksPerPage = addr.PageSize / addr.BlockSize

// Generator produces the reference stream for one core.
type Generator struct {
	p      Profile
	rng    *rng.Rand
	cursor uint64 // sequential scan position in blocks
	ops    uint64
	tenant uint8 // stamped onto every Op; set once at construction time

	// Derived counts, precomputed so Next stays off the division/multiply
	// path: the working set and hot region in 64B blocks, and the mean
	// compute gap.
	fpBlocks  uint64
	hotBlocks uint64
	meanGap   int

	// skew inverts the popularity map u ↦ ⌊footprint·u^SkewExp⌋ by binary
	// search over precomputed boundaries, replacing the per-reference
	// math.Pow call. nil when the profile is uniform (or the footprint is
	// too large to table); skewedBlock then falls back to the direct
	// formula. Both paths produce bit-identical pages for the same draw.
	skew *skewTable
}

// NewGenerator builds a deterministic generator for profile p. Each core
// should use a distinct seed so the cores do not ride in lockstep.
func NewGenerator(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.StrideBlocks <= 0 {
		p.StrideBlocks = 1
	}
	return &Generator{
		p:         p,
		rng:       rng.New(seed),
		fpBlocks:  p.FootprintPages * blocksPerPage,
		hotBlocks: p.HotPages * blocksPerPage,
		meanGap:   1000/p.MemPer1000 - 1,
		skew:      skewTableFor(p.FootprintPages, p.SkewExp),
	}, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.p }

// SetTenant sets the tenant ID stamped onto every generated Op. It is
// configuration, not stream state: it consumes no RNG draws, so a tagged
// generator produces the identical reference stream as an untagged one,
// and it is not part of GeneratorState (a restored generator keeps the
// tenant it was constructed with).
func (g *Generator) SetTenant(t uint8) { g.tenant = t }

// Tenant returns the tenant ID this generator stamps onto its ops.
func (g *Generator) Tenant() uint8 { return g.tenant }

// uint64n returns a uniform value in [0, n) without modulo bias. Powers of
// two take one masked draw; other bounds reject the (at most n-1 values
// of the) biased tail, so the expected cost is still one draw.
func (g *Generator) uint64n(n uint64) uint64 { return uint64n(g.rng, n) }

// uint64n is the shared unbiased bounded draw used by every generator in
// this package; the algorithm (and therefore the draw sequence) is the
// pre-v2 Generator.uint64n unchanged.
func uint64n(r *rng.Rand, n uint64) uint64 {
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	limit := ^uint64(0) - ^uint64(0)%n // largest multiple of n ≤ 2^64
	for {
		if v := r.Uint64(); v < limit {
			return v % n
		}
	}
}

// skewedBlock picks a page under the profile's popularity skew, then a
// uniform block inside it. Each component costs exactly one RNG draw on
// the page (plus one on the block): the skewed path consumes a Float64,
// the uniform path an unbiased bounded Uint64.
func (g *Generator) skewedBlock() uint64 {
	var page uint64
	switch {
	case g.skew != nil:
		page = g.skew.page(g.rng.Float64())
	case g.p.SkewExp > 1:
		page = skewedPagePow(g.p.FootprintPages, g.p.SkewExp, g.rng.Float64())
	default:
		page = g.uint64n(g.p.FootprintPages)
	}
	return page*blocksPerPage + g.uint64n(blocksPerPage)
}

// Generation-site PC constants. Each static branch that can emit a memory
// reference gets its own value (16 bytes apart, like instructions in a
// small loop body), so the prefetcher's PC-indexed table separates the
// patterns the way it would separate real load instructions. Stamping is
// pure: no RNG draws, so tagged streams are draw-identical to PR-8 ones.
const (
	pcBase        uint64 = 0x0040_0000
	pcSkewHot            = pcBase + 0x10
	pcSkewSeq            = pcBase + 0x20
	pcSkewChase          = pcBase + 0x30
	pcSkewRand           = pcBase + 0x40
	pcChasePtr           = pcBase + 0x100
	pcChaseBody          = pcBase + 0x110
	pcVertex             = pcBase + 0x200
	pcEdge               = pcBase + 0x210
	pcStencilBase        = pcBase + 0x1000 // + 16·stream
)

// Next produces the next instruction window.
func (g *Generator) Next() Op {
	g.ops++
	// Compute gap: mean 1000/MemPer1000 - 1, geometric-ish jitter.
	compute := g.meanGap
	if compute > 0 {
		compute = g.rng.Intn(2*g.meanGap + 1)
	}

	var block uint64
	blocking := false
	pc := pcSkewRand
	r := g.rng.Float64()
	switch {
	case r < g.p.HotProb:
		block = g.uint64n(g.hotBlocks)
		pc = pcSkewHot
	case r < g.p.HotProb+g.p.SeqProb:
		g.cursor = (g.cursor + uint64(g.p.StrideBlocks)) % g.fpBlocks
		block = g.cursor
		pc = pcSkewSeq
	case r < g.p.HotProb+g.p.SeqProb+g.p.ChaseProb:
		block = g.skewedBlock()
		blocking = true
		pc = pcSkewChase
	default:
		block = g.skewedBlock()
	}

	return Op{
		Compute:  compute,
		Addr:     vbase + addr.VAddr(block*addr.BlockSize),
		Write:    g.rng.Float64() < g.p.WriteProb,
		Blocking: blocking,
		Tenant:   g.tenant,
		PC:       pc,
	}
}

// GeneratorState is the mutable state of a Source at a point in its
// stream, captured for core.System.Snapshot. Everything else in a source
// (profile, derived counts, the shared skew table, trace bytes) is
// immutable after construction. The skew Generator uses RNG+Cursor+Ops;
// the pattern generators and trace replay additionally store up to two
// source-specific scalars in Aux/Aux2 (chain value, stream index,
// delta-decoder context, …) and leave unused fields zero.
type GeneratorState struct {
	RNG    rng.State
	Cursor uint64
	Ops    uint64
	Aux    uint64
	Aux2   uint64
}

// State captures the generator's stream position.
func (g *Generator) State() GeneratorState {
	return GeneratorState{RNG: g.rng.State(), Cursor: g.cursor, Ops: g.ops}
}

// RestoreState rewinds the generator to st. The generator then reproduces
// exactly the ops a generator that reached st natively would produce.
func (g *Generator) RestoreState(st GeneratorState) {
	g.rng.Restore(st.RNG)
	g.cursor = st.Cursor
	g.ops = st.Ops
}

// NewSource builds the reference-stream source for profile p, dispatching
// on p.Pattern: the default skew Generator for "", or one of the v2
// pattern generators. Each core should use a distinct seed.
func NewSource(p Profile, seed int64) (Source, error) {
	switch p.Pattern {
	case "", PatternSkew:
		return NewGenerator(p, seed)
	case PatternPointerChase:
		return newPointerChase(p, seed)
	case PatternGraphFrontier:
		return newGraphFrontier(p, seed)
	case PatternStencil:
		return newStencil(p, seed)
	default:
		return nil, fmt.Errorf("workload: unknown pattern %q (have %v)", p.Pattern, Patterns())
	}
}

// Catalog returns the benchmark suite of Table III (plus lu, which appears
// in the figures), keyed by short name.
//
// Footprints are scaled the same way the paper scales its memory sizes
// (§IV footnote 3: average application footprint 309MB against 1GB DRAM +
// 16GB FAM); we scale the footprints and the whole device-capacity ladder
// together (~4×) so a run of a few hundred thousand
// instructions exercises the same pressure ratios. Absolute MPKI therefore
// runs higher than Table III (smaller caches thrash sooner); the ordering
// and the AT-sensitivity split are what the figures depend on.
//
// The underlying table is built once; every call returns a fresh copy, so
// callers can mutate their map (or the profiles in it) without corrupting
// later calls.
func Catalog() map[string]Profile {
	base := catalog()
	m := make(map[string]Profile, len(base))
	for name, p := range base {
		m[name] = p
	}
	return m
}

// catalog memoizes the profile table; Profile values are copied out by
// Catalog, so the shared map is never reachable by callers.
var catalog = sync.OnceValue(func() map[string]Profile {
	ps := []Profile{
		// SPEC 2006 —————————————————————————————————————————————
		{Name: "mcf", Suite: "SPEC 2006", PaperMPKI: 73, ATSensitive: true,
			FootprintPages: 6144, HotPages: 64, HotProb: 0.30, SeqProb: 0.10,
			ChaseProb: 0.35, WriteProb: 0.25, MemPer1000: 330, StrideBlocks: 1, SkewExp: 2.5},
		{Name: "cactus", Suite: "SPEC 2006", PaperMPKI: 60, ATSensitive: true,
			FootprintPages: 10240, HotPages: 32, HotProb: 0.20, SeqProb: 0.25,
			ChaseProb: 0.15, WriteProb: 0.35, MemPer1000: 300, StrideBlocks: 67, SkewExp: 1.3},
		{Name: "astar", Suite: "SPEC 2006", PaperMPKI: 9, ATSensitive: false,
			FootprintPages: 1024, HotPages: 128, HotProb: 0.62, SeqProb: 0.18,
			ChaseProb: 0.10, WriteProb: 0.20, MemPer1000: 280, StrideBlocks: 1, SkewExp: 3.0},
		// PARSEC ————————————————————————————————————————————————
		{Name: "frqm", Suite: "PARSEC", PaperMPKI: 16, ATSensitive: false,
			FootprintPages: 2048, HotPages: 256, HotProb: 0.55, SeqProb: 0.20,
			ChaseProb: 0.08, WriteProb: 0.30, MemPer1000: 300, StrideBlocks: 3, SkewExp: 3.0},
		{Name: "canl", Suite: "PARSEC", PaperMPKI: 57, ATSensitive: true,
			FootprintPages: 12288, HotPages: 32, HotProb: 0.12, SeqProb: 0.05,
			ChaseProb: 0.45, WriteProb: 0.30, MemPer1000: 330, StrideBlocks: 1, SkewExp: 2.0},
		// Intel GAP —————————————————————————————————————————————
		{Name: "bc", Suite: "GAP", PaperMPKI: 113, ATSensitive: false,
			FootprintPages: 3072, HotPages: 96, HotProb: 0.25, SeqProb: 0.58,
			ChaseProb: 0.05, WriteProb: 0.15, MemPer1000: 360, StrideBlocks: 1, SkewExp: 2.5},
		{Name: "cc", Suite: "GAP", PaperMPKI: 56, ATSensitive: true,
			FootprintPages: 4096, HotPages: 64, HotProb: 0.28, SeqProb: 0.25,
			ChaseProb: 0.22, WriteProb: 0.20, MemPer1000: 330, StrideBlocks: 1, SkewExp: 2.5},
		{Name: "ccsv", Suite: "GAP", PaperMPKI: 130, ATSensitive: true,
			FootprintPages: 7168, HotPages: 32, HotProb: 0.10, SeqProb: 0.15,
			ChaseProb: 0.40, WriteProb: 0.25, MemPer1000: 360, StrideBlocks: 1, SkewExp: 1.8},
		{Name: "sssp", Suite: "GAP", PaperMPKI: 144, ATSensitive: true,
			FootprintPages: 14336, HotPages: 32, HotProb: 0.08, SeqProb: 0.07,
			ChaseProb: 0.50, WriteProb: 0.25, MemPer1000: 380, StrideBlocks: 1, SkewExp: 1.8},
		// Mantevo ———————————————————————————————————————————————
		{Name: "pf", Suite: "Mantevo", PaperMPKI: 41, ATSensitive: true,
			FootprintPages: 4096, HotPages: 64, HotProb: 0.30, SeqProb: 0.35,
			ChaseProb: 0.12, WriteProb: 0.30, MemPer1000: 320, StrideBlocks: 5, SkewExp: 2.5},
		// NAS ———————————————————————————————————————————————————
		{Name: "dc", Suite: "NAS", PaperMPKI: 49, ATSensitive: true,
			FootprintPages: 8192, HotPages: 64, HotProb: 0.25, SeqProb: 0.20,
			ChaseProb: 0.25, WriteProb: 0.35, MemPer1000: 310, StrideBlocks: 1, SkewExp: 2.2},
		{Name: "lu", Suite: "NAS", PaperMPKI: 30, ATSensitive: false,
			FootprintPages: 1536, HotPages: 192, HotProb: 0.35, SeqProb: 0.55,
			ChaseProb: 0.02, WriteProb: 0.40, MemPer1000: 320, StrideBlocks: 1, SkewExp: 3.0},
		{Name: "mg", Suite: "NAS", PaperMPKI: 99, ATSensitive: false,
			FootprintPages: 2560, HotPages: 96, HotProb: 0.18, SeqProb: 0.72,
			ChaseProb: 0.02, WriteProb: 0.35, MemPer1000: 360, StrideBlocks: 1, SkewExp: 2.5},
		{Name: "sp", Suite: "NAS", PaperMPKI: 141, ATSensitive: false,
			FootprintPages: 2304, HotPages: 64, HotProb: 0.12, SeqProb: 0.80,
			ChaseProb: 0.01, WriteProb: 0.40, MemPer1000: 380, StrideBlocks: 1, SkewExp: 2.5},
	}
	m := make(map[string]Profile, len(ps))
	for _, p := range ps {
		m[p.Name] = p
	}
	return m
})

// Names returns the benchmark names in the paper's figure order.
func Names() []string {
	return []string{"mcf", "cactus", "astar", "frqm", "canl", "bc", "cc", "ccsv", "sssp", "pf", "dc", "lu", "mg", "sp"}
}

// Get returns a catalog profile by name.
func Get(name string) (Profile, error) {
	p, ok := catalog()[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
	}
	return p, nil
}

// Suites returns the suite → members mapping used for the sensitivity
// geomeans of §V-D (sorted for determinism).
func Suites() map[string][]string {
	m := map[string][]string{}
	for name, p := range catalog() {
		m[p.Suite] = append(m[p.Suite], name)
	}
	for s := range m {
		sort.Strings(m[s])
	}
	return m
}
