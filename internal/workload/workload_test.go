package workload

import (
	"math"
	"math/rand"
	"testing"

	"deact/internal/addr"
)

// TestSkewedDrawSequence replays the documented RNG draw sequence and
// asserts the generator consumes exactly those draws: one component draw,
// one page draw (Float64 when skewed, bounded Uint64 when uniform), one
// in-page block draw, one write draw. The original implementation burned a
// dead Uint64 page draw before the skewed path, which this test catches.
func TestSkewedDrawSequence(t *testing.T) {
	for _, skew := range []float64{0, 2.5} {
		p := Profile{
			Name: "seq-check", Suite: "test", FootprintPages: 300,
			ChaseProb: 1, MemPer1000: 1000, SkewExp: skew,
		}
		g, err := NewGenerator(p, 77)
		if err != nil {
			t.Fatal(err)
		}
		ref := rand.New(rand.NewSource(77))
		refUint64n := func(n uint64) uint64 {
			if n&(n-1) == 0 {
				return ref.Uint64() & (n - 1)
			}
			limit := ^uint64(0) - ^uint64(0)%n
			for {
				if v := ref.Uint64(); v < limit {
					return v % n
				}
			}
		}
		for i := 0; i < 500; i++ {
			op := g.Next()
			// MemPer1000=1000 → meanGap 0 → no compute draw.
			ref.Float64() // component pick (always chase here)
			var page uint64
			if skew > 1 {
				u := ref.Float64()
				page = uint64(float64(p.FootprintPages) * math.Pow(u, skew))
				if page >= p.FootprintPages {
					page = p.FootprintPages - 1
				}
			} else {
				page = refUint64n(p.FootprintPages)
			}
			block := page*blocksPerPage + refUint64n(blocksPerPage)
			ref.Float64() // write draw (WriteProb 0 → always false)
			want := vbase + addr.VAddr(block*addr.BlockSize)
			if op.Addr != want {
				t.Fatalf("skew=%v op %d: addr %#x, want %#x — RNG stream out of sync", skew, i, op.Addr, want)
			}
		}
	}
}

// TestUint64nUnbiasedRange: bounded draws stay in range and cover small
// bounds roughly uniformly (the modulo-bias regression guard).
func TestUint64nUnbiasedRange(t *testing.T) {
	p := Profile{Name: "u", Suite: "test", FootprintPages: 1, MemPer1000: 500}
	g, err := NewGenerator(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		v := g.uint64n(3)
		if v >= 3 {
			t.Fatalf("uint64n(3) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < n/3-n/20 || c > n/3+n/20 {
			t.Fatalf("uint64n(3) skewed: counts=%v (value %d)", counts, v)
		}
	}
	// Power-of-two bounds take the mask path; range check only.
	for i := 0; i < 1000; i++ {
		if v := g.uint64n(64); v >= 64 {
			t.Fatalf("uint64n(64) = %d out of range", v)
		}
	}
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d benchmarks, want 14", len(cat))
	}
	for _, name := range Names() {
		p, ok := cat[name]
		if !ok {
			t.Fatalf("figure-order benchmark %q missing from catalog", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
	if len(Names()) != len(cat) {
		t.Fatal("Names() and Catalog() disagree")
	}
}

func TestTableIIIMPKIRecorded(t *testing.T) {
	// Spot-check the Table III values the profiles are calibrated against.
	want := map[string]float64{"mcf": 73, "sssp": 144, "astar": 9, "mg": 99, "ccsv": 130}
	cat := Catalog()
	for name, mpki := range want {
		if cat[name].PaperMPKI != mpki {
			t.Errorf("%s PaperMPKI = %v, want %v", name, cat[name].PaperMPKI, mpki)
		}
	}
}

func TestATSensitivityClassification(t *testing.T) {
	// §V-C: bc, lu, mg, sp are the insensitive set.
	cat := Catalog()
	for _, name := range []string{"bc", "lu", "mg", "sp"} {
		if cat[name].ATSensitive {
			t.Errorf("%s must be AT-insensitive", name)
		}
	}
	for _, name := range []string{"canl", "sssp", "ccsv", "cactus"} {
		if !cat[name].ATSensitive {
			t.Errorf("%s must be AT-sensitive", name)
		}
	}
}

func TestGet(t *testing.T) {
	if _, err := Get("sssp"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSuites(t *testing.T) {
	s := Suites()
	if len(s["GAP"]) != 4 {
		t.Fatalf("GAP members = %v", s["GAP"])
	}
	if len(s["SPEC 2006"]) != 3 || len(s["PARSEC"]) != 2 || len(s["NAS"]) != 4 || len(s["Mantevo"]) != 1 {
		t.Fatalf("suite partition wrong: %v", s)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Catalog()["mcf"]
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.FootprintPages = 0 },
		func(p *Profile) { p.MemPer1000 = 0 },
		func(p *Profile) { p.MemPer1000 = 2000 },
		func(p *Profile) { p.HotProb = 0.9; p.SeqProb = 0.9 },
		func(p *Profile) { p.WriteProb = 1.5 },
		func(p *Profile) { p.HotProb = 0.1; p.HotPages = 0 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	p := Catalog()["mcf"]
	g1, _ := NewGenerator(p, 3)
	g2, _ := NewGenerator(p, 3)
	g3, _ := NewGenerator(p, 4)
	same, diff := true, false
	for i := 0; i < 200; i++ {
		o1, o2, o3 := g1.Next(), g2.Next(), g3.Next()
		if o1 != o2 {
			same = false
		}
		if o1 != o3 {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed diverged")
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorStaysInFootprint(t *testing.T) {
	for _, name := range Names() {
		p := Catalog()[name]
		g, err := NewGenerator(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		limit := addr.VAddr(0x10_0000_0000) + addr.VAddr(p.FootprintPages*addr.PageSize)
		for i := 0; i < 2000; i++ {
			op := g.Next()
			if op.Addr < 0x10_0000_0000 || op.Addr >= limit {
				t.Fatalf("%s op %d at %#x outside footprint", name, i, op.Addr)
			}
			if op.Compute < 0 {
				t.Fatalf("%s negative compute gap", name)
			}
		}
	}
}

func TestStreamingVsChasingCharacter(t *testing.T) {
	countPages := func(name string, n int) (distinct int, blocking int) {
		g, _ := NewGenerator(Catalog()[name], 9)
		pages := map[addr.VPage]bool{}
		for i := 0; i < n; i++ {
			op := g.Next()
			pages[op.Addr.Page()] = true
			if op.Blocking {
				blocking++
			}
		}
		return len(pages), blocking
	}
	// sssp (pointer-chasing graph) must touch far more distinct pages and
	// block far more often than sp (streaming stencil).
	ssspPages, ssspBlk := countPages("sssp", 20000)
	spPages, spBlk := countPages("sp", 20000)
	if ssspPages <= 2*spPages {
		t.Fatalf("page spread: sssp=%d sp=%d — graph chase must dominate", ssspPages, spPages)
	}
	if ssspBlk <= 10*spBlk {
		t.Fatalf("blocking: sssp=%d sp=%d", ssspBlk, spBlk)
	}
}

func TestWriteFractionRoughlyHonored(t *testing.T) {
	p := Catalog()["sp"] // WriteProb 0.40
	g, _ := NewGenerator(p, 2)
	writes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.35 || frac > 0.45 {
		t.Fatalf("write fraction %.3f, want ≈0.40", frac)
	}
}

func TestMemIntensityHonored(t *testing.T) {
	p := Catalog()["mcf"] // MemPer1000 = 330 → mean compute ≈ 2
	g, _ := NewGenerator(p, 7)
	total := 0
	const n = 10000
	for i := 0; i < n; i++ {
		total += g.Next().Compute + 1
	}
	perMem := float64(total) / n // instructions per memory op
	want := 1000.0 / 330.0
	if perMem < want*0.8 || perMem > want*1.2 {
		t.Fatalf("instructions per memory op %.2f, want ≈%.2f", perMem, want)
	}
}
