package workload

import (
	"testing"

	"deact/internal/addr"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Fatalf("catalog has %d benchmarks, want 14", len(cat))
	}
	for _, name := range Names() {
		p, ok := cat[name]
		if !ok {
			t.Fatalf("figure-order benchmark %q missing from catalog", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
	if len(Names()) != len(cat) {
		t.Fatal("Names() and Catalog() disagree")
	}
}

func TestTableIIIMPKIRecorded(t *testing.T) {
	// Spot-check the Table III values the profiles are calibrated against.
	want := map[string]float64{"mcf": 73, "sssp": 144, "astar": 9, "mg": 99, "ccsv": 130}
	cat := Catalog()
	for name, mpki := range want {
		if cat[name].PaperMPKI != mpki {
			t.Errorf("%s PaperMPKI = %v, want %v", name, cat[name].PaperMPKI, mpki)
		}
	}
}

func TestATSensitivityClassification(t *testing.T) {
	// §V-C: bc, lu, mg, sp are the insensitive set.
	cat := Catalog()
	for _, name := range []string{"bc", "lu", "mg", "sp"} {
		if cat[name].ATSensitive {
			t.Errorf("%s must be AT-insensitive", name)
		}
	}
	for _, name := range []string{"canl", "sssp", "ccsv", "cactus"} {
		if !cat[name].ATSensitive {
			t.Errorf("%s must be AT-sensitive", name)
		}
	}
}

func TestGet(t *testing.T) {
	if _, err := Get("sssp"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSuites(t *testing.T) {
	s := Suites()
	if len(s["GAP"]) != 4 {
		t.Fatalf("GAP members = %v", s["GAP"])
	}
	if len(s["SPEC 2006"]) != 3 || len(s["PARSEC"]) != 2 || len(s["NAS"]) != 4 || len(s["Mantevo"]) != 1 {
		t.Fatalf("suite partition wrong: %v", s)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Catalog()["mcf"]
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.FootprintPages = 0 },
		func(p *Profile) { p.MemPer1000 = 0 },
		func(p *Profile) { p.MemPer1000 = 2000 },
		func(p *Profile) { p.HotProb = 0.9; p.SeqProb = 0.9 },
		func(p *Profile) { p.WriteProb = 1.5 },
		func(p *Profile) { p.HotProb = 0.1; p.HotPages = 0 },
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	p := Catalog()["mcf"]
	g1, _ := NewGenerator(p, 3)
	g2, _ := NewGenerator(p, 3)
	g3, _ := NewGenerator(p, 4)
	same, diff := true, false
	for i := 0; i < 200; i++ {
		o1, o2, o3 := g1.Next(), g2.Next(), g3.Next()
		if o1 != o2 {
			same = false
		}
		if o1 != o3 {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed diverged")
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGeneratorStaysInFootprint(t *testing.T) {
	for _, name := range Names() {
		p := Catalog()[name]
		g, err := NewGenerator(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		limit := addr.VAddr(0x10_0000_0000) + addr.VAddr(p.FootprintPages*addr.PageSize)
		for i := 0; i < 2000; i++ {
			op := g.Next()
			if op.Addr < 0x10_0000_0000 || op.Addr >= limit {
				t.Fatalf("%s op %d at %#x outside footprint", name, i, op.Addr)
			}
			if op.Compute < 0 {
				t.Fatalf("%s negative compute gap", name)
			}
		}
	}
}

func TestStreamingVsChasingCharacter(t *testing.T) {
	countPages := func(name string, n int) (distinct int, blocking int) {
		g, _ := NewGenerator(Catalog()[name], 9)
		pages := map[addr.VPage]bool{}
		for i := 0; i < n; i++ {
			op := g.Next()
			pages[op.Addr.Page()] = true
			if op.Blocking {
				blocking++
			}
		}
		return len(pages), blocking
	}
	// sssp (pointer-chasing graph) must touch far more distinct pages and
	// block far more often than sp (streaming stencil).
	ssspPages, ssspBlk := countPages("sssp", 20000)
	spPages, spBlk := countPages("sp", 20000)
	if ssspPages <= 2*spPages {
		t.Fatalf("page spread: sssp=%d sp=%d — graph chase must dominate", ssspPages, spPages)
	}
	if ssspBlk <= 10*spBlk {
		t.Fatalf("blocking: sssp=%d sp=%d", ssspBlk, spBlk)
	}
}

func TestWriteFractionRoughlyHonored(t *testing.T) {
	p := Catalog()["sp"] // WriteProb 0.40
	g, _ := NewGenerator(p, 2)
	writes := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.35 || frac > 0.45 {
		t.Fatalf("write fraction %.3f, want ≈0.40", frac)
	}
}

func TestMemIntensityHonored(t *testing.T) {
	p := Catalog()["mcf"] // MemPer1000 = 330 → mean compute ≈ 2
	g, _ := NewGenerator(p, 7)
	total := 0
	const n = 10000
	for i := 0; i < n; i++ {
		total += g.Next().Compute + 1
	}
	perMem := float64(total) / n // instructions per memory op
	want := 1000.0 / 330.0
	if perMem < want*0.8 || perMem > want*1.2 {
		t.Fatalf("instructions per memory op %.2f, want ≈%.2f", perMem, want)
	}
}
