package arena

import "testing"

// sameBacking reports whether two slices share a backing array.
func sameBacking(a, b []uint64) bool {
	return cap(a) > 0 && cap(b) > 0 && &a[:cap(a)][cap(a)-1] == &b[:cap(b)][cap(b)-1]
}

func TestSliceReusesReleasedBuffer(t *testing.T) {
	a := New()
	first := Slice[uint64](a, "t", 100)
	for i := range first {
		first[i] = 7
	}
	Release(a, "t", first)
	second := Slice[uint64](a, "t", 80)
	if !sameBacking(first, second) {
		t.Fatal("released buffer was not reused for a fitting request")
	}
	if len(second) != 80 {
		t.Fatalf("len = %d, want 80", len(second))
	}
	for i, v := range second {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %d", i, v)
		}
	}
	// The buffer is out on loan: a second request must not alias it.
	third := Slice[uint64](a, "t", 80)
	if sameBacking(second, third) {
		t.Fatal("one buffer handed out twice")
	}
}

func TestSliceBestFit(t *testing.T) {
	a := New()
	small := Slice[uint64](a, "t", 10)
	big := Slice[uint64](a, "t", 1000)
	Release(a, "t", big)
	Release(a, "t", small)
	// A small request must take the small buffer, leaving the big one for
	// the big request — otherwise repeated same-geometry runs reallocate.
	gotSmall := Slice[uint64](a, "t", 10)
	gotBig := Slice[uint64](a, "t", 1000)
	if !sameBacking(gotSmall, small) || !sameBacking(gotBig, big) {
		t.Fatal("best-fit matching failed")
	}
}

func TestZeroLengthRequestTakesLargest(t *testing.T) {
	a := New()
	small := Slice[uint64](a, "t", 10)
	big := Slice[uint64](a, "t", 1000)
	Release(a, "t", small)
	Release(a, "t", big)
	// A grow-on-demand consumer (len 0, then Extend/append) must get the
	// biggest capacity on offer, or it reallocates at its high-water mark
	// every run.
	got := Slice[uint64](a, "t", 0)
	if len(got) != 0 || !sameBacking(got, big) {
		t.Fatalf("len-0 request got cap %d, want the cap-%d buffer", cap(got), cap(big))
	}
}

func TestNilArenaAllocates(t *testing.T) {
	s := Slice[uint64](nil, "t", 5)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	Release(nil, "t", s) // must not panic
}

func TestTagsAndTypesAreIsolated(t *testing.T) {
	a := New()
	u := Slice[uint64](a, "u", 50)
	Release(a, "u", u)
	if got := Slice[uint64](a, "other", 50); sameBacking(u, got) {
		t.Fatal("buffer crossed tags")
	}
	// Same tag, different element type: must allocate fresh, not panic.
	b := Slice[uint32](a, "u", 10)
	if len(b) != 10 {
		t.Fatalf("len = %d", len(b))
	}
}

func TestReleaseBoundKeepsLargest(t *testing.T) {
	a := New()
	var largest []uint64
	for i := 0; i < maxPerTag+5; i++ {
		s := make([]uint64, 10+i)
		if i == maxPerTag+4 {
			largest = s
		}
		Release(a, "t", s)
	}
	if len(a.lists["t"]) != maxPerTag {
		t.Fatalf("free list length %d, want %d", len(a.lists["t"]), maxPerTag)
	}
	if got := Slice[uint64](a, "t", 10+maxPerTag+4); !sameBacking(got, largest) {
		t.Fatal("largest buffer was evicted")
	}
}

func TestExtend(t *testing.T) {
	s := make([]uint64, 4, 16)
	s[3] = 9
	// Poison the hidden capacity: Extend must zero what it exposes.
	s[:16][10] = 42
	grown := Extend(s, 12)
	if len(grown) != 12 || &grown[0] != &s[0] {
		t.Fatalf("in-place extend failed: len=%d", len(grown))
	}
	if grown[3] != 9 {
		t.Fatal("live element clobbered")
	}
	for i := 4; i < 12; i++ {
		if grown[i] != 0 {
			t.Fatalf("exposed element %d not zeroed: %d", i, grown[i])
		}
	}
	beyond := Extend(grown, 100)
	if len(beyond) != 100 || beyond[3] != 9 {
		t.Fatal("reallocating extend lost data")
	}
	if shrunk := Extend(beyond, 5); len(shrunk) != 100 {
		t.Fatal("Extend shrank the slice")
	}
}
