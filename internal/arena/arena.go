// Package arena recycles the large backing arrays a simulated system is
// built from, so a sweep's hundreds of runs reuse one set of allocations
// instead of handing ~2.5MB of zeroed memory to the garbage collector per
// run. Construction-time consumers (cache line arrays, translator lines,
// page-table arenas, broker owner tables, ACM chunks) request buffers with
// Slice and hand them back with Release once the run's System is torn down;
// the next run's identical geometry then reuses them byte-for-byte.
//
// Buffers are keyed by a per-call-site tag and matched best-fit by
// capacity, so a sweep that varies one structure's geometry still recycles
// every other structure. Slice zeroes what it returns, which is the whole
// determinism story: a recycled system is bit-identical to a freshly
// allocated one, and the golden-report CI job holds that property.
//
// An Arena is not safe for concurrent use. The experiment Runner keeps one
// arena per worker-pool slot, giving each in-flight simulation a private
// arena while consecutive runs on the same slot share one.
package arena

import "unsafe"

// maxPerTag bounds how many released buffers one tag retains. A system
// releases at most a few dozen buffers per tag (one per cache instance,
// page table, …); beyond that, Release keeps the largest.
const maxPerTag = 64

// buffer is one released slice, decomposed so that storing it allocates
// nothing: boxing a []T into an `any` copies the three-word slice header to
// the heap on every Release, which at one Release per structure per run
// added up to a measurable per-run allocation floor. ptr keeps the backing
// array reachable (an unsafe.Pointer is a real pointer to the GC), and typ
// holds a nil *T — pointer values box into interfaces without allocating —
// so Slice can still refuse a buffer whose element type differs from the
// request even when two call sites share a tag.
type buffer struct {
	ptr unsafe.Pointer // first element of the released backing array
	typ any            // (*T)(nil): element-type identity for Slice
	cap int
}

// Arena is a tag-keyed free list of recycled slices.
type Arena struct {
	lists map[string][]buffer
}

// New returns an empty arena.
func New() *Arena {
	return &Arena{lists: map[string][]buffer{}}
}

// Slice returns a zeroed []T of length n, reusing the smallest adequate
// buffer previously Released under tag, so repeated same-geometry runs
// pair every request with its own previous buffer. A length-0 request is
// the grow-on-demand pattern (the caller will Extend/append to an unknown
// high-water mark), so it takes the *largest* buffer instead — best-fit
// would hand it the smallest and force a reallocation every run. A nil
// arena — the "pooling off" mode every constructor accepts — or a free
// list with no fitting buffer allocates fresh.
func Slice[T any](a *Arena, tag string, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	free := a.lists[tag]
	best := -1
	for i := range free {
		if free[i].cap < n {
			continue
		}
		if best >= 0 {
			if n == 0 && free[i].cap <= free[best].cap {
				continue
			}
			if n > 0 && free[i].cap >= free[best].cap {
				continue
			}
		}
		if _, ok := free[i].typ.(*T); ok {
			best = i
		}
	}
	if best < 0 {
		return make([]T, n)
	}
	b := unsafe.Slice((*T)(free[best].ptr), free[best].cap)
	free[best] = free[len(free)-1]
	a.lists[tag] = free[:len(free)-1]
	b = b[:n]
	clear(b)
	return b
}

// Release hands s back for future Slice calls under tag. The caller must
// not touch s afterwards. A nil arena or a capacity-less slice is a no-op;
// a full free list keeps the largest buffers.
func Release[T any](a *Arena, tag string, s []T) {
	if a == nil || cap(s) == 0 {
		return
	}
	b := buffer{ptr: unsafe.Pointer(unsafe.SliceData(s[:cap(s)])), typ: (*T)(nil), cap: cap(s)}
	free := a.lists[tag]
	if len(free) < maxPerTag {
		a.lists[tag] = append(free, b)
		return
	}
	smallest := 0
	for i := range free {
		if free[i].cap < free[smallest].cap {
			smallest = i
		}
	}
	if free[smallest].cap < b.cap {
		free[smallest] = b
	}
}

// CopyInto returns a copy of src: into dst's storage when it fits, into a
// recycled buffer under tag otherwise. It is the capture primitive of the
// snapshot machinery — repeated captures into a recycled snapshot reuse the
// snapshot's own arrays and allocate nothing. An empty src keeps dst's
// storage (a zero-length request would otherwise claim the tag's largest
// free buffer).
func CopyInto[T any](a *Arena, tag string, dst, src []T) []T {
	if len(src) == 0 {
		if dst == nil {
			return nil
		}
		return dst[:0]
	}
	if cap(dst) < len(src) {
		Release(a, tag, dst)
		dst = Slice[T](a, tag, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// Extend grows s to length n, zeroing the newly exposed elements. It
// extends in place when capacity allows — the path a recycled buffer's
// regrowth takes — and appends zeroes otherwise. n below len(s) is a
// no-op: Extend never discards live elements.
func Extend[T any](s []T, n int) []T {
	if n <= len(s) {
		return s
	}
	if n <= cap(s) {
		old := len(s)
		s = s[:n]
		clear(s[old:])
		return s
	}
	return append(s, make([]T, n-len(s))...)
}
