// Package benchparse parses `go test -bench` output into per-benchmark
// sample sets, for the CI benchmark-regression gate (cmd/benchgate). It
// understands the standard line format
//
//	BenchmarkName[/sub][-procs]  N  12345 ns/op [ 67 B/op  8 allocs/op ] [...]
//
// and aggregates repeated -count runs of the same benchmark, so callers can
// gate on medians instead of single noisy samples.
package benchparse

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Samples collects the per-run measurements of one benchmark.
type Samples struct {
	TimeNS      []float64 // ns/op per run
	BytesPerOp  []int64   // B/op per run (when -benchmem was used)
	AllocsPerOp []int64   // allocs/op per run
}

// ParseFile reads a `go test -bench` output file.
func ParseFile(path string) (map[string]*Samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]*Samples{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		agg := out[name]
		if agg == nil {
			agg = &Samples{}
			out[name] = agg
		}
		agg.TimeNS = append(agg.TimeNS, s.TimeNS...)
		agg.BytesPerOp = append(agg.BytesPerOp, s.BytesPerOp...)
		agg.AllocsPerOp = append(agg.AllocsPerOp, s.AllocsPerOp...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchparse: no benchmark lines in %s", path)
	}
	return out, nil
}

// parseLine parses one benchmark result line. The GOMAXPROCS suffix (-8) is
// stripped so runs from machines with different core counts compare.
func parseLine(line string) (string, Samples, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Samples{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
		return "", Samples{}, false
	}
	var s Samples
	seenTime := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			t, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", Samples{}, false
			}
			s.TimeNS = append(s.TimeNS, t)
			seenTime = true
		case "B/op":
			if b, err := strconv.ParseInt(val, 10, 64); err == nil {
				s.BytesPerOp = append(s.BytesPerOp, b)
			}
		case "allocs/op":
			if a, err := strconv.ParseInt(val, 10, 64); err == nil {
				s.AllocsPerOp = append(s.AllocsPerOp, a)
			}
		}
	}
	if !seenTime {
		return "", Samples{}, false
	}
	return name, s, true
}

// Median returns the median of xs (mean of the middle pair for even
// lengths). xs must be non-empty; it is not modified.
func Median(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// MedianInt returns the median of xs, rounding the even-length midpoint
// toward the lower sample (conservative for "any increase fails" gates).
func MedianInt(xs []int64) int64 {
	tmp := append([]int64(nil), xs...)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
