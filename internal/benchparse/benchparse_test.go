package benchparse

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseFileAggregatesCounts(t *testing.T) {
	p := writeTemp(t, `
goos: linux
goarch: amd64
pkg: deact/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCoreRun/I-FAM-8         	     115	   9785698 ns/op	 5931576 B/op	     714 allocs/op
BenchmarkCoreRun/I-FAM-8         	     123	   9624573 ns/op	 5931570 B/op	     712 allocs/op
BenchmarkCoreRun/I-FAM-8         	      96	  10427616 ns/op	 5931572 B/op	     714 allocs/op
BenchmarkEngine/handler-8        	121170255	        10.03 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	deact/internal/core	9.553s
`)
	got, err := ParseFile(p)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got["BenchmarkCoreRun/I-FAM"]
	if !ok {
		t.Fatalf("missing aggregated benchmark; have %v", got)
	}
	if len(s.TimeNS) != 3 || len(s.AllocsPerOp) != 3 || len(s.BytesPerOp) != 3 {
		t.Fatalf("samples not aggregated: %+v", s)
	}
	if m := Median(s.TimeNS); m != 9785698 {
		t.Fatalf("median time = %v, want 9785698", m)
	}
	if m := MedianInt(s.AllocsPerOp); m != 714 {
		t.Fatalf("median allocs = %d, want 714", m)
	}
	if e, ok := got["BenchmarkEngine/handler"]; !ok || e.TimeNS[0] != 10.03 {
		t.Fatalf("engine benchmark not parsed: %+v", got)
	}
}

func TestParseLineRejectsNonBenchLines(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	deact/internal/core	9.553s",
		"goos: linux",
		"BenchmarkBroken notanumber 5 ns/op",
		"Benchmark 5",
	} {
		if name, _, ok := parseLine(line); ok {
			t.Fatalf("line %q parsed as benchmark %q", line, name)
		}
	}
}

func TestParseLineKeepsUnsuffixedNames(t *testing.T) {
	name, s, ok := parseLine("BenchmarkThing 10 250 ns/op")
	if !ok || name != "BenchmarkThing" || s.TimeNS[0] != 250 {
		t.Fatalf("got %q %+v ok=%v", name, s, ok)
	}
	// A trailing -N that is part of the sub-benchmark name, not a procs
	// suffix, still strips only numeric tails.
	name, _, ok = parseLine("BenchmarkThing/sub-case-4 10 250 ns/op")
	if !ok || name != "BenchmarkThing/sub-case" {
		t.Fatalf("procs suffix not stripped: %q", name)
	}
}

func TestMedianEvenLength(t *testing.T) {
	if m := Median([]float64{1, 2, 3, 10}); m != 2.5 {
		t.Fatalf("median = %v, want 2.5", m)
	}
	if m := MedianInt([]int64{1, 2, 3, 10}); m != 2 {
		t.Fatalf("int median = %d, want 2 (midpoint rounds down)", m)
	}
}

func TestParseFileEmptyErrors(t *testing.T) {
	p := writeTemp(t, "PASS\n")
	if _, err := ParseFile(p); err == nil {
		t.Fatal("empty bench file accepted")
	}
}
