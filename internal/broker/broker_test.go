package broker

import (
	"testing"

	"deact/internal/acm"
	"deact/internal/addr"
)

func layout() addr.Layout {
	// Small pool to keep tests fast: 4GB FAM.
	return addr.Layout{DRAMSize: 1 << 30, FAMZoneSize: 2 << 30, FAMSize: 4 << 30, ACMBits: 16}
}

func newBroker(t *testing.T) *Broker {
	t.Helper()
	b, err := New(layout(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewValidatesLayout(t *testing.T) {
	if _, err := New(addr.Layout{}, 1); err == nil {
		t.Fatal("invalid layout accepted")
	}
}

func TestAllocateSetsOwnershipAndACM(t *testing.T) {
	b := newBroker(t)
	p, err := b.AllocatePage(3)
	if err != nil {
		t.Fatal(err)
	}
	if d := b.Meta().Check(p, 3, acm.PermRWX); !d.Allowed {
		t.Fatalf("owner denied: %+v", d)
	}
	if d := b.Meta().Check(p, 4, acm.PermR); d.Allowed {
		t.Fatal("foreign node allowed")
	}
	if b.OwnedPages(3) != 1 {
		t.Fatalf("owned = %d", b.OwnedPages(3))
	}
}

func TestAllocationIsRandomButDeterministic(t *testing.T) {
	b1, _ := New(layout(), 7)
	b2, _ := New(layout(), 7)
	b3, _ := New(layout(), 8)
	var s1, s2, s3 []addr.FPage
	for i := 0; i < 64; i++ {
		p1, _ := b1.AllocatePage(1)
		p2, _ := b2.AllocatePage(1)
		p3, _ := b3.AllocatePage(1)
		s1, s2, s3 = append(s1, p1), append(s2, p2), append(s3, p3)
	}
	sequential, sameSeedEqual, diffSeedEqual := true, true, true
	for i := range s1 {
		if i > 0 && s1[i] != s1[i-1]+1 {
			sequential = false
		}
		if s1[i] != s2[i] {
			sameSeedEqual = false
		}
		if s1[i] != s3[i] {
			diffSeedEqual = false
		}
	}
	if sequential {
		t.Fatal("placement is sequential; the paper requires random FAM placement")
	}
	if !sameSeedEqual {
		t.Fatal("same seed must reproduce the same placement")
	}
	if diffSeedEqual {
		t.Fatal("different seeds produced identical placement")
	}
}

func TestNodeIDSpaceEnforced(t *testing.T) {
	b := newBroker(t)
	if _, err := b.AllocatePage(0x3FFF); err == nil {
		t.Fatal("shared-marker node ID accepted as a real node")
	}
}

func TestMapForNodeInstallsTranslation(t *testing.T) {
	b := newBroker(t)
	np := addr.NPPage(0x800)
	p, err := b.MapForNode(2, np)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := b.NodeTable(2)
	if v, ok := tbl.Lookup(uint64(np)); !ok || addr.FPage(v) != p {
		t.Fatal("translation not installed")
	}
	// Idempotent: mapping again returns the same page without allocating.
	owned := b.OwnedPages(2)
	p2, err := b.MapForNode(2, np)
	if err != nil || p2 != p {
		t.Fatalf("remap changed page: %v vs %v (%v)", p2, p, err)
	}
	if b.OwnedPages(2) != owned {
		t.Fatal("remap leaked a page")
	}
}

func TestFreePageEnforcesOwner(t *testing.T) {
	b := newBroker(t)
	p, _ := b.AllocatePage(1)
	if err := b.FreePage(2, p); err == nil {
		t.Fatal("foreign free accepted")
	}
	if err := b.FreePage(1, p); err != nil {
		t.Fatal(err)
	}
	if d := b.Meta().Check(p, 1, acm.PermR); d.Allowed {
		t.Fatal("freed page still accessible")
	}
}

func TestSharedRegionLifecycle(t *testing.T) {
	b := newBroker(t)
	huge, err := b.AllocateSharedRegion(acm.PermR)
	if err != nil {
		t.Fatal(err)
	}
	b.Grant(huge, 1, acm.PermRW)
	b.Grant(huge, 2, acm.PermR)

	p1, err := b.SharedPageFor(1, 0x900, huge, 5)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.SharedPageFor(2, 0x700, huge, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("two nodes mapping the same shared offset got different FAM pages")
	}
	if d := b.Meta().Check(p1, 1, acm.PermRW); !d.Allowed || !d.Shared {
		t.Fatalf("writer denied: %+v", d)
	}
	if d := b.Meta().Check(p1, 2, acm.PermRW); d.Allowed {
		t.Fatal("reader allowed to write")
	}
	if d := b.Meta().Check(p1, 3, acm.PermR); d.Allowed {
		t.Fatal("ungranted node allowed")
	}
	if _, err := b.SharedPageFor(1, 1, huge, addr.PagesPerHuge); err == nil {
		t.Fatal("out-of-range shared offset accepted")
	}
}

func TestSharedRegionsDoNotCollideWithRandomPool(t *testing.T) {
	b := newBroker(t)
	huge, _ := b.AllocateSharedRegion(acm.PermR)
	lo := addr.FPage(huge * addr.PagesPerHuge)
	hi := lo + addr.PagesPerHuge
	for i := 0; i < 2000; i++ {
		p, err := b.AllocatePage(1)
		if err != nil {
			t.Fatal(err)
		}
		if p >= lo && p < hi {
			t.Fatalf("random pool handed out page %d inside shared region [%d,%d)", p, lo, hi)
		}
	}
}

func TestMigrateJob(t *testing.T) {
	b := newBroker(t)
	var pages []addr.FPage
	for i := 0; i < 10; i++ {
		p, err := b.MapForNode(1, addr.NPPage(0x800+i))
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
	}
	cost, err := b.MigrateJob(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cost.ACMRewrites != 10 {
		t.Fatalf("ACM rewrites = %d, want 10 (table nodes are not ACM entries)", cost.ACMRewrites)
	}
	if cost.TranslationsMoved != 10 {
		t.Fatalf("translations moved = %d", cost.TranslationsMoved)
	}
	for _, p := range pages {
		if d := b.Meta().Check(p, 9, acm.PermR); !d.Allowed {
			t.Fatalf("new owner denied page %d: %+v", p, d)
		}
		if d := b.Meta().Check(p, 1, acm.PermR); d.Allowed {
			t.Fatalf("old owner still allowed on page %d", p)
		}
	}
	// The FAM page table followed the job.
	tbl, _ := b.NodeTable(9)
	if _, ok := tbl.Lookup(0x800); !ok {
		t.Fatal("FAM table did not move with the job")
	}
	if _, err := b.MigrateJob(9, 0x3FFF); err == nil {
		t.Fatal("migration to the shared marker accepted")
	}
}

func TestPoolExhaustion(t *testing.T) {
	small := addr.Layout{DRAMSize: 1 << 20, FAMZoneSize: 1 << 20, FAMSize: 64 << 20, ACMBits: 16}
	b, err := New(small, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := b.FreePages()
	for i := uint64(0); i < n; i++ {
		if _, err := b.AllocatePage(1); err != nil {
			t.Fatalf("allocation %d/%d failed early: %v", i, n, err)
		}
	}
	if _, err := b.AllocatePage(1); err == nil {
		t.Fatal("exhausted pool still allocating")
	}
}
