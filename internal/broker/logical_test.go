package broker

import "testing"

func TestLogicalAssignResolve(t *testing.T) {
	d := NewLogicalDirectory()
	if err := d.Assign(100, 1); err != nil {
		t.Fatal(err)
	}
	if p, ok := d.PhysicalOf(100); !ok || p != 1 {
		t.Fatalf("PhysicalOf = (%d,%v)", p, ok)
	}
	if l, ok := d.LogicalOf(1); !ok || l != 100 {
		t.Fatalf("LogicalOf = (%d,%v)", l, ok)
	}
	// Re-assign same binding is idempotent.
	if err := d.Assign(100, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalNoColocation(t *testing.T) {
	d := NewLogicalDirectory()
	d.Assign(100, 1)
	if err := d.Assign(101, 1); err == nil {
		t.Fatal("two jobs on one physical node accepted (no-co-location, §II-A)")
	}
	if err := d.Assign(100, 2); err == nil {
		t.Fatal("one job on two physical nodes accepted")
	}
}

func TestLogicalRebindIsCheapMigration(t *testing.T) {
	d := NewLogicalDirectory()
	d.Assign(100, 1)
	old, err := d.Rebind(100, 5)
	if err != nil || old != 1 {
		t.Fatalf("rebind = (%d,%v)", old, err)
	}
	if p, _ := d.PhysicalOf(100); p != 5 {
		t.Fatal("rebind did not move the job")
	}
	if _, ok := d.LogicalOf(1); ok {
		t.Fatal("old physical node still bound")
	}
	if d.Rebinds() != 1 {
		t.Fatal("rebind not counted")
	}
	// Destination occupied → refused.
	d.Assign(101, 1)
	if _, err := d.Rebind(100, 1); err == nil {
		t.Fatal("rebind onto an occupied node accepted")
	}
	// Unknown job → refused.
	if _, err := d.Rebind(999, 7); err == nil {
		t.Fatal("rebind of unassigned job accepted")
	}
}

func TestLogicalRelease(t *testing.T) {
	d := NewLogicalDirectory()
	d.Assign(100, 1)
	d.Release(100)
	if _, ok := d.PhysicalOf(100); ok {
		t.Fatal("released job still resolvable")
	}
	if err := d.Assign(101, 1); err != nil {
		t.Fatalf("node not freed by release: %v", err)
	}
	d.Release(999) // releasing the unknown is a no-op
}
