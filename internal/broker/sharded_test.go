package broker

import (
	"testing"

	"deact/internal/acm"
	"deact/internal/addr"
)

// TestShardedSingleShardMatchesPlainBroker pins the byte-identity contract:
// with one shard, every placement draw must equal the unsharded broker's.
// The golden-report CI job depends on this (default configs build a 1-shard
// Sharded where they used to build a Broker).
func TestShardedSingleShardMatchesPlainBroker(t *testing.T) {
	plain, err := New(layout(), 42)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewSharded(layout(), 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		node := uint16(1 + i%3)
		pw, err1 := plain.AllocatePage(node)
		pg, err2 := sh.For(node).AllocatePage(node)
		if err1 != nil || err2 != nil {
			t.Fatalf("alloc %d: %v / %v", i, err1, err2)
		}
		if pw != pg {
			t.Fatalf("alloc %d: plain broker gave page %d, 1-shard Sharded gave %d", i, pw, pg)
		}
	}
	if plain.FreePages() != sh.Shard(0).FreePages() {
		t.Fatalf("free counts diverged: %d vs %d", plain.FreePages(), sh.Shard(0).FreePages())
	}
}

// TestShardedPartitionsDisjoint checks that every shard allocates only
// inside its own contiguous page range, the ranges tile the usable pool
// exactly, and a page freed on its shard is reusable there.
func TestShardedPartitionsDisjoint(t *testing.T) {
	const n = 4
	sh, err := NewSharded(layout(), 7, n)
	if err != nil {
		t.Fatal(err)
	}
	usable := layout().UsableFAMPages()
	var total uint64
	for i := 0; i < n; i++ {
		total += sh.Shard(i).FreePages()
	}
	if total != usable {
		t.Fatalf("shard pools cover %d pages, want %d", total, usable)
	}
	for i := 0; i < n; i++ {
		b := sh.Shard(i)
		lo := usable * uint64(i) / n
		hi := usable * uint64(i+1) / n
		var pages []addr.FPage
		for j := 0; j < 128; j++ {
			p, err := b.AllocatePage(uint16(i + 1))
			if err != nil {
				t.Fatalf("shard %d alloc %d: %v", i, j, err)
			}
			if uint64(p) < lo || uint64(p) >= hi {
				t.Fatalf("shard %d allocated page %d outside its range [%d, %d)", i, p, lo, hi)
			}
			pages = append(pages, p)
		}
		if err := b.FreePage(uint16(i+1), pages[0]); err != nil {
			t.Fatalf("shard %d free: %v", i, err)
		}
		if got := b.OwnedPages(uint16(i + 1)); got != 127 {
			t.Fatalf("shard %d owned = %d, want 127", i, got)
		}
	}
}

// TestShardedForMapping pins the node→shard round-robin: node IDs start at
// 1, node 0 (broker-owned) is served by shard 0.
func TestShardedForMapping(t *testing.T) {
	sh, err := NewSharded(layout(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[uint16]*Broker{
		0: sh.Shard(0), 1: sh.Shard(0), 2: sh.Shard(1),
		3: sh.Shard(0), 4: sh.Shard(1),
	}
	for node, want := range cases {
		if got := sh.For(node); got != want {
			t.Errorf("For(%d) = shard with base %d, want base %d", node, got.base, want.base)
		}
	}
}

// TestShardRejectsSharedRegions: shared 1GB regions are carved from the top
// of the whole pool, which only a full-pool broker can do coherently.
func TestShardRejectsSharedRegions(t *testing.T) {
	sh, err := NewSharded(layout(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sh.Shard(i).AllocateSharedRegion(acm.PermR); err == nil {
			t.Errorf("shard %d accepted a shared-region carve", i)
		}
	}
	one, err := NewSharded(layout(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.Shard(0).AllocateSharedRegion(acm.PermR); err != nil {
		t.Errorf("full-pool shard rejected a shared-region carve: %v", err)
	}
}

// TestShardedCaptureRestoreReplays checks the snapshot contract across
// shards: restoring rewinds every shard's RNG, pool and ownership so the
// continuation replays the exact page sequence.
func TestShardedCaptureRestoreReplays(t *testing.T) {
	sh, err := NewSharded(layout(), 99, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := sh.For(uint16(1 + i%5)).AllocatePage(uint16(1 + i%5)); err != nil {
			t.Fatal(err)
		}
	}
	var st ShardedState
	sh.CaptureState(nil, &st)
	var want []addr.FPage
	for i := 0; i < 64; i++ {
		p, err := sh.For(uint16(1 + i%5)).AllocatePage(uint16(1 + i%5))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := sh.RestoreState(&st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		p, err := sh.For(uint16(1 + i%5)).AllocatePage(uint16(1 + i%5))
		if err != nil {
			t.Fatal(err)
		}
		if p != want[i] {
			t.Fatalf("replay diverged at alloc %d: got page %d, want %d", i, p, want[i])
		}
	}
}

// TestShardedShardCountBounds pins normalization and the too-many-shards
// error.
func TestShardedShardCountBounds(t *testing.T) {
	sh, err := NewSharded(layout(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != 1 {
		t.Fatalf("n=0 gave %d shards, want 1", sh.Shards())
	}
	usable := layout().UsableFAMPages()
	if _, err := NewSharded(layout(), 1, int(usable+1)); err == nil {
		t.Fatal("accepted more shards than pages")
	}
}
