package broker

import "fmt"

// Logical node IDs (§VI): resource managers assign each *job* a logical
// node ID; the ACM stores logical IDs, so migrating a job between physical
// nodes only rebinds logical→physical at the broker — no ACM rewrites, no
// global-memory traffic. This file implements that indirection.

// LogicalDirectory maps job-level logical node IDs to the physical node
// currently hosting them.
type LogicalDirectory struct {
	byLogical  map[uint16]uint16 // logical → physical
	byPhysical map[uint16]uint16 // physical → logical (one job per node)
	rebinds    uint64
}

// NewLogicalDirectory builds an empty directory.
func NewLogicalDirectory() *LogicalDirectory {
	return &LogicalDirectory{byLogical: map[uint16]uint16{}, byPhysical: map[uint16]uint16{}}
}

// Assign binds logical ID l to physical node p. A physical node hosts at
// most one job at a time (the paper's no-co-location assumption, §II-A).
func (d *LogicalDirectory) Assign(l, p uint16) error {
	if cur, ok := d.byPhysical[p]; ok && cur != l {
		return fmt.Errorf("broker: physical node %d already hosts logical node %d", p, cur)
	}
	if cur, ok := d.byLogical[l]; ok && cur != p {
		return fmt.Errorf("broker: logical node %d already bound to physical node %d", l, cur)
	}
	d.byLogical[l] = p
	d.byPhysical[p] = l
	return nil
}

// PhysicalOf resolves a logical ID.
func (d *LogicalDirectory) PhysicalOf(l uint16) (uint16, bool) {
	p, ok := d.byLogical[l]
	return p, ok
}

// LogicalOf resolves a physical node to the job it hosts.
func (d *LogicalDirectory) LogicalOf(p uint16) (uint16, bool) {
	l, ok := d.byPhysical[p]
	return l, ok
}

// Rebind migrates the job with logical ID l to physical node newP. Unlike
// Broker.MigrateJob, this touches no ACM entries: the metadata stores the
// logical ID, and only this table changes (plus the node-side shootdowns
// the caller performs). It returns the previous physical node.
func (d *LogicalDirectory) Rebind(l, newP uint16) (uint16, error) {
	oldP, ok := d.byLogical[l]
	if !ok {
		return 0, fmt.Errorf("broker: logical node %d is not assigned", l)
	}
	if cur, busy := d.byPhysical[newP]; busy && cur != l {
		return 0, fmt.Errorf("broker: physical node %d already hosts logical node %d", newP, cur)
	}
	delete(d.byPhysical, oldP)
	d.byLogical[l] = newP
	d.byPhysical[newP] = l
	d.rebinds++
	return oldP, nil
}

// Release unbinds a completed job.
func (d *LogicalDirectory) Release(l uint16) {
	if p, ok := d.byLogical[l]; ok {
		delete(d.byPhysical, p)
		delete(d.byLogical, l)
	}
}

// Rebinds counts migrations performed through the directory.
func (d *LogicalDirectory) Rebinds() uint64 { return d.rebinds }
