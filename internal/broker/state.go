package broker

import (
	"fmt"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/arena"
	"deact/internal/pagetable"
	"deact/internal/rng"
)

// State is a Broker's mutable state for core.System.Snapshot: the placement
// RNG position, the virtual free pool, the owner table, every node's FAM
// page table, the shared-region carve state, and the metadata store the
// broker owns.
type State struct {
	rng       rng.State
	freeCount uint64
	freeMods  map[uint64]addr.FPage
	owner     []uint16
	tables    map[uint16]*pagetable.State
	hugeNext  uint64
	randLimit uint64
	allocated uint64
	meta      acm.StoreState
}

// CaptureState captures the broker into st, reusing st's storage where it
// fits and drawing large copies from a (nil allocates normally).
func (b *Broker) CaptureState(a *arena.Arena, st *State) {
	st.rng = b.rng.State()
	st.freeCount = b.freeCount
	if st.freeMods == nil {
		st.freeMods = map[uint64]addr.FPage{}
	}
	clear(st.freeMods)
	for i, p := range b.freeMods {
		st.freeMods[i] = p
	}
	st.owner = arena.CopyInto(a, "snap.broker.owner", st.owner, b.owner)
	if st.tables == nil {
		st.tables = map[uint16]*pagetable.State{}
	}
	for id, tst := range st.tables {
		if _, ok := b.nodeMaps[id]; !ok {
			tst.Release(a)
			delete(st.tables, id)
		}
	}
	for id, t := range b.nodeMaps {
		tst := st.tables[id]
		if tst == nil {
			tst = &pagetable.State{}
			st.tables[id] = tst
		}
		t.CaptureState(a, tst)
	}
	st.hugeNext, st.randLimit, st.allocated = b.hugeNext, b.randLimit, b.allocated
	b.meta.CaptureState(a, &st.meta)
}

// RestoreState rewinds the broker to st. Node tables are restored *through*
// the broker's own table objects (created on demand), so aliases held by
// the STUs keep pointing at live, restored tables. Creation draws from the
// broker's RNG and scratches the owner table, which is why the RNG, owner
// and free-pool state are overwritten only afterwards.
func (b *Broker) RestoreState(st *State) error {
	for id, tst := range st.tables {
		t, err := b.NodeTable(id)
		if err != nil {
			return fmt.Errorf("broker: restoring node %d table: %w", id, err)
		}
		t.RestoreState(tst)
	}
	for id, t := range b.nodeMaps {
		if _, ok := st.tables[id]; !ok {
			delete(b.nodeMaps, id)
			t.Recycle(b.a)
		}
	}
	b.rng.Restore(st.rng)
	b.freeCount = st.freeCount
	clear(b.freeMods)
	for i, p := range st.freeMods {
		b.freeMods[i] = p
	}
	if len(st.owner) != len(b.owner) {
		return fmt.Errorf("broker: RestoreState owner table size mismatch (%d vs %d)", len(st.owner), len(b.owner))
	}
	copy(b.owner, st.owner)
	b.hugeNext, b.randLimit, b.allocated = st.hugeNext, st.randLimit, st.allocated
	b.meta.RestoreState(&st.meta)
	return nil
}

// Release returns st's large copies to a for reuse by later captures.
func (st *State) Release(a *arena.Arena) {
	arena.Release(a, "snap.broker.owner", st.owner)
	st.owner = nil
	for id, tst := range st.tables {
		tst.Release(a)
		delete(st.tables, id)
	}
	st.meta.Release(a)
}
