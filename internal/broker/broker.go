// Package broker implements the centralized system-level memory manager of
// a FAM system — the role Opal plays in the paper's SST setup (§I, §IV). A
// single broker owns the shared FAM pool and:
//
//   - allocates FAM pages to nodes on demand, *randomly placed* across the
//     pool ("since FAM is shared by multiple nodes, memory allocation is
//     random and hence has poor spatial locality", §III-D — the property
//     that separates DeACT-W from DeACT-N);
//   - maintains each node's FAM page table (node-physical page → FAM page),
//     whose table nodes themselves live in FAM and are walked by the STU;
//   - writes the per-page access-control metadata and shared-region bitmaps
//     (package acm); and
//   - supports shared 1GB regions and job migration (§VI).
//
// Allocation and metadata writes happen off the simulated critical path
// (they are OS/broker work the paper does not charge to application time).
package broker

import (
	"fmt"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/arena"
	"deact/internal/pagetable"
	"deact/internal/rng"
)

// Broker is the centralized FAM manager. A Broker normally owns the whole
// usable pool; NewSharded builds several Brokers that each own a disjoint
// contiguous page range of it (base/full below), which is the sharding seam
// datacenter-scale configurations use so ownership metadata is not one
// global table.
type Broker struct {
	layout addr.Layout
	meta   *acm.Store
	rng    *rng.Rand

	// base is the first FAM page of this broker's partition; owner and the
	// virtual free pool are indexed relative to it. 0 for an unsharded
	// broker.
	base uint64
	// full records that the partition is the entire usable pool. Shared
	// 1GB regions are carved from the top of the pool, so only a full
	// broker supports them.
	full bool

	// The random-pick free pool is a lazily materialized permutation: it
	// behaves exactly like a []addr.FPage initialized to the identity and
	// shrunk by swap-remove, but only the slots disturbed by draws are
	// stored, so building a broker is O(1) in the pool size and a run's
	// footprint is O(pages actually allocated). freeAt/setFree implement
	// the virtual indexing.
	freeCount uint64                      // virtual pool length
	freeMods  map[uint64]addr.FPage       // sparse overrides of the identity slot i → page i
	owner     []uint16                    // per-page owning node + 1; 0 = unowned
	nodeMaps  map[uint16]*pagetable.Table // per-node FAM page tables
	hugeNext  uint64                      // next 1GB region index for shared regions
	randLimit uint64                      // pages >= randLimit belong to carved shared regions
	allocated uint64

	a *arena.Arena // recycles table arenas for NodeTable calls made mid-run
}

// New builds a broker for the pool described by layout, with deterministic
// placement driven by seed.
func New(layout addr.Layout, seed int64) (*Broker, error) {
	return NewInArena(nil, layout, seed)
}

// NewInArena is New drawing the owner table, ACM chunk slabs and FAM
// page-table arenas from a. A nil arena allocates normally.
func NewInArena(a *arena.Arena, layout addr.Layout, seed int64) (*Broker, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	return newRange(a, layout, seed, 0, layout.UsableFAMPages()), nil
}

// newRange builds a broker owning the page range [base, base+count) of an
// already validated layout. base=0, count=usable is the classic unsharded
// broker; NewSharded builds one per partition.
func newRange(a *arena.Arena, layout addr.Layout, seed int64, base, count uint64) *Broker {
	b := &Broker{
		layout:    layout,
		meta:      acm.NewStoreInArena(a, layout),
		rng:       rng.New(seed),
		base:      base,
		full:      base == 0 && count == layout.UsableFAMPages(),
		freeCount: count,
		freeMods:  map[uint64]addr.FPage{},
		owner:     arena.Slice[uint16](a, "broker.owner", int(count)),
		nodeMaps:  map[uint16]*pagetable.Table{},
		a:         a,
	}
	// Shared 1GB regions are carved from the top of the usable area,
	// growing downward; the random-allocation pool keeps everything below
	// the carve boundary. Carving is only legal on a full-pool broker
	// (AllocateSharedRegion enforces this), so a shard's hugeNext is unused.
	b.hugeNext = (base + count) / addr.PagesPerHuge
	b.randLimit = base + count
	return b
}

// freeAt reads virtual free-pool slot i. The identity permutation maps slot
// i to the partition's i-th page.
func (b *Broker) freeAt(i uint64) addr.FPage {
	if p, ok := b.freeMods[i]; ok {
		return p
	}
	return addr.FPage(b.base + i)
}

// setFree writes virtual free-pool slot i.
func (b *Broker) setFree(i uint64, p addr.FPage) {
	if uint64(p) == b.base+i {
		delete(b.freeMods, i)
		return
	}
	b.freeMods[i] = p
}

// Meta exposes the access-control metadata store (read by the STU).
func (b *Broker) Meta() *acm.Store { return b.meta }

// Layout returns the pool layout.
func (b *Broker) Layout() addr.Layout { return b.layout }

// takeRandom removes and returns a random free page: a swap-remove from the
// virtual pool, drawing the identical page sequence (per seed) the eagerly
// built pool drew.
func (b *Broker) takeRandom() (addr.FPage, error) {
	for b.freeCount > 0 {
		i := uint64(b.rng.Intn(int(b.freeCount)))
		p := b.freeAt(i)
		last := b.freeCount - 1
		if i != last {
			b.setFree(i, b.freeAt(last))
		}
		delete(b.freeMods, last)
		b.freeCount = last
		// Skip pages consumed by shared regions carved after pool build.
		if uint64(p) >= b.randLimit {
			continue
		}
		return p, nil
	}
	return 0, fmt.Errorf("broker: FAM pool exhausted after %d allocations", b.allocated)
}

// AllocatePage hands node a freshly placed FAM page with full permissions
// and records ownership in the metadata store.
func (b *Broker) AllocatePage(node uint16) (addr.FPage, error) {
	if int(node) >= acm.MaxNodes(b.layout.ACMBits) {
		return 0, fmt.Errorf("broker: node ID %d exceeds the %d-bit ACM ID space", node, b.layout.ACMBits)
	}
	p, err := b.takeRandom()
	if err != nil {
		return 0, err
	}
	b.owner[uint64(p)-b.base] = node + 1
	b.allocated++
	if err := b.meta.Set(p, acm.Entry{Owner: node, Perm: acm.PermRWX}); err != nil {
		return 0, err
	}
	return p, nil
}

// NodeTable returns (building on first use) node's FAM page table. Its
// table nodes are FAM pages owned by the system (node ID 0 is reserved for
// the broker itself in our configuration).
func (b *Broker) NodeTable(node uint16) (*pagetable.Table, error) {
	if t, ok := b.nodeMaps[node]; ok {
		return t, nil
	}
	alloc := func() (uint64, error) {
		p, err := b.takeRandom()
		if err != nil {
			return 0, err
		}
		b.owner[uint64(p)-b.base] = node + 1
		return uint64(p), nil
	}
	t, err := pagetable.NewInArena(b.a, fmt.Sprintf("fam-pt.%d", node), alloc)
	if err != nil {
		return nil, err
	}
	b.nodeMaps[node] = t
	return t, nil
}

// Recycle returns the broker's large tables — the owner table, the ACM
// chunk slabs, every node's FAM page-table arena — to a for the next run's
// construction. The broker (and the tables NodeTable handed out) must not
// be used afterwards.
func (b *Broker) Recycle(a *arena.Arena) {
	arena.Release(a, "broker.owner", b.owner)
	b.owner = nil
	b.meta.Recycle(a)
	for _, t := range b.nodeMaps {
		t.Recycle(a)
	}
}

// MapForNode allocates a FAM page for node and installs the system-level
// translation npPage → FAM page in node's FAM page table. This is the path
// the STU's "request physical pages from the system-level memory broker"
// service takes for unmapped addresses.
func (b *Broker) MapForNode(node uint16, npPage addr.NPPage) (addr.FPage, error) {
	t, err := b.NodeTable(node)
	if err != nil {
		return 0, err
	}
	if existing, ok := t.Lookup(uint64(npPage)); ok {
		return addr.FPage(existing), nil
	}
	p, err := b.AllocatePage(node)
	if err != nil {
		return 0, err
	}
	if err := t.Map(uint64(npPage), uint64(p)); err != nil {
		return 0, err
	}
	return p, nil
}

// FreePage returns a page to the pool and clears its metadata. Only the
// recorded owner may free.
func (b *Broker) FreePage(node uint16, p addr.FPage) error {
	if uint64(p) < b.base || uint64(p)-b.base >= uint64(len(b.owner)) || b.owner[uint64(p)-b.base] != node+1 {
		return fmt.Errorf("broker: node %d freeing page %d it does not own", node, p)
	}
	b.owner[uint64(p)-b.base] = 0
	b.meta.Clear(p)
	b.setFree(b.freeCount, p)
	b.freeCount++
	b.allocated--
	return nil
}

// AllocateSharedRegion carves a 1GB region for sharing, marks all of its
// sub-pages with the shared ACM marker and the given default permission,
// and returns its region index.
func (b *Broker) AllocateSharedRegion(defaultPerm acm.Perm) (uint64, error) {
	if !b.full {
		return 0, fmt.Errorf("broker: shared regions require an unsharded (full-pool) broker")
	}
	if b.hugeNext == 0 {
		return 0, fmt.Errorf("broker: no 1GB regions left for sharing")
	}
	b.hugeNext--
	huge := b.hugeNext
	b.randLimit = huge * addr.PagesPerHuge
	b.meta.MarkShared(huge, defaultPerm)
	return huge, nil
}

// Grant gives node a permission in a shared region's bitmap.
func (b *Broker) Grant(huge uint64, node uint16, p acm.Perm) { b.meta.Grant(huge, node, p) }

// Revoke removes node's grant in a shared region.
func (b *Broker) Revoke(huge uint64, node uint16) { b.meta.Revoke(huge, node) }

// SharedPageFor maps npPage in node's FAM table to a page inside the shared
// region at the given page offset, so multiple nodes can map the same FAM
// page. Access control is enforced by the bitmap, not ownership.
func (b *Broker) SharedPageFor(node uint16, npPage addr.NPPage, huge, offset uint64) (addr.FPage, error) {
	if offset >= addr.PagesPerHuge {
		return 0, fmt.Errorf("broker: shared page offset %d out of range", offset)
	}
	t, err := b.NodeTable(node)
	if err != nil {
		return 0, err
	}
	p := addr.FPage(huge*addr.PagesPerHuge + offset)
	if err := t.Map(uint64(npPage), uint64(p)); err != nil {
		return 0, err
	}
	return p, nil
}

// OwnedPages returns how many pages node currently owns (table nodes
// included).
func (b *Broker) OwnedPages(node uint16) uint64 {
	var n uint64
	for _, o := range b.owner {
		if o == node+1 {
			n++
		}
	}
	return n
}

// FreePages returns the number of allocatable pages remaining.
func (b *Broker) FreePages() uint64 {
	return b.freeCount
}

// MigrationCost summarizes the work a job migration performed (§VI): ACM
// rewrites in FAM and system-translation invalidations, which the caller
// can convert to time.
type MigrationCost struct {
	ACMRewrites       uint64
	TranslationsMoved uint64
}

// MigrateJob moves ownership of every page owned by from to to, rewriting
// ACM entries and re-homing the FAM page table. The caller is responsible
// for flushing node-side TLBs and translation caches (the invalidation
// hooks live in the node and translator packages).
func (b *Broker) MigrateJob(from, to uint16) (MigrationCost, error) {
	if int(to) >= acm.MaxNodes(b.layout.ACMBits) {
		return MigrationCost{}, fmt.Errorf("broker: destination node %d out of ID space", to)
	}
	var cost MigrationCost
	for pi, o := range b.owner {
		if o != from+1 {
			continue
		}
		p := addr.FPage(b.base + uint64(pi))
		b.owner[pi] = to + 1
		// Page-table node pages carry no ACM entry of their own (the broker
		// owns them); only data pages need ACM rewrites.
		if !b.meta.Has(p) {
			continue
		}
		e := b.meta.Entry(p)
		if !b.meta.IsSharedMarker(e) {
			e.Owner = to
			if err := b.meta.Set(p, e); err != nil {
				return cost, err
			}
			cost.ACMRewrites++
		}
	}
	if t, ok := b.nodeMaps[from]; ok {
		delete(b.nodeMaps, from)
		b.nodeMaps[to] = t
		cost.TranslationsMoved = t.Mapped()
	}
	return cost, nil
}
