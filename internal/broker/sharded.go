package broker

import (
	"fmt"

	"deact/internal/addr"
	"deact/internal/arena"
)

// shardSeedStride separates the shard RNG streams. Shard 0 keeps the base
// seed unchanged so a 1-shard Sharded draws the exact placement sequence an
// unsharded Broker draws — the byte-identity contract the golden report
// depends on. The stride is far outside the seed offsets other components
// derive (nodes: +id·1000, translators: +101, generators: +ni·100+ci).
const shardSeedStride = 1_000_003

// Sharded partitions the usable FAM pool across independent Broker shards,
// each owning a contiguous page range with its own placement RNG, owner
// table, ACM metadata store and FAM page tables. Nodes map to shards
// round-robin by node ID, so allocation metadata is no longer one global
// table — the seam that lets datacenter-scale configurations (hundreds of
// nodes) grow without a single ownership bottleneck in the simulator.
//
// With one shard, Sharded is byte-identical to a plain Broker: the same
// seed, the same partition, the same draw sequence.
type Sharded struct {
	shards []*Broker
}

// NewSharded builds n shards over layout's usable pool. Sharded is returned
// by value — it is one slice header — so the common embed-in-a-System case
// adds no allocation over the plain Broker it replaces.
func NewSharded(layout addr.Layout, seed int64, n int) (Sharded, error) {
	return NewShardedInArena(nil, layout, seed, n)
}

// NewShardedInArena is NewSharded drawing each shard's tables (and the
// shard slice itself) from a. Shard i owns pages
// [i·usable/n, (i+1)·usable/n), so partitions differ in size by at most one
// page and cover the pool exactly. n ≤ 0 normalizes to 1.
func NewShardedInArena(a *arena.Arena, layout addr.Layout, seed int64, n int) (Sharded, error) {
	if err := layout.Validate(); err != nil {
		return Sharded{}, err
	}
	if n <= 0 {
		n = 1
	}
	usable := layout.UsableFAMPages()
	if uint64(n) > usable {
		return Sharded{}, fmt.Errorf("broker: %d shards over %d usable pages", n, usable)
	}
	s := Sharded{shards: arena.Slice[*Broker](a, "broker.shards", n)}
	for i := 0; i < n; i++ {
		base := usable * uint64(i) / uint64(n)
		end := usable * uint64(i+1) / uint64(n)
		s.shards[i] = newRange(a, layout, seed+int64(i)*shardSeedStride, base, end-base)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// Shard returns shard i.
func (s *Sharded) Shard(i int) *Broker { return s.shards[i] }

// For returns the shard serving the given node. Node IDs start at 1 (the
// broker reserves 0 for itself); they map to shards round-robin so
// consecutive nodes land on different shards. Node 0 — broker-owned
// traffic — is served by shard 0.
func (s *Sharded) For(node uint16) *Broker {
	if node == 0 {
		return s.shards[0]
	}
	return s.shards[int(node-1)%len(s.shards)]
}

// Recycle returns every shard's large tables and the shard slice to a.
func (s *Sharded) Recycle(a *arena.Arena) {
	for _, b := range s.shards {
		b.Recycle(a)
	}
	arena.Release(a, "broker.shards", s.shards)
	s.shards = nil
}

// ShardedState is the captured state of every shard, for
// core.System.Snapshot.
type ShardedState struct {
	shards []State
}

// CaptureState captures every shard into st, reusing st's storage.
func (s *Sharded) CaptureState(a *arena.Arena, st *ShardedState) {
	if len(st.shards) != len(s.shards) {
		for i := range st.shards {
			st.shards[i].Release(a)
		}
		st.shards = make([]State, len(s.shards))
	}
	for i, b := range s.shards {
		b.CaptureState(a, &st.shards[i])
	}
}

// RestoreState rewinds every shard to st.
func (s *Sharded) RestoreState(st *ShardedState) error {
	if len(st.shards) != len(s.shards) {
		return fmt.Errorf("broker: restoring %d shard states into %d shards", len(st.shards), len(s.shards))
	}
	for i, b := range s.shards {
		if err := b.RestoreState(&st.shards[i]); err != nil {
			return fmt.Errorf("broker: shard %d: %w", i, err)
		}
	}
	return nil
}

// Release returns st's large copies to a for reuse by later captures.
func (st *ShardedState) Release(a *arena.Arena) {
	for i := range st.shards {
		st.shards[i].Release(a)
	}
	st.shards = nil
}
