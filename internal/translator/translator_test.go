package translator

import (
	"testing"

	"deact/internal/addr"
	"deact/internal/memdev"
	"deact/internal/sim"
)

func dram() *memdev.Device {
	return memdev.New(memdev.Config{
		Name: "dram", Banks: 8,
		ReadLatency: sim.NS(60), WriteLatency: sim.NS(60), PortLatency: sim.NS(1),
	})
}

func cfg() Config {
	return Config{
		CacheBytes:   1 << 20, // 1MB as in the paper
		CacheBase:    addr.NPAddr((1 << 30) - (1 << 20)),
		Outstanding:  128,
		TagMatchTime: sim.NS(1) / 2, // one 2GHz cycle
	}
}

func newTr(t *testing.T) *Translator {
	t.Helper()
	tr, err := New(cfg(), dram(), 5)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{CacheBytes: 0, Outstanding: 1}).Validate(); err == nil {
		t.Fatal("zero cache accepted")
	}
	if err := (Config{CacheBytes: 63, Outstanding: 1}).Validate(); err == nil {
		t.Fatal("non-multiple cache accepted")
	}
	if err := (Config{CacheBytes: 64, Outstanding: 0}).Validate(); err == nil {
		t.Fatal("zero outstanding accepted")
	}
	if _, err := New(cfg(), nil, 1); err == nil {
		t.Fatal("nil dram accepted")
	}
}

func TestGeometry(t *testing.T) {
	tr := newTr(t)
	if tr.Sets() != (1<<20)/64 {
		t.Fatalf("sets = %d", tr.Sets())
	}
}

func TestMissThenUpdateThenHit(t *testing.T) {
	tr := newTr(t)
	done, _, hit := tr.Lookup(0, 0x40000)
	if hit {
		t.Fatal("cold lookup hit")
	}
	// One DRAM read (61ns) + tag match (0.5ns).
	if done < sim.NS(61) {
		t.Fatalf("lookup too fast: %v", done)
	}
	upDone := tr.Update(done, 0x40000, 777)
	if upDone <= done {
		t.Fatal("update took no time")
	}
	st := tr.Stats()
	if st.DRAMReads != 2 || st.DRAMWrites != 1 {
		t.Fatalf("update must read-modify-write: %+v", st)
	}
	_, fp, hit := tr.Lookup(upDone, 0x40000)
	if !hit || fp != 777 {
		t.Fatalf("lookup after update = (%v,%v)", fp, hit)
	}
	if tr.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", tr.HitRate())
	}
}

func TestUpdateOverwritesExisting(t *testing.T) {
	tr := newTr(t)
	tr.Update(0, 7, 100)
	tr.Update(0, 7, 200)
	_, fp, hit := tr.Lookup(0, 7)
	if !hit || fp != 200 {
		t.Fatalf("overwrite failed: (%v,%v)", fp, hit)
	}
}

func TestSetConflictEvictsWithinFourWays(t *testing.T) {
	tr := newTr(t)
	sets := tr.Sets()
	// Five node pages mapping to the same set: one must be evicted.
	var pages []addr.NPPage
	for i := 0; i < 5; i++ {
		pages = append(pages, addr.NPPage(uint64(i)*sets+3))
	}
	for i, np := range pages {
		tr.Update(0, np, addr.FPage(i+1))
	}
	hits := 0
	for _, np := range pages {
		if _, _, hit := tr.Lookup(0, np); hit {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("resident after 5 conflicting updates = %d, want 4 (random replacement)", hits)
	}
}

func TestInvalidate(t *testing.T) {
	tr := newTr(t)
	tr.Update(0, 9, 90)
	if !tr.Invalidate(9) {
		t.Fatal("invalidate missed")
	}
	if _, _, hit := tr.Lookup(0, 9); hit {
		t.Fatal("entry survived invalidate")
	}
	if tr.Invalidate(9) {
		t.Fatal("double invalidate reported success")
	}
}

func TestInvalidateAllCountsDirtyLines(t *testing.T) {
	tr := newTr(t)
	sets := tr.Sets()
	tr.Update(0, 1, 1)
	tr.Update(0, 2, 2)
	tr.Update(0, addr.NPPage(sets+1), 3) // same set as np=1
	if got := tr.InvalidateAll(); got != 2 {
		t.Fatalf("dirty lines = %d, want 2", got)
	}
	if _, _, hit := tr.Lookup(0, 1); hit {
		t.Fatal("entry survived InvalidateAll")
	}
}

func TestCorruptForgesTranslation(t *testing.T) {
	tr := newTr(t)
	tr.Update(0, 5, 50)
	tr.Corrupt(5, 666)
	_, fp, hit := tr.Lookup(0, 5)
	if !hit || fp != 666 {
		t.Fatalf("corrupt did not forge: (%v,%v)", fp, hit)
	}
	// Corrupting an absent page installs it.
	tr.Corrupt(6, 777)
	if _, fp, hit := tr.Lookup(0, 6); !hit || fp != 777 {
		t.Fatal("corrupt of absent entry failed")
	}
}

func TestOutstandingSlotsStall(t *testing.T) {
	c := cfg()
	c.Outstanding = 2
	tr, err := New(c, dram(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two requests occupy both slots until t=1000ns.
	for i := 0; i < 2; i++ {
		start := tr.ReserveSlot(0, func(s sim.Time) sim.Time { return sim.US(1) })
		if start != 0 {
			t.Fatalf("slot %d stalled with free list", i)
		}
	}
	// Third must wait for a slot.
	start := tr.ReserveSlot(0, func(s sim.Time) sim.Time { return s + sim.NS(10) })
	if start != sim.US(1) {
		t.Fatalf("third request started at %v, want 1µs", start)
	}
	if tr.Stats().SlotStallsPS == 0 {
		t.Fatal("stall time not recorded")
	}
}

func TestLookupChargesDRAMQueueing(t *testing.T) {
	tr := newTr(t)
	// Two concurrent lookups to the same set must serialize on the DRAM bank.
	d1, _, _ := tr.Lookup(0, 1)
	d2, _, _ := tr.Lookup(0, 1)
	if d2 <= d1 {
		t.Fatalf("concurrent lookups did not queue: %v then %v", d1, d2)
	}
}
