package translator

import (
	"deact/internal/arena"
	"deact/internal/rng"
	"deact/internal/sim"
)

// State is a Translator's mutable state for core.System.Snapshot: the
// translation-cache lines, the outstanding-mapping slot ring, the
// replacement RNG position and the counters. The DRAM device the lines
// live in is wiring, restored separately by its own state.
type State struct {
	rng     rng.State
	lines   []entry
	slots   []sim.Time
	slotIdx int
	stats   Stats
}

// CaptureState captures the translator into st, reusing st's storage where
// it fits and drawing the rest from a (nil allocates normally).
func (t *Translator) CaptureState(a *arena.Arena, st *State) {
	st.rng = t.rng.State()
	st.lines = arena.CopyInto(a, "snap.translator.lines", st.lines, t.lines)
	st.slots = arena.CopyInto(a, "snap.translator.slots", st.slots, t.slots)
	st.slotIdx = t.slotIdx
	st.stats = t.stats
}

// RestoreState rewinds the translator to st, copying into the translator's
// own arrays. The translator must be built from the configuration st was
// captured from.
func (t *Translator) RestoreState(st *State) {
	if len(st.lines) != len(t.lines) || len(st.slots) != len(t.slots) {
		panic("translator: RestoreState geometry mismatch")
	}
	t.rng.Restore(st.rng)
	copy(t.lines, st.lines)
	copy(t.slots, st.slots)
	t.slotIdx = st.slotIdx
	t.stats = st.stats
}

// Release returns st's arrays to a for reuse by later captures.
func (st *State) Release(a *arena.Arena) {
	arena.Release(a, "snap.translator.lines", st.lines)
	arena.Release(a, "snap.translator.slots", st.slots)
	st.lines, st.slots = nil, nil
}
