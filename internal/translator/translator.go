// Package translator implements DeACT's FAM translator (Figure 7): a unit
// in the node's memory controller that maps node-physical addresses to FAM
// addresses using an *unverified* FAM translation cache resident in the
// node's local DRAM (1MB, 4-way, 64B-line = 4 entries per set), plus the
// outstanding-mapping list that converts FAM-tagged responses back to node
// addresses.
//
// The translator deliberately performs no access control: translations
// cached in node DRAM are untrusted, and every FAM access it emits is vetted
// by the off-node STU (the V-flag protocol of §III-C). Security tests
// corrupt this cache on purpose and check that the STU still blocks the
// access.
//
// Invariants: Lookup/Update/ReserveSlot allocate nothing in steady state
// (one flat line array, fixed slot ring), random replacement draws from a
// per-translator seeded RNG (deterministic for a fixed seed), and the
// line array recycles through internal/arena across runs.
package translator

import (
	"fmt"

	"deact/internal/addr"
	"deact/internal/arena"
	"deact/internal/memdev"
	"deact/internal/rng"
	"deact/internal/sim"
)

// EntriesPerLine is how many (node page, FAM page) mappings fit one 64B
// line: 104 bits per entry (52b tag + 52b value), 4 per access (§III-C).
const EntriesPerLine = 4

// Config sizes the translator.
type Config struct {
	// CacheBytes is the FAM translation cache size in local DRAM (1MB in
	// the paper).
	CacheBytes uint64
	// CacheBase is the DRAM address where the cache region starts (the
	// node reserves this region; the OS must not allocate it).
	CacheBase addr.NPAddr
	// Outstanding is the outstanding-mapping-list depth (128 in Table II).
	Outstanding int
	// TagMatchTime is the comparator+mux time after the DRAM line arrives
	// (one cycle; the four comparators run concurrently, Figure 7b).
	TagMatchTime sim.Time
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.CacheBytes == 0 || c.CacheBytes%addr.BlockSize != 0:
		return fmt.Errorf("translator: CacheBytes %d must be a positive multiple of 64", c.CacheBytes)
	case c.Outstanding <= 0:
		return fmt.Errorf("translator: Outstanding must be positive")
	}
	return nil
}

// Stats aggregates translator activity.
type Stats struct {
	Hits         uint64 // FAM translation cache hits (Figure 10's DeACT series)
	Misses       uint64
	DRAMReads    uint64 // translation-cache line reads
	DRAMWrites   uint64 // translation-cache line updates
	Invalidates  uint64
	SlotStallsPS sim.Time // time spent waiting for an outstanding-list slot
}

type entry struct {
	np    addr.NPPage
	fp    addr.FPage
	valid bool
}

// Translator is one node's FAM translator.
type Translator struct {
	cfg  Config
	dram *memdev.Device
	rng  *rng.Rand

	sets  uint64
	lines []entry // flat [sets × EntriesPerLine], one backing allocation

	slots   []sim.Time // completion time of the request occupying each slot
	slotIdx int

	stats Stats
}

// New builds a translator whose cache lines live in dram at cfg.CacheBase.
func New(cfg Config, dram *memdev.Device, seed int64) (*Translator, error) {
	return NewInArena(nil, cfg, dram, seed)
}

// NewInArena is New drawing the line array — the second-largest single
// allocation a DeACT system makes — and the outstanding-list slots from a.
// A nil arena allocates normally.
func NewInArena(a *arena.Arena, cfg Config, dram *memdev.Device, seed int64) (*Translator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if dram == nil {
		return nil, fmt.Errorf("translator: dram device required")
	}
	sets := cfg.CacheBytes / addr.BlockSize
	t := &Translator{
		cfg:   cfg,
		dram:  dram,
		rng:   rng.New(seed),
		sets:  sets,
		lines: arena.Slice[entry](a, "translator.lines", int(sets*EntriesPerLine)),
		slots: arena.Slice[sim.Time](a, "translator.slots", cfg.Outstanding),
	}
	return t, nil
}

// Recycle returns the translator's arrays to a for the next run's
// construction. The translator must not be used afterwards.
func (t *Translator) Recycle(a *arena.Arena) {
	arena.Release(a, "translator.lines", t.lines)
	arena.Release(a, "translator.slots", t.slots)
	t.lines, t.slots = nil, nil
}

// line returns the 4-entry cache line of a set.
func (t *Translator) line(set uint64) []entry {
	return t.lines[set*EntriesPerLine : (set+1)*EntriesPerLine]
}

// setFor returns the set index for a node page (modulus placement, §III-C).
func (t *Translator) setFor(np addr.NPPage) uint64 { return uint64(np) % t.sets }

// lineAddr returns the DRAM address of a set's 64B line.
func (t *Translator) lineAddr(set uint64) uint64 {
	return uint64(t.cfg.CacheBase) + set*addr.BlockSize
}

// Lookup reads the translation-cache line for np from local DRAM and tag
// matches (Figure 7 a–b). It returns the completion time, the FAM page on a
// hit, and whether it hit.
func (t *Translator) Lookup(now sim.Time, np addr.NPPage) (done sim.Time, fp addr.FPage, hit bool) {
	set := t.setFor(np)
	done = t.dram.Access(now, t.lineAddr(set), false)
	t.stats.DRAMReads++
	done += t.cfg.TagMatchTime
	for _, e := range t.line(set) {
		if e.valid && e.np == np {
			t.stats.Hits++
			return done, e.fp, true
		}
	}
	t.stats.Misses++
	return done, 0, false
}

// Update installs np → fp after a mapping response from the STU (Figure 6
// step 5): the 64B line is read, one of its four entries replaced at
// random, and the line written back (§III-C: random replacement avoids
// extra DRAM state traffic).
func (t *Translator) Update(now sim.Time, np addr.NPPage, fp addr.FPage) (done sim.Time) {
	set := t.setFor(np)
	done = t.dram.Access(now, t.lineAddr(set), false)
	t.stats.DRAMReads++
	line := t.line(set)
	slot := -1
	for i, e := range line {
		if e.valid && e.np == np {
			slot = i
			break
		}
		if !e.valid && slot < 0 {
			slot = i
		}
	}
	if slot < 0 {
		slot = t.rng.Intn(EntriesPerLine)
	}
	line[slot] = entry{np: np, fp: fp, valid: true}
	done = t.dram.Access(done, t.lineAddr(set), true)
	t.stats.DRAMWrites++
	return done
}

// ReserveSlot claims an outstanding-mapping-list slot for a request whose
// response will arrive at completion. If all slots are occupied the request
// stalls until one frees (the 128-request limit of Table II). It returns
// the time at which the request may proceed.
func (t *Translator) ReserveSlot(now sim.Time, completion func(start sim.Time) sim.Time) sim.Time {
	// Round-robin over slots approximates "wait for the earliest free".
	s := &t.slots[t.slotIdx]
	t.slotIdx = (t.slotIdx + 1) % len(t.slots)
	start := now
	if *s > start {
		t.stats.SlotStallsPS += *s - start
		start = *s
	}
	*s = completion(start)
	return start
}

// Invalidate drops np's cached translation if present (single-page
// system-level shootdown).
func (t *Translator) Invalidate(np addr.NPPage) bool {
	line := t.line(t.setFor(np))
	for i, e := range line {
		if e.valid && e.np == np {
			line[i].valid = false
			t.stats.Invalidates++
			return true
		}
	}
	return false
}

// InvalidateAll clears the whole translation cache (job migration, §VI:
// "excess DRAM writes to invalidate system-level mappings"). It returns the
// number of lines that held valid entries, which the caller converts to
// DRAM write traffic.
func (t *Translator) InvalidateAll() (dirtyLines uint64) {
	for set := uint64(0); set < t.sets; set++ {
		line := t.line(set)
		touched := false
		for i := range line {
			if line[i].valid {
				line[i].valid = false
				touched = true
			}
		}
		if touched {
			dirtyLines++
			t.stats.Invalidates++
		}
	}
	return dirtyLines
}

// Corrupt forges the cached translation for np to point at fp, bypassing
// the STU-mediated update path. It exists for security testing: DeACT's
// threat model says the node (and thus this cache) is untrusted, and the
// STU must catch whatever comes out of it.
func (t *Translator) Corrupt(np addr.NPPage, fp addr.FPage) {
	line := t.line(t.setFor(np))
	for i, e := range line {
		if e.valid && e.np == np {
			line[i].fp = fp
			return
		}
	}
	line[t.rng.Intn(EntriesPerLine)] = entry{np: np, fp: fp, valid: true}
}

// Stats returns a copy of the counters.
func (t *Translator) Stats() Stats { return t.stats }

// HitRate returns the FAM translation cache hit rate (Figure 10).
func (t *Translator) HitRate() float64 {
	tot := t.stats.Hits + t.stats.Misses
	if tot == 0 {
		return 0
	}
	return float64(t.stats.Hits) / float64(tot)
}

// Sets returns the number of cache sets (diagnostics).
func (t *Translator) Sets() uint64 { return t.sets }
