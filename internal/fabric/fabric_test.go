package fabric

import (
	"testing"

	"deact/internal/sim"
)

func TestValidate(t *testing.T) {
	if err := (Config{Latency: 0}).Validate(); err == nil {
		t.Fatal("zero latency accepted")
	}
	if err := (Config{Latency: sim.NS(500)}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTraverseLatency(t *testing.T) {
	f := New(Config{Latency: sim.NS(500), PacketTime: sim.NS(2)})
	if got := f.Traverse(0, ToFAM); got != sim.NS(502) {
		t.Fatalf("arrive = %v, want 502ns", got)
	}
	if f.Packets() != 1 || f.Latency() != sim.NS(500) {
		t.Fatal("accessors wrong")
	}
}

func TestContentionSerializes(t *testing.T) {
	f := New(Config{Latency: sim.NS(500), PacketTime: sim.NS(10)})
	a1 := f.Traverse(0, ToFAM)
	a2 := f.Traverse(0, ToFAM) // concurrent packet queues behind the first
	if a2 != a1+sim.NS(10) {
		t.Fatalf("no contention: a1=%v a2=%v", a1, a2)
	}
	if f.MaxObservedDelay(ToFAM) != a2 {
		t.Fatalf("max delay %v, want %v", f.MaxObservedDelay(ToFAM), a2)
	}
	if f.MaxObservedDelay(ToNode) != 0 {
		t.Fatalf("response direction saw no packets, max delay %v", f.MaxObservedDelay(ToNode))
	}
}

func TestRoundTrip(t *testing.T) {
	f := New(Config{Latency: sim.NS(500), PacketTime: 0})
	var remoteAt sim.Time
	done := f.RoundTrip(sim.NS(100), func(arrive sim.Time) sim.Time {
		remoteAt = arrive
		return arrive + sim.NS(60) // remote memory service
	})
	if remoteAt != sim.NS(600) {
		t.Fatalf("remote served at %v, want 600ns", remoteAt)
	}
	if done != sim.NS(1160) {
		t.Fatalf("round trip done %v, want 1160ns", done)
	}
}

func TestZeroPacketTimeNoContention(t *testing.T) {
	f := New(Config{Latency: sim.NS(100)})
	a1 := f.Traverse(0, ToFAM)
	a2 := f.Traverse(0, ToFAM)
	if a1 != a2 {
		t.Fatal("zero packet time must not serialize")
	}
}

func TestDirectionsAreIndependentLinks(t *testing.T) {
	// A response reservation far in the future must not delay a request
	// issued in the gap — the bug that serialized whole nodes when both
	// directions shared one reservation window.
	f := New(Config{Latency: sim.NS(500), PacketTime: sim.NS(10)})
	f.Traverse(sim.NS(1000), ToNode) // response packet at t=1000
	req := f.Traverse(0, ToFAM)      // request at t=0
	if req != sim.NS(510) {
		t.Fatalf("request delayed by response-link reservation: %v", req)
	}
	if f.BusyTime() != sim.NS(20) {
		t.Fatalf("busy = %v", f.BusyTime())
	}
}
