package fabric

import "deact/internal/sim"

// State is a Fabric's mutable state for core.System.Snapshot: both link
// calendars, the packet counter and the observed-delay watermarks.
type State struct {
	links    [2]sim.ServerState
	packets  uint64
	maxDelay [2]sim.Time
}

// CaptureState captures the fabric into st, reusing st's storage.
func (f *Fabric) CaptureState(st *State) {
	f.links[ToFAM].CaptureState(&st.links[ToFAM])
	f.links[ToNode].CaptureState(&st.links[ToNode])
	st.packets = f.packets
	st.maxDelay = f.maxDelay
}

// RestoreState rewinds the fabric to st.
func (f *Fabric) RestoreState(st *State) {
	f.links[ToFAM].RestoreState(&st.links[ToFAM])
	f.links[ToNode].RestoreState(&st.links[ToNode])
	f.packets = st.packets
	f.maxDelay = st.maxDelay
}
