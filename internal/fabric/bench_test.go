package fabric

import (
	"testing"

	"deact/internal/sim"
)

// benchClock is a manually advanced sim.Clock standing in for the engine.
type benchClock struct{ now sim.Time }

func (c *benchClock) Now() sim.Time { return c.now }

// BenchmarkFabricTraverse measures one packet traversal on the batched
// per-direction link model, alternating directions the way request/response
// pairs do. "inorder" exercises the tail fast path; "outoforder" jitters
// arrivals backward to force gap bookings. allocs/op must be zero in steady
// state.
func BenchmarkFabricTraverse(b *testing.B) {
	run := func(b *testing.B, jitter sim.Time) {
		f := New(Config{Latency: sim.NS(500), PacketTime: sim.NS(50)})
		clk := &benchClock{}
		f.Bind(clk)
		b.ReportAllocs()
		b.ResetTimer()
		var now sim.Time
		for i := 0; i < b.N; i++ {
			now += 120
			// The engine clock trails the arrival front by the in-flight
			// window, as real event dispatch does.
			if now > 2*sim.Microsecond {
				clk.now = now - 2*sim.Microsecond
			}
			arrive := now
			if jitter != 0 {
				back := (sim.Time(i) * 7919) % jitter
				if back < arrive {
					arrive -= back
				}
			}
			dir := ToFAM
			if i%2 == 1 {
				dir = ToNode
			}
			f.Traverse(arrive, dir)
		}
	}
	b.Run("inorder", func(b *testing.B) { run(b, 0) })
	b.Run("outoforder", func(b *testing.B) { run(b, 2000) })
}
