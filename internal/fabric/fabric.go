// Package fabric models the memory-semantic system interconnect (Gen-Z /
// CXL-like) between compute nodes and the FAM pool: a fixed one-way
// propagation latency (500ns default, Table II) plus shared per-direction
// serialization so that traffic from multiple nodes contends (Figure 16's
// effect).
//
// The two directions are independent links. Modeling them as one shared
// resource would make a response packet's reservation (which happens ~a
// round trip after its request) block unrelated *requests* issued in the
// gap — the "next free time" reservation discipline reserves across idle
// gaps, so request and response streams must not share a reservation
// window.
//
// Each direction is a batched sim.Server: in-order packets pay a tail
// compare, out-of-order ones consult the link's gap calendar, and binding
// the engine clock retires past idle windows exactly.
package fabric

import (
	"fmt"

	"deact/internal/sim"
)

// Direction selects a fabric link.
type Direction int

// Link directions.
const (
	// ToFAM carries request packets from the nodes to the memory pool.
	ToFAM Direction = iota
	// ToNode carries response packets back.
	ToNode
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case ToFAM:
		return "to-fam"
	case ToNode:
		return "to-node"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Config describes the interconnect.
type Config struct {
	// Latency is the one-way propagation delay.
	Latency sim.Time
	// PacketTime is the serialization time of one 64B packet at the shared
	// fabric interface; it is what creates inter-node contention.
	PacketTime sim.Time
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Latency == 0 {
		return fmt.Errorf("fabric: latency must be non-zero")
	}
	return nil
}

// Fabric is the shared interconnect.
type Fabric struct {
	cfg      Config
	links    [2]sim.Server // indexed by Direction
	packets  uint64
	maxDelay [2]sim.Time // worst observed one-way delay per direction
}

// New builds a fabric. Invalid configs panic (they are validated by
// core.Config first).
func New(cfg Config) *Fabric {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Fabric{cfg: cfg}
}

// Bind attaches the engine clock to both link directions (see sim.Clock).
func (f *Fabric) Bind(c sim.Clock) {
	f.links[ToFAM].Bind(c)
	f.links[ToNode].Bind(c)
}

// Traverse sends one 64B packet across the given direction's link starting
// at now and returns its arrival time at the far side: queueing at the
// shared link, serialization, then propagation.
func (f *Fabric) Traverse(now sim.Time, dir Direction) sim.Time {
	_, sent := f.links[dir].Acquire(now, f.cfg.PacketTime)
	f.packets++
	arrive := sent + f.cfg.Latency
	if d := arrive - now; d > f.maxDelay[dir] {
		f.maxDelay[dir] = d
	}
	return arrive
}

// RoundTrip sends a request toward FAM and (after remote service completing
// at the time remote returns) its response packet, returning when the
// response arrives back at the node.
func (f *Fabric) RoundTrip(now sim.Time, remote func(arrive sim.Time) sim.Time) sim.Time {
	arrive := f.Traverse(now, ToFAM)
	done := remote(arrive)
	return f.Traverse(done, ToNode)
}

// Packets returns the number of packets carried in both directions.
func (f *Fabric) Packets() uint64 { return f.packets }

// Latency returns the configured one-way latency.
func (f *Fabric) Latency() sim.Time { return f.cfg.Latency }

// MaxObservedDelay returns the worst end-to-end one-way delay seen in the
// given direction, including queueing (contention diagnostics for the
// Figure 16 sweep). Request and response delays are tracked separately:
// the directions are independent links with different contention, and
// mixing them hid which side of the fabric saturated.
func (f *Fabric) MaxObservedDelay(dir Direction) sim.Time { return f.maxDelay[dir] }

// BusyTime returns the combined reservation time of both links.
func (f *Fabric) BusyTime() sim.Time {
	return f.links[ToFAM].BusyTime() + f.links[ToNode].BusyTime()
}
