package experiments

import (
	"context"
	"fmt"

	"deact/internal/core"
	"deact/internal/sim"
	"deact/internal/stats"
)

// Figure3 regenerates the motivation slowdown chart: I-FAM slowdown with
// respect to E-FAM per benchmark (paper: up to 20.6× for sssp).
func (r *Runner) Figure3(ctx context.Context) (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 3: Slowdown of I-FAM wrt E-FAM (×)",
		XLabels: r.opts.benchmarks(),
	}
	pairs, err := r.pairedDefaults(ctx, core.EFAM, core.IFAM, r.opts.benchmarks())
	if err != nil {
		return t, err
	}
	var slow []float64
	for _, p := range pairs {
		slow = append(slow, p[0].Speedup(p[1]))
	}
	err = t.AddSeries("I-FAM slowdown", slow)
	return t, err
}

// Figure4 regenerates the AT vs non-AT request breakdown at FAM for E-FAM
// and I-FAM (paper: canl 44.36% → 84.13%, cactus 1.81% → 53.69%).
func (r *Runner) Figure4(ctx context.Context) (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 4: Address-translation share of FAM requests (%)",
		XLabels: r.opts.benchmarks(),
		Format:  "%.1f",
	}
	schemes := []core.Scheme{core.EFAM, core.IFAM}
	rows, err := r.perBenchmarkSchemes(ctx, schemes, func(res core.Result) float64 { return res.ATFraction * 100 })
	if err != nil {
		return t, err
	}
	for i, scheme := range schemes {
		if err := t.AddSeries(scheme.String()+" AT", rows[i]); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure9 regenerates the access-control-metadata hit-rate comparison
// (paper: DeACT-N lifts canl/sssp/cactus from <60% toward 76–99%).
func (r *Runner) Figure9(ctx context.Context) (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 9: Access control metadata hit rate (%)",
		XLabels: r.opts.benchmarks(),
		Format:  "%.1f",
	}
	schemes := []core.Scheme{core.IFAM, core.DeACTW, core.DeACTN}
	rows, err := r.perBenchmarkSchemes(ctx, schemes, func(res core.Result) float64 { return res.ACMHitRate * 100 })
	if err != nil {
		return t, err
	}
	for i, scheme := range schemes {
		if err := t.AddSeries(scheme.String(), rows[i]); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure10 regenerates the FAM address-translation hit-rate comparison
// (paper: canl 46.44% in I-FAM vs 95.88% in DeACT).
func (r *Runner) Figure10(ctx context.Context) (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 10: FAM address translation hit rate (%)",
		XLabels: r.opts.benchmarks(),
		Format:  "%.1f",
	}
	schemes := []core.Scheme{core.IFAM, core.DeACTN}
	rows, err := r.perBenchmarkSchemes(ctx, schemes, func(res core.Result) float64 { return res.TranslationHitRate * 100 })
	if err != nil {
		return t, err
	}
	for i, scheme := range schemes {
		name := scheme.String()
		if scheme == core.DeACTN {
			name = "DeACT"
		}
		if err := t.AddSeries(name, rows[i]); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure11 regenerates the percentage of AT requests at FAM for I-FAM,
// DeACT-W and DeACT-N (paper: 23.97% → 11.82% → 1.77% on average).
func (r *Runner) Figure11(ctx context.Context) (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 11: Address-translation share of FAM requests (%)",
		XLabels: r.opts.benchmarks(),
		Format:  "%.1f",
	}
	schemes := []core.Scheme{core.IFAM, core.DeACTW, core.DeACTN}
	rows, err := r.perBenchmarkSchemes(ctx, schemes, func(res core.Result) float64 { return res.ATFraction * 100 })
	if err != nil {
		return t, err
	}
	for i, scheme := range schemes {
		if err := t.AddSeries(scheme.String(), rows[i]); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure12 regenerates the headline performance chart: per-benchmark
// performance normalized to E-FAM for all four schemes. The whole
// scheme×benchmark grid is one batch; the E-FAM baseline deduplicates
// against its row in the grid.
func (r *Runner) Figure12(ctx context.Context) (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 12: Performance normalized to E-FAM",
		XLabels: r.opts.benchmarks(),
	}
	benches := r.opts.benchmarks()
	schemes := core.Schemes()
	cfgs := make([]core.Config, 0, len(benches)*len(schemes))
	baseRow := 0
	for i, scheme := range schemes {
		if scheme == core.EFAM {
			baseRow = i
		}
		for _, b := range benches {
			cfgs = append(cfgs, r.config(scheme, b, nil))
		}
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return t, err
	}
	base := res[baseRow*len(benches) : (baseRow+1)*len(benches)]
	for i, scheme := range schemes {
		var vals []float64
		for j := range benches {
			vals = append(vals, res[i*len(benches)+j].Speedup(base[j]))
		}
		if err := t.AddSeries(scheme.String(), vals); err != nil {
			return t, err
		}
	}
	return t, nil
}

// sensitivitySweep builds a Figure 13/15-style table: one series per
// sensitivity group, one column per sweep point, values = geomean DeACT-N
// speedup over I-FAM at that point. Every (group, point, member) run —
// DeACT-N and its I-FAM baseline — is submitted as one declarative batch,
// so the entire sweep overlaps across groups and sweep points.
func (r *Runner) sensitivitySweep(ctx context.Context, title string, labels []string, mutates []func(*core.Config)) (stats.Table, error) {
	t := stats.Table{Title: title, XLabels: labels}
	groups := r.sensitivityGroups()
	var cfgs []core.Config
	for _, g := range groups {
		for i := range labels {
			for _, b := range g.members {
				cfgs = append(cfgs,
					r.config(core.DeACTN, b, mutates[i]),
					r.config(core.IFAM, b, mutates[i]))
			}
		}
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return t, err
	}
	idx := 0
	for _, g := range groups {
		if len(g.members) == 0 {
			continue
		}
		var vals []float64
		for range labels {
			var ratios []float64
			for range g.members {
				ratios = append(ratios, res[idx].Speedup(res[idx+1]))
				idx += 2
			}
			vals = append(vals, stats.Geomean(ratios))
		}
		if err := t.AddSeries(g.name, vals); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure13 sweeps the STU cache size (256–4096 entries; paper: the DeACT
// advantage shrinks as the STU grows).
func (r *Runner) Figure13(ctx context.Context) (stats.Table, error) {
	sizes := []int{256, 512, 1024, 2048, 4096}
	var labels []string
	var mutates []func(*core.Config)
	for _, s := range sizes {
		s := s
		labels = append(labels, fmt.Sprintf("%d", s))
		mutates = append(mutates, func(c *core.Config) { c.STUEntries = s })
	}
	return r.sensitivitySweep(ctx, "Figure 13: DeACT-N speedup wrt I-FAM vs STU cache entries", labels, mutates)
}

// AssociativitySweep reproduces the §V-D1 text experiment: STU cache
// associativity 4 → 64 (paper: improvement decreases and saturates).
func (r *Runner) AssociativitySweep(ctx context.Context) (stats.Table, error) {
	assocs := []int{4, 8, 32, 64}
	var labels []string
	var mutates []func(*core.Config)
	for _, a := range assocs {
		a := a
		labels = append(labels, fmt.Sprintf("%d-way", a))
		mutates = append(mutates, func(c *core.Config) { c.STUWays = a })
	}
	return r.sensitivitySweep(ctx, "§V-D1: DeACT-N speedup wrt I-FAM vs STU associativity", labels, mutates)
}

// Figure14 sweeps the ACM width (8/16/32 bits) for DeACT-W and DeACT-N,
// normalized to I-FAM at the same width. All groups, schemes and widths go
// out as one batch.
func (r *Runner) Figure14(ctx context.Context) (stats.Table, error) {
	widths := []uint{8, 16, 32}
	var labels []string
	var mutates []func(*core.Config)
	for _, w := range widths {
		w := w
		labels = append(labels, fmt.Sprintf("%db", w))
		mutates = append(mutates, func(c *core.Config) { c.Layout.ACMBits = w })
	}
	t := stats.Table{Title: "Figure 14: speedup wrt I-FAM vs ACM size", XLabels: labels}
	groups := r.sensitivityGroups()
	schemes := []core.Scheme{core.DeACTW, core.DeACTN}
	var cfgs []core.Config
	for _, g := range groups {
		for _, scheme := range schemes {
			for i := range widths {
				for _, b := range g.members {
					cfgs = append(cfgs,
						r.config(scheme, b, mutates[i]),
						r.config(core.IFAM, b, mutates[i]))
				}
			}
		}
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return t, err
	}
	idx := 0
	for _, g := range groups {
		if len(g.members) == 0 {
			continue
		}
		for _, scheme := range schemes {
			var vals []float64
			for range widths {
				var ratios []float64
				for range g.members {
					ratios = append(ratios, res[idx].Speedup(res[idx+1]))
					idx += 2
				}
				vals = append(vals, stats.Geomean(ratios))
			}
			if err := t.AddSeries(fmt.Sprintf("%s %s", g.name, scheme), vals); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// PairsPerWaySweep reproduces the §V-D2 experiment on how many (tag, ACM)
// pairs a DeACT-N way holds (paper: 1 pair ≈ DeACT-W; more pairs → faster).
func (r *Runner) PairsPerWaySweep(ctx context.Context) (stats.Table, error) {
	pairs := []int{1, 2, 3}
	var labels []string
	var mutates []func(*core.Config)
	for _, p := range pairs {
		p := p
		labels = append(labels, fmt.Sprintf("%d pair", p))
		mutates = append(mutates, func(c *core.Config) {
			c.PairsPerWay = p
			c.Layout.ACMBits = 8 // the paper varies pairs at 8-bit ACM
		})
	}
	return r.sensitivitySweep(ctx, "§V-D2: DeACT-N speedup wrt I-FAM vs ACM pairs per way (8-bit ACM)", labels, mutates)
}

// Figure15 sweeps the fabric latency 100ns–6µs (paper: longer fabric →
// bigger DeACT advantage; 1.79× even at 100ns).
func (r *Runner) Figure15(ctx context.Context) (stats.Table, error) {
	lats := []sim.Time{sim.NS(100), sim.NS(250), sim.NS(500), sim.NS(750), sim.US(1), sim.US(3), sim.US(6)}
	var labels []string
	var mutates []func(*core.Config)
	for _, l := range lats {
		l := l
		labels = append(labels, nsLabel(l))
		mutates = append(mutates, func(c *core.Config) { c.FabricLatency = l })
	}
	return r.sensitivitySweep(ctx, "Figure 15: DeACT-N speedup wrt I-FAM vs fabric latency", labels, mutates)
}

// Figure16 sweeps the node count 1–8 for pf and dc (paper: more nodes
// sharing the fabric → bigger DeACT advantage; dc 2.92× → 3.26×).
func (r *Runner) Figure16(ctx context.Context) (stats.Table, error) {
	counts := []int{1, 2, 4, 8}
	var labels []string
	var mutates []func(*core.Config)
	for _, n := range counts {
		n := n
		labels = append(labels, fmt.Sprintf("%d", n))
		mutates = append(mutates, func(c *core.Config) { c.Nodes = n })
	}
	t := stats.Table{Title: "Figure 16: DeACT-N speedup wrt I-FAM vs number of nodes", XLabels: labels}
	var benches []string
	for _, bench := range []string{"pf", "dc"} {
		for _, b := range r.opts.benchmarks() {
			if b == bench {
				benches = append(benches, bench)
				break
			}
		}
	}
	var cfgs []core.Config
	for _, bench := range benches {
		for i := range counts {
			cfgs = append(cfgs,
				r.config(core.DeACTN, bench, mutates[i]),
				r.config(core.IFAM, bench, mutates[i]))
		}
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return t, err
	}
	idx := 0
	for _, bench := range benches {
		var vals []float64
		for range counts {
			vals = append(vals, res[idx].Speedup(res[idx+1]))
			idx += 2
		}
		if err := t.AddSeries(bench, vals); err != nil {
			return t, err
		}
	}
	return t, nil
}
