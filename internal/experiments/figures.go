package experiments

import (
	"fmt"

	"deact/internal/core"
	"deact/internal/sim"
	"deact/internal/stats"
)

// Figure3 regenerates the motivation slowdown chart: I-FAM slowdown with
// respect to E-FAM per benchmark (paper: up to 20.6× for sssp).
func (h *Harness) Figure3() (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 3: Slowdown of I-FAM wrt E-FAM (×)",
		XLabels: h.opts.benchmarks(),
	}
	var slow []float64
	for _, b := range h.opts.benchmarks() {
		rE, err := h.runDefault(core.EFAM, b)
		if err != nil {
			return t, err
		}
		rI, err := h.runDefault(core.IFAM, b)
		if err != nil {
			return t, err
		}
		slow = append(slow, rE.Speedup(rI))
	}
	err := t.AddSeries("I-FAM slowdown", slow)
	return t, err
}

// Figure4 regenerates the AT vs non-AT request breakdown at FAM for E-FAM
// and I-FAM (paper: canl 44.36% → 84.13%, cactus 1.81% → 53.69%).
func (h *Harness) Figure4() (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 4: Address-translation share of FAM requests (%)",
		XLabels: h.opts.benchmarks(),
		Format:  "%.1f",
	}
	for _, scheme := range []core.Scheme{core.EFAM, core.IFAM} {
		vals, err := h.perBenchmark(scheme, func(r core.Result) float64 { return r.ATFraction * 100 })
		if err != nil {
			return t, err
		}
		if err := t.AddSeries(scheme.String()+" AT", vals); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure9 regenerates the access-control-metadata hit-rate comparison
// (paper: DeACT-N lifts canl/sssp/cactus from <60% toward 76–99%).
func (h *Harness) Figure9() (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 9: Access control metadata hit rate (%)",
		XLabels: h.opts.benchmarks(),
		Format:  "%.1f",
	}
	for _, scheme := range []core.Scheme{core.IFAM, core.DeACTW, core.DeACTN} {
		vals, err := h.perBenchmark(scheme, func(r core.Result) float64 { return r.ACMHitRate * 100 })
		if err != nil {
			return t, err
		}
		if err := t.AddSeries(scheme.String(), vals); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure10 regenerates the FAM address-translation hit-rate comparison
// (paper: canl 46.44% in I-FAM vs 95.88% in DeACT).
func (h *Harness) Figure10() (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 10: FAM address translation hit rate (%)",
		XLabels: h.opts.benchmarks(),
		Format:  "%.1f",
	}
	for _, scheme := range []core.Scheme{core.IFAM, core.DeACTN} {
		vals, err := h.perBenchmark(scheme, func(r core.Result) float64 { return r.TranslationHitRate * 100 })
		if err != nil {
			return t, err
		}
		name := scheme.String()
		if scheme == core.DeACTN {
			name = "DeACT"
		}
		if err := t.AddSeries(name, vals); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure11 regenerates the percentage of AT requests at FAM for I-FAM,
// DeACT-W and DeACT-N (paper: 23.97% → 11.82% → 1.77% on average).
func (h *Harness) Figure11() (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 11: Address-translation share of FAM requests (%)",
		XLabels: h.opts.benchmarks(),
		Format:  "%.1f",
	}
	for _, scheme := range []core.Scheme{core.IFAM, core.DeACTW, core.DeACTN} {
		vals, err := h.perBenchmark(scheme, func(r core.Result) float64 { return r.ATFraction * 100 })
		if err != nil {
			return t, err
		}
		if err := t.AddSeries(scheme.String(), vals); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure12 regenerates the headline performance chart: per-benchmark
// performance normalized to E-FAM for all four schemes.
func (h *Harness) Figure12() (stats.Table, error) {
	t := stats.Table{
		Title:   "Figure 12: Performance normalized to E-FAM",
		XLabels: h.opts.benchmarks(),
	}
	base := map[string]core.Result{}
	for _, b := range h.opts.benchmarks() {
		r, err := h.runDefault(core.EFAM, b)
		if err != nil {
			return t, err
		}
		base[b] = r
	}
	for _, scheme := range core.Schemes() {
		var vals []float64
		for _, b := range h.opts.benchmarks() {
			r, err := h.runDefault(scheme, b)
			if err != nil {
				return t, err
			}
			vals = append(vals, r.Speedup(base[b]))
		}
		if err := t.AddSeries(scheme.String(), vals); err != nil {
			return t, err
		}
	}
	return t, nil
}

// sensitivitySweep builds a Figure 13/15-style table: one series per
// sensitivity group, one column per sweep point, values = geomean DeACT-N
// speedup over I-FAM at that point.
func (h *Harness) sensitivitySweep(title string, labels []string, keys []string, mutates []func(*core.Config)) (stats.Table, error) {
	t := stats.Table{Title: title, XLabels: labels}
	for _, g := range h.sensitivityGroups() {
		if len(g.members) == 0 {
			continue
		}
		var vals []float64
		for i := range labels {
			v, err := h.speedupOverIFAM(g, core.DeACTN, keys[i], mutates[i])
			if err != nil {
				return t, err
			}
			vals = append(vals, v)
		}
		if err := t.AddSeries(g.name, vals); err != nil {
			return t, err
		}
	}
	return t, nil
}

// Figure13 sweeps the STU cache size (256–4096 entries; paper: the DeACT
// advantage shrinks as the STU grows).
func (h *Harness) Figure13() (stats.Table, error) {
	sizes := []int{256, 512, 1024, 2048, 4096}
	var labels, keys []string
	var mutates []func(*core.Config)
	for _, s := range sizes {
		s := s
		labels = append(labels, fmt.Sprintf("%d", s))
		keys = append(keys, fmt.Sprintf("stu=%d", s))
		mutates = append(mutates, func(c *core.Config) { c.STUEntries = s })
	}
	return h.sensitivitySweep("Figure 13: DeACT-N speedup wrt I-FAM vs STU cache entries", labels, keys, mutates)
}

// AssociativitySweep reproduces the §V-D1 text experiment: STU cache
// associativity 4 → 64 (paper: improvement decreases and saturates).
func (h *Harness) AssociativitySweep() (stats.Table, error) {
	assocs := []int{4, 8, 32, 64}
	var labels, keys []string
	var mutates []func(*core.Config)
	for _, a := range assocs {
		a := a
		labels = append(labels, fmt.Sprintf("%d-way", a))
		keys = append(keys, fmt.Sprintf("assoc=%d", a))
		mutates = append(mutates, func(c *core.Config) { c.STUWays = a })
	}
	return h.sensitivitySweep("§V-D1: DeACT-N speedup wrt I-FAM vs STU associativity", labels, keys, mutates)
}

// Figure14 sweeps the ACM width (8/16/32 bits) for DeACT-W and DeACT-N,
// normalized to I-FAM at the same width.
func (h *Harness) Figure14() (stats.Table, error) {
	widths := []uint{8, 16, 32}
	var labels []string
	for _, w := range widths {
		labels = append(labels, fmt.Sprintf("%db", w))
	}
	t := stats.Table{Title: "Figure 14: speedup wrt I-FAM vs ACM size", XLabels: labels}
	for _, g := range h.sensitivityGroups() {
		if len(g.members) == 0 {
			continue
		}
		for _, scheme := range []core.Scheme{core.DeACTW, core.DeACTN} {
			var vals []float64
			for _, w := range widths {
				w := w
				key := fmt.Sprintf("acm=%d", w)
				v, err := h.speedupOverIFAM(g, scheme, key, func(c *core.Config) { c.Layout.ACMBits = w })
				if err != nil {
					return t, err
				}
				vals = append(vals, v)
			}
			if err := t.AddSeries(fmt.Sprintf("%s %s", g.name, scheme), vals); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// PairsPerWaySweep reproduces the §V-D2 experiment on how many (tag, ACM)
// pairs a DeACT-N way holds (paper: 1 pair ≈ DeACT-W; more pairs → faster).
func (h *Harness) PairsPerWaySweep() (stats.Table, error) {
	pairs := []int{1, 2, 3}
	var labels, keys []string
	var mutates []func(*core.Config)
	for _, p := range pairs {
		p := p
		labels = append(labels, fmt.Sprintf("%d pair", p))
		keys = append(keys, fmt.Sprintf("pairs=%d", p))
		mutates = append(mutates, func(c *core.Config) {
			c.PairsPerWay = p
			c.Layout.ACMBits = 8 // the paper varies pairs at 8-bit ACM
		})
	}
	return h.sensitivitySweep("§V-D2: DeACT-N speedup wrt I-FAM vs ACM pairs per way (8-bit ACM)", labels, keys, mutates)
}

// Figure15 sweeps the fabric latency 100ns–6µs (paper: longer fabric →
// bigger DeACT advantage; 1.79× even at 100ns).
func (h *Harness) Figure15() (stats.Table, error) {
	lats := []sim.Time{sim.NS(100), sim.NS(250), sim.NS(500), sim.NS(750), sim.US(1), sim.US(3), sim.US(6)}
	var labels, keys []string
	var mutates []func(*core.Config)
	for _, l := range lats {
		l := l
		labels = append(labels, nsLabel(l))
		keys = append(keys, "fab="+nsLabel(l))
		mutates = append(mutates, func(c *core.Config) { c.FabricLatency = l })
	}
	return h.sensitivitySweep("Figure 15: DeACT-N speedup wrt I-FAM vs fabric latency", labels, keys, mutates)
}

// Figure16 sweeps the node count 1–8 for pf and dc (paper: more nodes
// sharing the fabric → bigger DeACT advantage; dc 2.92× → 3.26×).
func (h *Harness) Figure16() (stats.Table, error) {
	counts := []int{1, 2, 4, 8}
	var labels []string
	for _, n := range counts {
		labels = append(labels, fmt.Sprintf("%d", n))
	}
	t := stats.Table{Title: "Figure 16: DeACT-N speedup wrt I-FAM vs number of nodes", XLabels: labels}
	for _, bench := range []string{"pf", "dc"} {
		found := false
		for _, b := range h.opts.benchmarks() {
			if b == bench {
				found = true
			}
		}
		if !found {
			continue
		}
		var vals []float64
		for _, nn := range counts {
			nn := nn
			key := fmt.Sprintf("nodes=%d", nn)
			mutate := func(c *core.Config) { c.Nodes = nn }
			rN, err := h.run(core.DeACTN, bench, key, mutate)
			if err != nil {
				return t, err
			}
			rI, err := h.run(core.IFAM, bench, key, mutate)
			if err != nil {
				return t, err
			}
			vals = append(vals, rN.Speedup(rI))
		}
		if err := t.AddSeries(bench, vals); err != nil {
			return t, err
		}
	}
	return t, nil
}
