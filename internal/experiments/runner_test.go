package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"deact/internal/core"
	"deact/internal/sim"
)

// TestPanickingRunDoesNotWedgePool: a panic inside a run must be converted
// to an error, release its worker-pool slot, and unblock every
// deduplicated waiter — not leave them parked on e.done forever.
func TestPanickingRunDoesNotWedgePool(t *testing.T) {
	ctx := context.Background()
	r := New(schedOptions(1)) // one slot: a leaked slot would wedge everything

	orig := coreRun
	coreRun = func(ctx context.Context, cfg core.Config, opts ...core.RunOption) (core.Result, error) {
		if cfg.Benchmark == "canl" {
			panic("simulation exploded")
		}
		return orig(ctx, cfg, opts...)
	}
	defer func() { coreRun = orig }()

	boom := r.config(core.IFAM, "canl", nil)
	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := r.Run(ctx, boom)
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Fatalf("want panic error, got %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("panicking run wedged the pool (waiter blocked)")
		}
	}

	// The slot must have been released: a healthy run still goes through.
	if _, err := r.Run(ctx, r.config(core.EFAM, "mcf", nil)); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
}

// TestNsLabelFractionalMicroseconds: non-integer microsecond latencies must
// not truncate (the old %d cast rendered 1500ns as "1us").
func TestNsLabelFractionalMicroseconds(t *testing.T) {
	cases := []struct {
		t    sim.Time
		want string
	}{
		{sim.NS(500), "500ns"},
		{sim.NS(999), "999ns"},
		{sim.NS(1000), "1us"},
		{sim.NS(1500), "1.5us"},
		{sim.NS(2500), "2.5us"},
		{sim.US(6), "6us"},
		{sim.NS(1250), "1.25us"},
		{2500, "2.5ns"}, // 2500ps
	}
	for _, c := range cases {
		if got := nsLabel(c.t); got != c.want {
			t.Errorf("nsLabel(%d) = %q, want %q", c.t, got, c.want)
		}
	}
}

// TestOnRunDoneProgress: the hook must fire once per distinct simulation
// with monotonically increasing completed counters bounded by submitted.
func TestOnRunDoneProgress(t *testing.T) {
	var infos []RunInfo
	o := schedOptions(4)
	o.OnRunDone = func(ri RunInfo) { infos = append(infos, ri) } // serialized by the runner
	r := New(o)
	batch := schedBatch(r)
	if _, err := r.RunAll(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	const distinct = 6
	if len(infos) != distinct {
		t.Fatalf("hook fired %d times, want %d", len(infos), distinct)
	}
	seen := map[string]bool{}
	for i, ri := range infos {
		if ri.Completed != i+1 {
			t.Fatalf("info %d: Completed = %d, want %d", i, ri.Completed, i+1)
		}
		if ri.Submitted < ri.Completed || ri.Submitted > distinct {
			t.Fatalf("info %d: Submitted = %d out of range", i, ri.Submitted)
		}
		if ri.Err != nil {
			t.Fatalf("info %d: unexpected error %v", i, ri.Err)
		}
		if ri.Fingerprint != ri.Config.Fingerprint() {
			t.Fatalf("info %d: fingerprint mismatch", i)
		}
		if seen[ri.Fingerprint] {
			t.Fatalf("info %d: duplicate hook for %s", i, ri.Fingerprint)
		}
		seen[ri.Fingerprint] = true
	}
	// Cache hits must not re-fire the hook.
	if _, err := r.RunAll(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if len(infos) != distinct {
		t.Fatalf("cache hits re-fired the hook: %d calls", len(infos))
	}
}
