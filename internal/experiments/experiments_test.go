package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"deact/internal/core"
)

// tinyOptions keeps test runtime low: a reduced benchmark set spanning both
// sensitivity classes.
func tinyOptions() Options {
	return Options{
		Warmup: 40_000, Measure: 30_000, Cores: 1, Seed: 42,
		Benchmarks: []string{"mcf", "canl", "sp", "pf", "dc"},
	}
}

func TestTableIAndII(t *testing.T) {
	if !strings.Contains(TableI(), "DeACT") || !strings.Contains(TableI(), "E-FAM") {
		t.Fatal("Table I incomplete")
	}
	ii := TableII()
	for _, want := range []string{"STU cache", "Fabric", "FAM (NVM)", "TLB"} {
		if !strings.Contains(ii, want) {
			t.Fatalf("Table II missing %q:\n%s", want, ii)
		}
	}
}

func TestTableIII(t *testing.T) {
	r := New(tinyOptions())
	tbl, err := r.TableIII(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("series = %d", len(tbl.Series))
	}
	for i, v := range tbl.Series[1].Values {
		if v <= 0 {
			t.Fatalf("measured MPKI %d non-positive", i)
		}
	}
}

func TestFigure3SlowdownAboveOne(t *testing.T) {
	r := New(tinyOptions())
	tbl, err := r.Figure3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tbl.Series[0].Values {
		if v < 0.95 {
			t.Fatalf("benchmark %s: I-FAM slowdown %.2f < 1", tbl.XLabels[i], v)
		}
	}
}

func TestFigure12OrderingOnSensitiveSet(t *testing.T) {
	ctx := context.Background()
	r := New(tinyOptions())
	if _, err := r.Figure12(ctx); err != nil {
		t.Fatal(err)
	}
	ok, detail, err := checkFig12Ordering(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("figure 12 ordering violated: %s", detail)
	}
}

func TestFigure4And11Checks(t *testing.T) {
	ctx := context.Background()
	r := New(tinyOptions())
	ok, detail, err := checkFig4Blowup(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("fig4: %s", detail)
	}
	ok, detail, err = checkFig11Monotone(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("fig11: %s", detail)
	}
}

func TestFigure9And10Checks(t *testing.T) {
	ctx := context.Background()
	r := New(tinyOptions())
	ok, detail, err := checkFig9NBeatsW(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("fig9: %s", detail)
	}
	ok, detail, err = checkFig10DeACTHigh(ctx, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("fig10: %s", detail)
	}
}

func TestRunnerCachesRuns(t *testing.T) {
	ctx := context.Background()
	r := New(tinyOptions())
	if _, err := r.Run(ctx, r.config(core.EFAM, "mcf", nil)); err != nil {
		t.Fatal(err)
	}
	n := r.CachedRuns()
	if _, err := r.Run(ctx, r.config(core.EFAM, "mcf", nil)); err != nil {
		t.Fatal(err)
	}
	if r.CachedRuns() != n {
		t.Fatal("identical run not cached")
	}
	if r.Options().Seed != 42 {
		t.Fatal("options accessor wrong")
	}
}

func TestFigure16TwoSeries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node sweep is slow")
	}
	o := tinyOptions()
	o.Warmup, o.Measure = 15_000, 15_000
	r := New(o)
	tbl, err := r.Figure16(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Series) != 2 {
		t.Fatalf("fig16 series = %d, want pf and dc", len(tbl.Series))
	}
}

func TestReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	o := Options{Warmup: 10_000, Measure: 10_000, Cores: 1, Seed: 42,
		Benchmarks: []string{"canl", "sp", "pf", "dc"}}
	var buf bytes.Buffer
	if err := Report(context.Background(), &buf, o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 12", "Figure 16", "Table III", "PASS", "distinct simulation runs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestAllListsEveryExperiment(t *testing.T) {
	ids := map[string]bool{}
	for _, nt := range All() {
		ids[nt.id] = true
	}
	for _, want := range []string{"Table III", "Figure 3", "Figure 4", "Figure 9", "Figure 10",
		"Figure 11", "Figure 12", "Figure 13", "Figure 14", "Figure 15", "Figure 16",
		"§V-D1 associativity", "§V-D2 pairs/way"} {
		if !ids[want] {
			t.Errorf("experiment %q missing from All()", want)
		}
	}
}
