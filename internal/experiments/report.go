package experiments

import (
	"fmt"
	"io"
	"time"

	"deact/internal/stats"
)

// expectation records the paper's qualitative claim for one experiment so
// the report can state pass/fail on shape, not absolute numbers.
type expectation struct {
	id    string
	claim string
	check func(h *Harness) (bool, string, error)
}

// namedTable pairs an experiment id with its generator.
type namedTable struct {
	id       string
	paperRef string
	gen      func(h *Harness) (stats.Table, error)
	expect   []expectation
}

// All returns every reproducible experiment in paper order.
func All() []namedTable {
	return []namedTable{
		{id: "Table III", paperRef: "workload calibration",
			gen: (*Harness).TableIII},
		{id: "Figure 3", paperRef: "I-FAM slowdown wrt E-FAM",
			gen: (*Harness).Figure3,
			expect: []expectation{{
				id:    "fig3-sensitive-worst",
				claim: "AT-sensitive benchmarks (canl, sssp, ccsv, cactus) slow down more than the insensitive set (bc, lu, mg, sp)",
				check: checkFig3Ordering,
			}},
		},
		{id: "Figure 4", paperRef: "AT share of FAM requests, E-FAM vs I-FAM",
			gen: (*Harness).Figure4,
			expect: []expectation{{
				id:    "fig4-indirection-blowup",
				claim: "I-FAM's AT share exceeds E-FAM's for every benchmark",
				check: checkFig4Blowup,
			}},
		},
		{id: "Figure 9", paperRef: "ACM hit rate",
			gen: (*Harness).Figure9,
			expect: []expectation{{
				id:    "fig9-n-beats-w",
				claim: "DeACT-N's ACM hit rate beats DeACT-W's on AT-sensitive benchmarks; DeACT-W ≈ I-FAM",
				check: checkFig9NBeatsW,
			}},
		},
		{id: "Figure 10", paperRef: "translation hit rate",
			gen: (*Harness).Figure10,
			expect: []expectation{{
				id:    "fig10-deact-high",
				claim: "DeACT's in-DRAM translation cache hit rate exceeds I-FAM's STU hit rate on every benchmark (paper: >90%)",
				check: checkFig10DeACTHigh,
			}},
		},
		{id: "Figure 11", paperRef: "AT share of FAM requests, three organizations",
			gen: (*Harness).Figure11,
			expect: []expectation{{
				id:    "fig11-monotone",
				claim: "mean AT share decreases I-FAM → DeACT-W → DeACT-N",
				check: checkFig11Monotone,
			}},
		},
		{id: "Figure 12", paperRef: "normalized performance",
			gen: (*Harness).Figure12,
			expect: []expectation{{
				id:    "fig12-ordering",
				claim: "E-FAM ≥ DeACT-N ≥ DeACT-W ≥ I-FAM on AT-sensitive benchmarks; DeACT ≈ I-FAM on the insensitive set",
				check: checkFig12Ordering,
			}},
		},
		{id: "Figure 13", paperRef: "STU size sweep",
			gen: (*Harness).Figure13,
			expect: []expectation{{
				id:    "fig13-shrinking-gain",
				claim: "DeACT's speedup over I-FAM shrinks as the STU cache grows",
				check: checkFig13Shrinks,
			}},
		},
		{id: "§V-D1 associativity", paperRef: "STU associativity sweep",
			gen: (*Harness).AssociativitySweep},
		{id: "Figure 14", paperRef: "ACM width sweep",
			gen: (*Harness).Figure14},
		{id: "§V-D2 pairs/way", paperRef: "DeACT-N packing sweep",
			gen: (*Harness).PairsPerWaySweep,
			expect: []expectation{{
				id:    "fig14-pairs-monotone",
				claim: "more (tag, ACM) pairs per way → more speedup; one pair ≈ DeACT-W",
				check: checkPairsMonotone,
			}},
		},
		{id: "Figure 15", paperRef: "fabric latency sweep",
			gen: (*Harness).Figure15,
			expect: []expectation{{
				id:    "fig15-growing-gain",
				claim: "longer fabric latency → bigger DeACT speedup over I-FAM",
				check: checkFig15Grows,
			}},
		},
		{id: "Figure 16", paperRef: "node count sweep",
			gen: (*Harness).Figure16,
			expect: []expectation{{
				id:    "fig16-growing-gain",
				claim: "more nodes sharing the fabric → bigger DeACT speedup over I-FAM",
				check: checkFig16Grows,
			}},
		},
		{id: "§III-A read trust", paperRef: "encrypted-FAM ablation",
			gen: (*Harness).ReadTrustAblation,
			expect: []expectation{{
				id:    "read-trust-never-hurts",
				claim: "skipping read verification never slows a benchmark down",
				check: checkReadTrustNeverHurts,
			}},
		},
	}
}

// Report runs every experiment and writes a markdown report to w.
func Report(w io.Writer, opts Options) error {
	h := New(opts)
	fmt.Fprintf(w, "# EXPERIMENTS — DeACT reproduction, paper vs measured\n\n")
	fmt.Fprintf(w, "Generated %s by `cmd/deact-report` (options: warmup=%d measure=%d cores=%d seed=%d).\n\n",
		time.Now().UTC().Format(time.RFC3339), opts.Warmup, opts.Measure, opts.Cores, opts.Seed)
	fmt.Fprintf(w, "Absolute numbers are not expected to match the paper (the substrate is a\n")
	fmt.Fprintf(w, "fresh simulator at 1/4 capacity scale, see DESIGN.md); each experiment\n")
	fmt.Fprintf(w, "instead carries the paper's qualitative claim and a measured PASS/FAIL.\n\n")
	fmt.Fprintf(w, "```\n%s```\n\n```\n%s```\n\n", TableI(), TableII())

	for _, nt := range All() {
		tbl, err := nt.gen(h)
		if err != nil {
			return fmt.Errorf("%s: %w", nt.id, err)
		}
		fmt.Fprintf(w, "## %s — %s\n\n```\n%s```\n\n", nt.id, nt.paperRef, tbl.Render())
		for _, ex := range nt.expect {
			ok, detail, err := ex.check(h)
			if err != nil {
				return fmt.Errorf("%s check: %w", nt.id, err)
			}
			verdict := "PASS"
			if !ok {
				verdict = "FAIL"
			}
			fmt.Fprintf(w, "- **%s** — %s: %s (%s)\n", verdict, ex.id, ex.claim, detail)
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "Total distinct simulation runs: %d.\n", h.CachedRuns())
	return nil
}
