package experiments

import (
	"context"
	"fmt"
	"strings"

	"deact/internal/core"
	"deact/internal/sim"
	"deact/internal/stats"
	"deact/internal/workload"
)

// TableI renders the qualitative FAM-architecture comparison of Table I.
func TableI() string {
	var b strings.Builder
	b.WriteString("Table I: FAM Architectures Comparison\n")
	b.WriteString("Architecture  Performance  Avoid-OS-Changes  Security\n")
	b.WriteString("E-FAM         yes          no                no\n")
	b.WriteString("I-FAM         no           yes               yes\n")
	b.WriteString("DeACT         yes          yes               yes\n")
	return b.String()
}

// TableII renders the simulated system configuration (the scaled Table II).
func TableII() string {
	c := core.DefaultConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: System Configuration (scaled ×1/4 capacity, see ARCHITECTURE.md)\n")
	fmt.Fprintf(&b, "CPU            %d cores/node, %.0fGHz, %d issues/cycle, %d max outstanding\n",
		c.CoresPerNode, 1000.0/float64(c.CycleTime), c.IssueWidth, c.MaxOutstanding)
	fmt.Fprintf(&b, "TLB            2 levels, L1 %d entries, L2 %d entries, PTW cache %d\n",
		c.MMU.L1Entries, c.MMU.L2Entries, c.MMU.PTWEntries)
	fmt.Fprintf(&b, "L1/L2/L3       %dKB / %dKB / %dKB, 64B blocks, LRU\n",
		c.Hierarchy.L1Size>>10, c.Hierarchy.L2Size>>10, c.Hierarchy.L3Size>>10)
	fmt.Fprintf(&b, "Local memory   DRAM %dMB (%d banks)\n", c.Layout.DRAMSize>>20, c.DRAMCfg.Banks)
	fmt.Fprintf(&b, "STU cache      %d entries, associativity %d\n", c.STUEntries, c.STUWays)
	fmt.Fprintf(&b, "Fabric         %dns one-way latency\n", uint64(c.FabricLatency/sim.Nanosecond))
	fmt.Fprintf(&b, "FAM (NVM)      %dMB, read %dns write %dns, %d banks, %d outstanding\n",
		c.Layout.FAMSize>>20, uint64(c.FAMCfg.ReadLatency/sim.Nanosecond),
		uint64(c.FAMCfg.WriteLatency/sim.Nanosecond), c.FAMCfg.Banks, c.Outstanding)
	fmt.Fprintf(&b, "FAM xlate $    %dKB in DRAM, 4-way\n", c.TranslationCacheBytes>>10)
	fmt.Fprintf(&b, "ACM            %d bits/page\n", c.Layout.ACMBits)
	return b.String()
}

// TableIII reports paper-reported vs measured MPKI per benchmark (the
// workload-calibration check). Measured MPKI comes from an E-FAM run, the
// configuration closest to the paper's selection environment.
func (r *Runner) TableIII(ctx context.Context) (stats.Table, error) {
	t := stats.Table{
		Title:   "Table III: Applications — paper MPKI vs measured (E-FAM, scaled system)",
		XLabels: r.opts.benchmarks(),
		Format:  "%.0f",
	}
	var paperVals []float64
	for _, b := range r.opts.benchmarks() {
		p, err := workload.Get(b)
		if err != nil {
			return t, err
		}
		paperVals = append(paperVals, p.PaperMPKI)
	}
	measured, err := r.perBenchmark(ctx, core.EFAM, func(res core.Result) float64 { return res.MPKI })
	if err != nil {
		return t, err
	}
	if err := t.AddSeries("paper", paperVals); err != nil {
		return t, err
	}
	if err := t.AddSeries("measured", measured); err != nil {
		return t, err
	}
	return t, nil
}
