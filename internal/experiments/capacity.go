package experiments

import (
	"context"
	"fmt"

	"deact/internal/core"
	"deact/internal/sim"
	"deact/internal/stats"
)

// capacityPoint is one cell of the capacity-planning grid: how many nodes
// share the fabric and how many tenants share those nodes.
type capacityPoint struct{ nodes, tenants int }

// capacityPoints fixes the sweep grid, like the figure sweeps fix theirs:
// scale nodes at a constant tenant count, then densify tenants at a
// constant node count.
func capacityPoints() []capacityPoint {
	return []capacityPoint{{2, 2}, {4, 2}, {4, 4}, {8, 4}}
}

// steadyBenchmark returns the workload the steady tenants run.
func (o Options) steadyBenchmark() string {
	if o.SteadyBenchmark != "" {
		return o.SteadyBenchmark
	}
	return "sp"
}

// noisyBenchmark returns the workload the noisy tenant (tenant 0) runs.
func (o Options) noisyBenchmark() string {
	if o.NoisyBenchmark != "" {
		return o.NoisyBenchmark
	}
	return "canl"
}

// capacityShards derives the broker shard count for a sweep point: the
// explicit Options.BrokerShards (clamped to the node count), or one shard
// per two node groups so ownership-metadata contention scales with the
// fabric rather than concentrating on one pool.
func (o Options) capacityShards(nodes int) int {
	s := o.BrokerShards
	if s <= 0 {
		s = nodes / 2
	}
	if s > nodes {
		s = nodes
	}
	if s < 1 {
		s = 1
	}
	return s
}

// CapacitySweep is the capacity-planning experiment (beyond the paper, built
// on its §V-C multi-node setup): tenant 0 on every node runs a noisy
// AT-sensitive workload while the remaining tenants run a steady one, and the
// table reports per-tenant p99 latencies (µs) as the deployment grows. The
// planning question it answers: how much steady-tenant tail latency does one
// noisy neighbor cost under each translation scheme, and does adding
// nodes/tenants amortize or amplify it?
func (r *Runner) CapacitySweep(ctx context.Context) (stats.Table, error) {
	points := capacityPoints()
	steady, noisy := r.opts.steadyBenchmark(), r.opts.noisyBenchmark()
	t := stats.Table{
		Title: fmt.Sprintf("Capacity planning: p99 latency (us) per tenant class, steady=%s vs noisy=%s",
			steady, noisy),
		Format: "%.3f",
	}
	for _, p := range points {
		t.XLabels = append(t.XLabels, fmt.Sprintf("%dn/%dt", p.nodes, p.tenants))
	}

	schemes := []core.Scheme{core.IFAM, core.DeACTN}
	var cfgs []core.Config
	for _, s := range schemes {
		for _, p := range points {
			cfgs = append(cfgs, r.config(s, steady, func(c *core.Config) {
				c.Nodes = p.nodes
				c.Tenants = p.tenants
				c.NoisyBenchmark = noisy
				c.BrokerShards = r.opts.capacityShards(p.nodes)
			}))
		}
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return t, err
	}

	const us = float64(sim.Microsecond) // histogram samples are picoseconds
	idx := 0
	for _, s := range schemes {
		xlate := make([]float64, 0, len(points))
		famSteady := make([]float64, 0, len(points))
		famNoisy := make([]float64, 0, len(points))
		for _, p := range points {
			st := res[idx].SteadyLatency(p.tenants)
			nz := res[idx].TenantLatency(0)
			xlate = append(xlate, st.Translation.P99()/us)
			famSteady = append(famSteady, st.FAM.P99()/us)
			famNoisy = append(famNoisy, nz.FAM.P99()/us)
			idx++
		}
		for _, sr := range []struct {
			name string
			vals []float64
		}{
			{fmt.Sprintf("%v steady xlate p99", s), xlate},
			{fmt.Sprintf("%v steady FAM p99", s), famSteady},
			{fmt.Sprintf("%v noisy FAM p99", s), famNoisy},
		} {
			if err := t.AddSeries(sr.name, sr.vals); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// checkCapacityDeACTShieldsSteady states the planning claim the sweep is
// expected to show: decoupling translation never lets the noisy neighbor
// inflate the steady tenants' p99 translation latency materially beyond
// I-FAM's — DeACT-N's translations stay in node-local DRAM instead of
// queueing on the shared fabric behind the noisy tenant's walks. Like
// checkReadTrustNeverHurts, the bound carries a tolerance (10%) so
// small-scale tail noise does not flip the verdict.
func checkCapacityDeACTShieldsSteady(ctx context.Context, r *Runner) (bool, string, error) {
	tbl, err := r.CapacitySweep(ctx)
	if err != nil {
		return false, "", err
	}
	// Series layout per scheme: [steady xlate, steady FAM, noisy FAM].
	ifam, deact := tbl.Series[0].Values, tbl.Series[3].Values
	worst := 0.0
	for i := range ifam {
		if ratio := deact[i] / ifam[i]; ratio > worst {
			worst = ratio
		}
	}
	return worst < 1.10, fmt.Sprintf("worst DeACT-N/I-FAM steady xlate p99 ratio %.3f", worst), nil
}
