package experiments

import (
	"strings"
	"testing"
	"time"

	"deact/internal/core"
	"deact/internal/sim"
)

// TestPanickingRunDoesNotWedgePool: a panic inside a run must be converted
// to an error, release its worker-pool slot, and unblock every
// deduplicated waiter — not leave them parked on e.done forever.
func TestPanickingRunDoesNotWedgePool(t *testing.T) {
	h := New(schedOptions(1)) // one slot: a leaked slot would wedge everything
	boom := func(c *core.Config) { panic("mutate exploded") }

	done := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := h.run(core.IFAM, "mcf", "boom", boom)
			done <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err == nil || !strings.Contains(err.Error(), "panic") {
				t.Fatalf("want panic error, got %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("panicking run wedged the pool (waiter blocked)")
		}
	}

	// The slot must have been released: a healthy run still goes through.
	if _, err := h.run(core.EFAM, "mcf", "after-panic", nil); err != nil {
		t.Fatalf("pool unusable after panic: %v", err)
	}
}

// TestNsLabelFractionalMicroseconds: non-integer microsecond latencies must
// not truncate (the old %d cast rendered 1500ns as "1us").
func TestNsLabelFractionalMicroseconds(t *testing.T) {
	cases := []struct {
		t    sim.Time
		want string
	}{
		{sim.NS(500), "500ns"},
		{sim.NS(999), "999ns"},
		{sim.NS(1000), "1us"},
		{sim.NS(1500), "1.5us"},
		{sim.NS(2500), "2.5us"},
		{sim.US(6), "6us"},
		{sim.NS(1250), "1.25us"},
		{2500, "2.5ns"}, // 2500ps
	}
	for _, c := range cases {
		if got := nsLabel(c.t); got != c.want {
			t.Errorf("nsLabel(%d) = %q, want %q", c.t, got, c.want)
		}
	}
}
