// Package experiments regenerates every table and figure of the paper's
// evaluation (§II-D motivation, §V results, §V-D sensitivity) from the
// simulator. Each experiment returns a stats.Table whose series mirror the
// corresponding figure's bars or lines; cmd/deact-report renders them all
// into EXPERIMENTS.md.
//
// The Runner is the only scheduler: callers submit fully-built
// core.Config values, identity is Config.Fingerprint() alone, equal
// configs share one simulation, and a worker pool runs distinct ones
// concurrently — each slot holding a core.SystemPool that recycles
// construction memory between the runs it executes. Invariant: report
// output is byte-identical at every Parallelism setting for a fixed seed
// (results are assembled in submission order, and each simulation is
// deterministic given its config).
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"deact/internal/core"
	"deact/internal/resultstore"
	"deact/internal/sim"
	"deact/internal/stats"
	"deact/internal/workload"
)

// Options controls experiment scale. The defaults trade a little noise for
// tractable single-machine runtimes; raising Warmup/Measure sharpens every
// rate toward its steady-state value.
type Options struct {
	// Warmup and Measure are per-core instruction budgets.
	Warmup  uint64
	Measure uint64
	// Cores per node (the paper uses 4; 2 halves runtime with the same
	// qualitative behaviour).
	Cores int
	// Seed drives all randomness.
	Seed int64
	// Benchmarks restricts the benchmark set (default: all 14).
	Benchmarks []string
	// Parallelism bounds how many core.Run simulations execute
	// concurrently. 0 (the default) means runtime.GOMAXPROCS(0); 1
	// reproduces a strictly-serial runner. Results and
	// CachedRuns() are identical at every setting: runs are
	// deduplicated singleflight-style and assembled in submission
	// order, and each simulation is deterministic given its config.
	Parallelism int
	// OnRunDone, if set, observes progress: it is called once after each
	// distinct simulation finishes (cancelled runs excluded), with the
	// runner-wide completed/submitted counters of that moment. Calls are
	// serialized; the hook must not call back into the Runner.
	OnRunDone func(RunInfo)
	// ShareWarmup groups distinct runs by core.Config.WarmupFingerprint():
	// the first run of each group simulates the shared warmup prefix once
	// and snapshots the warmup/measure boundary; every other run in the
	// group forks its measured phase from that snapshot instead of
	// re-simulating the warmup. Forked runs are bit-identical to cold runs,
	// so results — and the byte-identity invariant across Parallelism
	// settings — are unchanged; only wall-clock time drops when sweep
	// points share a warmup prefix (e.g. a MeasureInstructions sweep).
	ShareWarmup bool
	// Capacity appends the multi-tenant capacity-planning section
	// (CapacitySweep) to Report's output. It is additive: every line the
	// report emits without it is emitted unchanged with it.
	Capacity bool
	// Prefetch appends the prefetch-interaction section (PrefetchSweep)
	// to Report's output. Additive in the same way as Capacity; emitted
	// after the capacity section when both are on.
	Prefetch bool
	// MLP appends the memory-level-parallelism section (MLPSweep) to
	// Report's output. Additive in the same way as Capacity and Prefetch;
	// emitted after the prefetch section when both are on.
	MLP bool
	// SteadyBenchmark is the workload the steady tenants run in the
	// capacity sweep ("sp" if empty).
	SteadyBenchmark string
	// NoisyBenchmark is the workload the noisy tenant (tenant 0 on every
	// node) runs in the capacity sweep ("canl" if empty).
	NoisyBenchmark string
	// BrokerShards fixes the FAM broker shard count at every capacity
	// sweep point (clamped to the point's node count). 0 derives one
	// shard per two nodes, min 1.
	BrokerShards int
	// Store, if set, backs the runner with a persistent content-addressed
	// result cache: a submitted config whose result is already stored is
	// answered from disk immediately — without taking a worker slot or
	// simulating — and every distinct simulation that completes is
	// persisted for future runners. Stored results are byte-identical to
	// simulated ones (the store round-trips the canonical Result encoding
	// exactly), so report and sweep output is unchanged by a store, warm
	// or cold. Persist failures are swallowed: the store is a cache, and
	// a failed write only costs a future miss.
	Store *resultstore.Store
}

// RunInfo describes one completed distinct simulation for the OnRunDone
// progress hook.
type RunInfo struct {
	// Config is the configuration that ran; Fingerprint its identity.
	Config      core.Config
	Fingerprint string
	// Err is the simulation error, if any.
	Err error
	// Cached reports that the result was served from Options.Store
	// without simulating (it still counts toward Completed).
	Cached bool
	// Completed and Submitted are the runner-wide counters at the moment
	// this run finished: distinct simulations done vs registered so far.
	Completed, Submitted int
}

// DefaultOptions returns the scale used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Warmup: 80_000, Measure: 60_000, Cores: 2, Seed: 42}
}

// benchmarks returns the effective benchmark list.
func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

// parallelism returns the effective worker-pool size.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runEntry is the singleflight slot for one distinct configuration,
// identified by core.Config.Fingerprint(): the first submitter starts the
// computation, everyone else waits on done. The computation runs under its
// own context (cancel) that is detached from any single waiter: it fires
// only once every attached waiter has detached, so one caller backing out
// cannot abort a simulation another caller still wants.
type runEntry struct {
	cfg    core.Config
	fp     string
	done   chan struct{} // closed when res/err are valid
	res    core.Result
	err    error
	cancel context.CancelFunc

	// Guarded by Runner.mu.
	waiters  int
	finished bool
	// doomed is set the moment the last waiter detaches from an
	// unfinished entry — before cancel fires — so a concurrent Submit
	// never attaches to a computation that is about to be aborted.
	doomed bool
}

// Runner schedules simulation runs for the figure and table generators.
// Callers submit fully-built core.Config values; requests are deduplicated
// by Config.Fingerprint() — run identity is derived from the configuration
// itself, so two distinct configs can never alias one cache slot and two
// equal configs always share one simulation — and executed by a worker
// pool of Options.Parallelism slots so independent runs overlap.
type Runner struct {
	opts Options
	// sem holds the worker-pool slots: at most cap(sem) simulations in
	// flight. Each slot carries a core.SystemPool (created lazily, nil
	// until first used), so consecutive runs on a slot recycle the same
	// construction memory while concurrent runs never share a pool.
	sem chan *core.SystemPool
	wg  sync.WaitGroup

	mu        sync.Mutex
	runs      map[string]*runEntry
	submitted int
	completed int

	cbMu sync.Mutex // serializes OnRunDone callbacks

	// Warmup-sharing state (Options.ShareWarmup): groups keyed by
	// WarmupFingerprint, plus a bounded cache of published snapshots whose
	// storage recycles through a dedicated pool. warmMu guards all of it,
	// including snapPool and freeSnaps — snapshot capture and release
	// happen under it, so the pool is never shared unlocked.
	warmMu    sync.Mutex
	warm      map[string]*warmGroup
	warmClock uint64
	snapPool  *core.SystemPool
	freeSnaps []*core.Snapshot
}

// maxWarmSnapshots bounds how many published warmup snapshots stay cached:
// beyond it, the least recently used unreferenced group is released back to
// the snapshot pool. Groups still referenced by in-flight runs are never
// evicted, so the bound is soft under extreme concurrency.
const maxWarmSnapshots = 8

// warmGroup is one warmup-fingerprint group. The first run to attach is the
// leader: it simulates the warmup and publishes a snapshot at the
// warmup/measure boundary (closing ready), while its own measured phase
// continues. Followers wait on ready — before acquiring a worker slot, so a
// parked follower can never starve its leader out of the pool — and fork
// from snap. A nil snap after ready means the leader failed before the
// boundary; followers fall back to cold runs.
type warmGroup struct {
	ready chan struct{}
	snap  *core.Snapshot

	// Guarded by Runner.warmMu.
	refs    int    // attached in-flight runs; >0 blocks eviction
	lastUse uint64 // warmClock at last attach, for LRU eviction
}

// New builds a runner.
func New(opts Options) *Runner {
	if opts.Cores <= 0 {
		opts.Cores = 2
	}
	if opts.Measure == 0 {
		opts.Measure = 60_000
	}
	par := opts.parallelism()
	r := &Runner{
		opts: opts,
		sem:  make(chan *core.SystemPool, par),
		runs: map[string]*runEntry{},
		warm: map[string]*warmGroup{},
	}
	if opts.ShareWarmup {
		r.snapPool = core.NewSystemPool()
	}
	for i := 0; i < par; i++ {
		r.sem <- nil // empty slot; its pool is created on first acquisition
	}
	return r
}

// Future is a handle to one submitted simulation. Wait blocks until the
// shared computation finishes or the submitting context is cancelled —
// whichever comes first — so deduplicated waiters unblock with their own
// ctx.Err() without tearing down a computation other waiters share.
type Future struct {
	r   *Runner
	e   *runEntry
	ctx context.Context
	rel sync.Once
}

// Submit registers cfg for execution and returns its Future. Identical
// configurations (by Fingerprint) share one simulation. The worker pool
// stops admitting the run if every attached waiter's context is cancelled
// before a slot frees up, and an admitted run observes cancellation inside
// core.Run's event loop once the last waiter detaches.
func (r *Runner) Submit(ctx context.Context, cfg core.Config) *Future {
	fp := cfg.Fingerprint()
	r.mu.Lock()
	// Attach to a live entry — or to a doomed one that nevertheless
	// finished successfully before its cancel landed (done is closed and
	// the cached result is valid, so re-simulating would be waste).
	if e, ok := r.runs[fp]; ok && (!e.doomed || (e.finished && e.err == nil)) {
		e.waiters++
		r.mu.Unlock()
		return &Future{r: r, e: e, ctx: ctx}
	}
	// Either no entry, or a doomed one whose last waiter just detached:
	// register a fresh entry in its place (the doomed run's finish only
	// evicts the slot if it still owns it).
	ectx, cancel := context.WithCancel(context.Background())
	e := &runEntry{cfg: cfg, fp: fp, done: make(chan struct{}), cancel: cancel, waiters: 1}
	r.runs[fp] = e
	r.submitted++
	r.mu.Unlock()

	r.wg.Add(1)
	go r.execute(ectx, e)
	return &Future{r: r, e: e, ctx: ctx}
}

// Run submits cfg and waits for its result — the one-shot convenience
// around Submit for callers that need a single simulation.
func (r *Runner) Run(ctx context.Context, cfg core.Config) (core.Result, error) {
	return r.Submit(ctx, cfg).Wait()
}

// Wait blocks until the simulation finishes or the context passed to
// Submit is cancelled, in which case it returns ctx.Err() immediately —
// the in-flight computation keeps running as long as any other waiter
// remains attached, and is cancelled once the last one detaches.
func (f *Future) Wait() (core.Result, error) {
	select {
	case <-f.e.done:
		f.release()
		return f.e.res, f.e.err
	case <-f.ctx.Done():
		f.release()
		return core.Result{}, f.ctx.Err()
	}
}

// Release detaches this future from its entry without waiting for the
// result. It is the abandonment path for callers that stop consuming
// futures mid-batch (a streaming client that disconnected): the last
// future to detach from an unfinished computation cancels it. Safe to call
// after Wait — detachment happens exactly once either way.
func (f *Future) Release() { f.release() }

// release detaches this future from its entry exactly once; the last
// detaching future dooms an unfinished computation and cancels it. The
// doomed mark is taken under the same lock Submit attaches under, so a
// new waiter with a live context can never land on the dying entry.
func (f *Future) release() {
	f.rel.Do(func() {
		f.r.mu.Lock()
		f.e.waiters--
		fire := f.e.waiters == 0 && !f.e.finished
		if fire {
			f.e.doomed = true
		}
		f.r.mu.Unlock()
		if fire {
			f.e.cancel()
		}
	})
}

// execute runs one entry's simulation under the entry context: slot
// acquisition first (admission stops on cancellation), then core.Run.
func (r *Runner) execute(ectx context.Context, e *runEntry) {
	defer r.wg.Done()
	res, cached, err := r.compute(ectx, e.cfg)
	r.finish(e, res, cached, err)
}

// compute acquires a worker slot and runs the simulation. A panic anywhere
// in the path is converted to an error for this and every deduplicated
// waiter, and the slot is released via defer, so a panicking run can
// neither leak a pool slot nor leave waiters blocked forever.
//
// With a Store configured, the persisted result — when present — is
// returned before any of that machinery engages: no warmup group, no
// worker slot, no simulation. cached reports that path.
func (r *Runner) compute(ectx context.Context, cfg core.Config) (res core.Result, cached bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("experiments: %s under %v: panic: %v", cfg.Benchmark, cfg.Scheme, p)
		}
	}()
	if r.opts.Store != nil {
		if hit, ok := r.opts.Store.Get(cfg); ok {
			return hit, true, nil
		}
	}
	var opts []core.RunOption
	if r.opts.ShareWarmup && cfg.WarmupInstructions > 0 {
		key := cfg.WarmupFingerprint()
		g, lead := r.attachWarmGroup(key)
		defer r.detachWarmGroup(key, g)
		if lead {
			published := false
			opts = append(opts, core.WithWarmupHook(func(s *core.System) {
				r.publishSnapshot(g, s)
				published = true
			}))
			// If the leader never reaches the boundary (construction error,
			// warmup failure, cancellation, panic), publish the failure so
			// waiting followers fall back to cold runs instead of parking.
			defer func() {
				if !published {
					r.publishSnapshot(g, nil)
				}
			}()
		} else {
			// Wait for the leader BEFORE acquiring a worker slot: a parked
			// follower holding a slot could starve the leader out of the
			// pool entirely at low Parallelism.
			select {
			case <-g.ready:
			case <-ectx.Done():
				return core.Result{}, false, ectx.Err()
			}
			if g.snap != nil {
				opts = append(opts, core.WithSnapshot(g.snap))
			}
		}
	}
	var pool *core.SystemPool
	select {
	case pool = <-r.sem: // acquire a worker slot (and its memory pool)
	case <-ectx.Done():
		return core.Result{}, false, ectx.Err()
	}
	if pool == nil {
		pool = core.NewSystemPool()
	}
	defer func() { r.sem <- pool }() // release the worker slot
	res, err = coreRun(ectx, cfg, append(opts, core.WithPool(pool))...)
	if err != nil && !isCancellation(err) {
		err = fmt.Errorf("experiments: %s under %v [cfg %s]: %w", cfg.Benchmark, cfg.Scheme, cfg.Fingerprint()[:8], err)
	}
	if err == nil && r.opts.Store != nil {
		// Best-effort persistence: a failed write costs a future miss,
		// nothing else, and must not fail a simulation that succeeded.
		_ = r.opts.Store.Put(cfg, res)
	}
	return res, false, err
}

// attachWarmGroup joins (or founds) the warmup group for key. The founder
// is the leader; lastUse feeds LRU eviction.
func (r *Runner) attachWarmGroup(key string) (g *warmGroup, lead bool) {
	r.warmMu.Lock()
	defer r.warmMu.Unlock()
	g = r.warm[key]
	if g == nil {
		g = &warmGroup{ready: make(chan struct{})}
		r.warm[key] = g
		lead = true
	}
	g.refs++
	r.warmClock++
	g.lastUse = r.warmClock
	return g, lead
}

// detachWarmGroup drops one reference. A fully detached group whose leader
// failed is removed so a later submission can retry the warmup; a fully
// detached group with a snapshot becomes eligible for LRU eviction.
func (r *Runner) detachWarmGroup(key string, g *warmGroup) {
	r.warmMu.Lock()
	defer r.warmMu.Unlock()
	g.refs--
	if g.refs != 0 {
		return
	}
	select {
	case <-g.ready:
		if g.snap == nil && r.warm[key] == g {
			delete(r.warm, key)
		}
	default:
		// A cancelled follower detached before the leader published; the
		// leader holds its own reference, so the group stays.
	}
	r.evictWarmLocked()
}

// publishSnapshot captures s (nil: leader failure) into the group and
// unblocks its followers. Capture draws storage from the dedicated snapshot
// pool under warmMu; the published snapshot is read-only from here on, so
// followers fork from it without holding any lock.
func (r *Runner) publishSnapshot(g *warmGroup, s *core.System) {
	if s != nil {
		r.warmMu.Lock()
		sn := &core.Snapshot{}
		if n := len(r.freeSnaps); n > 0 {
			sn = r.freeSnaps[n-1]
			r.freeSnaps = r.freeSnaps[:n-1]
		}
		s.SnapshotInto(sn, r.snapPool)
		g.snap = sn
		r.evictWarmLocked()
		r.warmMu.Unlock()
	}
	close(g.ready)
}

// evictWarmLocked enforces maxWarmSnapshots: while more groups than the
// bound hold published snapshots, the least recently used unreferenced one
// is released back to the snapshot pool. Callers hold warmMu.
func (r *Runner) evictWarmLocked() {
	for {
		live := 0
		var victim *warmGroup
		var victimKey string
		for k, g := range r.warm {
			if g.snap == nil {
				continue
			}
			live++
			if g.refs == 0 && (victim == nil || g.lastUse < victim.lastUse) {
				victim, victimKey = g, k
			}
		}
		if live <= maxWarmSnapshots || victim == nil {
			return
		}
		victim.snap.Release(r.snapPool)
		r.freeSnaps = append(r.freeSnaps, victim.snap)
		delete(r.warm, victimKey)
	}
}

// finish publishes the entry's result. Cancelled entries are evicted from
// the dedup cache (a later Submit under a live context retries them) and
// do not count as completed work for the progress hook.
//
// cbMu is taken around both the counter update and the hook invocation
// (it nests outside r.mu and is touched nowhere else), so two
// concurrently finishing runs deliver their RunInfos in counter order —
// the progress line can never count backwards.
func (r *Runner) finish(e *runEntry, res core.Result, cached bool, err error) {
	cancelled := isCancellation(err)
	r.cbMu.Lock()
	r.mu.Lock()
	e.res, e.err = res, err
	e.finished = true
	if cancelled {
		// A doomed entry may already have been replaced by a fresh
		// submission; evict the slot only if this run still owns it.
		if r.runs[e.fp] == e {
			delete(r.runs, e.fp)
		}
		r.submitted--
	} else {
		r.completed++
	}
	info := RunInfo{Config: e.cfg, Fingerprint: e.fp, Err: err, Cached: cached,
		Completed: r.completed, Submitted: r.submitted}
	cb := r.opts.OnRunDone
	r.mu.Unlock()
	// The hook fires before done closes: when a waiter unblocks, its run's
	// progress callback has already been delivered.
	if cb != nil && !cancelled {
		cb(info)
	}
	r.cbMu.Unlock()
	close(e.done)
	e.cancel() // release the entry context's resources
}

// coreRun is the simulation entry point; a variable so tests can inject
// panics and delays behind the Submit/Wait API.
var coreRun = core.Run

// isCancellation reports whether err is a context cancellation rather than
// a simulation failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WaitIdle blocks until every in-flight simulation goroutine has exited.
// After a cancellation it bounds shutdown: admitted runs abort at the next
// event-loop stride, so the pool drains in well under a second.
func (r *Runner) WaitIdle() { r.wg.Wait() }

// Progress returns the runner-wide counters: distinct simulations
// completed and submitted so far.
func (r *Runner) Progress() (completed, submitted int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completed, r.submitted
}

// baseConfig derives the core config for one benchmark/scheme pair.
func (r *Runner) baseConfig(scheme core.Scheme, bench string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = bench
	cfg.CoresPerNode = r.opts.Cores
	cfg.WarmupInstructions = r.opts.Warmup
	cfg.MeasureInstructions = r.opts.Measure
	cfg.Seed = r.opts.Seed
	return cfg
}

// config builds the fully-mutated configuration for one run request. The
// mutation is applied at request-build time, so run identity is carried by
// the resulting config value alone — there is no key for it to drift from.
func (r *Runner) config(scheme core.Scheme, bench string, mutate func(*core.Config)) core.Config {
	cfg := r.baseConfig(scheme, bench)
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// perBenchmark evaluates metric for every benchmark under scheme with the
// default parameters, running the simulations concurrently.
func (r *Runner) perBenchmark(ctx context.Context, scheme core.Scheme, metric func(core.Result) float64) ([]float64, error) {
	rows, err := r.perBenchmarkSchemes(ctx, []core.Scheme{scheme}, metric)
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// perBenchmarkSchemes evaluates metric for every benchmark under each
// scheme, submitting the whole scheme×benchmark grid as one batch so all
// runs overlap. Row i corresponds to schemes[i] in benchmark order.
func (r *Runner) perBenchmarkSchemes(ctx context.Context, schemes []core.Scheme, metric func(core.Result) float64) ([][]float64, error) {
	benches := r.opts.benchmarks()
	var cfgs []core.Config
	for _, s := range schemes {
		for _, b := range benches {
			cfgs = append(cfgs, r.config(s, b, nil))
		}
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(schemes))
	for i := range schemes {
		row := make([]float64, len(benches))
		for j := range benches {
			row[j] = metric(res[i*len(benches)+j])
		}
		out[i] = row
	}
	return out, nil
}

// sensitivityGroups returns the grouping the paper uses for §V-D: geomeans
// of the SPEC, PARSEC and GAP suites plus pf and dc individually (§V-D:
// "dc is the only [NPB] benchmark which has significant performance impact").
func (r *Runner) sensitivityGroups() []sensGroup {
	suites := workload.Suites()
	in := func(names []string) []string {
		set := map[string]bool{}
		for _, b := range r.opts.benchmarks() {
			set[b] = true
		}
		var out []string
		for _, n := range names {
			if set[n] {
				out = append(out, n)
			}
		}
		return out
	}
	return []sensGroup{
		{"SPEC", in(suites["SPEC 2006"])},
		{"PARSEC", in(suites["PARSEC"])},
		{"GAP", in(suites["GAP"])},
		{"pf", in([]string{"pf"})},
		{"dc", in([]string{"dc"})},
	}
}

type sensGroup struct {
	name    string
	members []string
}

// speedupOverIFAM computes geomean over group members of
// IPC(scheme,mutate)/IPC(I-FAM,mutate) under the same mutation — the
// y-axis of Figures 13–16. Both runs of every member pair are submitted
// together.
func (r *Runner) speedupOverIFAM(ctx context.Context, g sensGroup, scheme core.Scheme, mutate func(*core.Config)) (float64, error) {
	var cfgs []core.Config
	for _, b := range g.members {
		cfgs = append(cfgs,
			r.config(scheme, b, mutate),
			r.config(core.IFAM, b, mutate))
	}
	pairs, err := r.runPaired(ctx, cfgs)
	if err != nil {
		return 0, err
	}
	var ratios []float64
	for _, p := range pairs {
		ratios = append(ratios, p[0].Speedup(p[1]))
	}
	return stats.Geomean(ratios), nil
}

// Options returns the runner options.
func (r *Runner) Options() Options { return r.opts }

// CachedRuns reports how many distinct simulations the runner has
// completed successfully — identical at every Parallelism setting thanks
// to the fingerprint-keyed deduplication.
func (r *Runner) CachedRuns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.runs {
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default:
		}
	}
	return n
}

// nsLabel formats a fabric latency for figure x-labels. Non-integer values
// keep their fractional part (1500ns is "1.5us", not a truncated "1us").
func nsLabel(t sim.Time) string {
	if t >= sim.US(1) {
		return fmt.Sprintf("%gus", float64(t)/float64(sim.Microsecond))
	}
	return fmt.Sprintf("%gns", float64(t)/float64(sim.Nanosecond))
}
