package experiments

import (
	"context"
	"fmt"

	"deact/internal/core"
	"deact/internal/stats"
	"deact/internal/workload"
)

// sensitive/insensitive partition per the paper (§V-C).
func partition(benchmarks []string) (sensitive, insensitive []string) {
	cat := workload.Catalog()
	for _, b := range benchmarks {
		if cat[b].ATSensitive {
			sensitive = append(sensitive, b)
		} else {
			insensitive = append(insensitive, b)
		}
	}
	return sensitive, insensitive
}

// meanMetric averages metric over benches under scheme, submitting all
// runs as one batch.
func (r *Runner) meanMetric(ctx context.Context, scheme core.Scheme, benches []string, metric func(core.Result) float64) (float64, error) {
	var cfgs []core.Config
	for _, b := range benches {
		cfgs = append(cfgs, r.config(scheme, b, nil))
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return 0, err
	}
	var xs []float64
	for _, re := range res {
		xs = append(xs, metric(re))
	}
	return stats.Mean(xs), nil
}

// checkFig3Ordering: sensitive benchmarks slow down more than insensitive.
func checkFig3Ordering(ctx context.Context, r *Runner) (bool, string, error) {
	sens, insens := partition(r.opts.benchmarks())
	slowdown := func(benches []string) (float64, error) {
		pairs, err := r.pairedDefaults(ctx, core.EFAM, core.IFAM, benches)
		if err != nil {
			return 0, err
		}
		var xs []float64
		for _, p := range pairs {
			xs = append(xs, p[0].Speedup(p[1]))
		}
		return stats.Geomean(xs), nil
	}
	s, err := slowdown(sens)
	if err != nil {
		return false, "", err
	}
	i, err := slowdown(insens)
	if err != nil {
		return false, "", err
	}
	return s > i, fmt.Sprintf("sensitive geomean %.2f× vs insensitive %.2f×", s, i), nil
}

// checkFig4Blowup: I-FAM AT share > E-FAM AT share everywhere.
func checkFig4Blowup(ctx context.Context, r *Runner) (bool, string, error) {
	worstGap := 1.0
	var worstBench string
	benches := r.opts.benchmarks()
	pairs, err := r.pairedDefaults(ctx, core.EFAM, core.IFAM, benches)
	if err != nil {
		return false, "", err
	}
	for i, b := range benches {
		gap := pairs[i][1].ATFraction - pairs[i][0].ATFraction
		if gap < worstGap {
			worstGap, worstBench = gap, b
		}
	}
	return worstGap > 0, fmt.Sprintf("smallest increase %.3f (%s)", worstGap, worstBench), nil
}

// checkFig9NBeatsW: DeACT-N ACM hit rate > DeACT-W on sensitive set, and
// DeACT-W within a few points of I-FAM on average (the paper's observation
// that W's extra contiguous coverage is wasted under random placement).
func checkFig9NBeatsW(ctx context.Context, r *Runner) (bool, string, error) {
	sens, _ := partition(r.opts.benchmarks())
	acm := func(s core.Scheme) (float64, error) {
		return r.meanMetric(ctx, s, sens, func(res core.Result) float64 { return res.ACMHitRate })
	}
	n, err := acm(core.DeACTN)
	if err != nil {
		return false, "", err
	}
	w, err := acm(core.DeACTW)
	if err != nil {
		return false, "", err
	}
	i, err := acm(core.IFAM)
	if err != nil {
		return false, "", err
	}
	ok := n > w && w < i+0.10
	return ok, fmt.Sprintf("mean ACM hit: I-FAM %.2f, DeACT-W %.2f, DeACT-N %.2f", i, w, n), nil
}

// checkFig10DeACTHigh: DeACT translation hit > I-FAM per benchmark, strictly
// on the sensitive set where the STU cache thrashes.
func checkFig10DeACTHigh(ctx context.Context, r *Runner) (bool, string, error) {
	sens, _ := partition(r.opts.benchmarks())
	worst := 1.0
	var worstBench string
	pairs, err := r.pairedDefaults(ctx, core.IFAM, core.DeACTN, sens)
	if err != nil {
		return false, "", err
	}
	for i, b := range sens {
		gap := pairs[i][1].TranslationHitRate - pairs[i][0].TranslationHitRate
		if gap < worst {
			worst, worstBench = gap, b
		}
	}
	return worst > 0, fmt.Sprintf("smallest sensitive-set gap %.3f (%s)", worst, worstBench), nil
}

// checkFig11Monotone: mean AT share I-FAM > DeACT-W > DeACT-N.
func checkFig11Monotone(ctx context.Context, r *Runner) (bool, string, error) {
	at := func(s core.Scheme) (float64, error) {
		return r.meanMetric(ctx, s, r.opts.benchmarks(), func(res core.Result) float64 { return res.ATFraction })
	}
	i, err := at(core.IFAM)
	if err != nil {
		return false, "", err
	}
	w, err := at(core.DeACTW)
	if err != nil {
		return false, "", err
	}
	n, err := at(core.DeACTN)
	if err != nil {
		return false, "", err
	}
	return i > w && w > n, fmt.Sprintf("mean AT share: %.1f%% → %.1f%% → %.1f%%", i*100, w*100, n*100), nil
}

// checkFig12Ordering: the headline performance ordering.
func checkFig12Ordering(ctx context.Context, r *Runner) (bool, string, error) {
	sens, _ := partition(r.opts.benchmarks())
	ipc := func(s core.Scheme) (float64, error) {
		return r.meanMetric(ctx, s, sens, func(res core.Result) float64 { return res.IPC })
	}
	e, err := ipc(core.EFAM)
	if err != nil {
		return false, "", err
	}
	i, err := ipc(core.IFAM)
	if err != nil {
		return false, "", err
	}
	w, err := ipc(core.DeACTW)
	if err != nil {
		return false, "", err
	}
	n, err := ipc(core.DeACTN)
	if err != nil {
		return false, "", err
	}
	ok := e >= n && n >= w && w > i
	return ok, fmt.Sprintf("sensitive-set mean IPC: E %.4f ≥ N %.4f ≥ W %.4f > I %.4f", e, n, w, i), nil
}

// checkFig13Shrinks: DeACT speedup at 256 STU entries > at 4096.
func checkFig13Shrinks(ctx context.Context, r *Runner) (bool, string, error) {
	return r.checkSweepMonotone(ctx, "stu=256", func(c *core.Config) { c.STUEntries = 256 },
		"stu=4096", func(c *core.Config) { c.STUEntries = 4096 }, true)
}

// checkFig15Grows: speedup at 6µs fabric > at 100ns.
func checkFig15Grows(ctx context.Context, r *Runner) (bool, string, error) {
	return r.checkSweepMonotone(ctx, "fab=6us", func(c *core.Config) { c.FabricLatency = 6_000_000 },
		"fab=100ns", func(c *core.Config) { c.FabricLatency = 100_000 }, true)
}

// checkSweepMonotone compares geomean DeACT-N speedup over I-FAM at two
// sweep points across all sensitivity groups. The labels only name the
// points in the detail string; run identity comes from the mutated configs.
func (r *Runner) checkSweepMonotone(ctx context.Context, labelHi string, mutHi func(*core.Config), labelLo string, mutLo func(*core.Config), wantHiBigger bool) (bool, string, error) {
	var his, los []float64
	for _, g := range r.sensitivityGroups() {
		if len(g.members) == 0 {
			continue
		}
		hi, err := r.speedupOverIFAM(ctx, g, core.DeACTN, mutHi)
		if err != nil {
			return false, "", err
		}
		lo, err := r.speedupOverIFAM(ctx, g, core.DeACTN, mutLo)
		if err != nil {
			return false, "", err
		}
		his = append(his, hi)
		los = append(los, lo)
	}
	hi, lo := stats.Geomean(his), stats.Geomean(los)
	ok := hi > lo
	if !wantHiBigger {
		ok = lo > hi
	}
	return ok, fmt.Sprintf("%s: %.2f× vs %s: %.2f×", labelHi, hi, labelLo, lo), nil
}

// checkPairsMonotone: 3 pairs ≥ 2 pairs ≥ 1 pair.
func checkPairsMonotone(ctx context.Context, r *Runner) (bool, string, error) {
	var v [3]float64
	for pi, p := range []int{1, 2, 3} {
		p := p
		var xs []float64
		for _, g := range r.sensitivityGroups() {
			if len(g.members) == 0 {
				continue
			}
			x, err := r.speedupOverIFAM(ctx, g, core.DeACTN, func(c *core.Config) {
				c.PairsPerWay = p
				c.Layout.ACMBits = 8
			})
			if err != nil {
				return false, "", err
			}
			xs = append(xs, x)
		}
		v[pi] = stats.Geomean(xs)
	}
	return v[2] >= v[1] && v[1] >= v[0], fmt.Sprintf("1/2/3 pairs: %.2f/%.2f/%.2f×", v[0], v[1], v[2]), nil
}

// checkFig16Grows: speedup at 8 nodes > at 1 node for dc.
func checkFig16Grows(ctx context.Context, r *Runner) (bool, string, error) {
	speed := func(nodes int) (float64, error) {
		mutate := func(c *core.Config) { c.Nodes = nodes }
		rN, err := r.Run(ctx, r.config(core.DeACTN, "dc", mutate))
		if err != nil {
			return 0, err
		}
		rI, err := r.Run(ctx, r.config(core.IFAM, "dc", mutate))
		if err != nil {
			return 0, err
		}
		return rN.Speedup(rI), nil
	}
	one, err := speed(1)
	if err != nil {
		return false, "", err
	}
	eight, err := speed(8)
	if err != nil {
		return false, "", err
	}
	return eight > one, fmt.Sprintf("dc: 1 node %.2f× vs 8 nodes %.2f×", one, eight), nil
}
