package experiments

import (
	"context"
	"fmt"

	"deact/internal/core"
	"deact/internal/stats"
	"deact/internal/workload"
)

// mlpWindows is the sweep axis: OoO scheduling-window sizes in ops. The
// one-entry window is the in-order-equivalent baseline column (the
// degeneracy oracle pins that equivalence bit-for-bit).
func mlpWindows() []int { return []int{1, 2, 4, 8, 16, 32} }

// mlpSchedulerLatency fixes the non-swept scheduler shape: a 2-cycle
// wakeup/select stage between a chain load completing and its dependent
// issuing.
const mlpSchedulerLatency = 2

// mlpScenario is one workload column of the MLP sweep: a catalog benchmark
// re-shaped by a v2 pattern generator whose dependence structure is known.
type mlpScenario struct {
	label   string
	bench   string
	pattern string
	degree  int
}

// mlpScenarios spans the dependence spectrum the window can and cannot
// exploit: a degree-1 pointer chase is a pure dependence chain (every load
// feeds the next — run-ahead has nothing to overlap, IPC must stay flat), a
// stencil is pure independent streams (overlap scales with the window), and
// a graph frontier mixes a blocking vertex scan with independent edge
// bursts (partial scaling).
func mlpScenarios() []mlpScenario {
	return []mlpScenario{
		{label: "mcf/chase", bench: "mcf", pattern: workload.PatternPointerChase, degree: 1},
		{label: "mcf/frontier", bench: "mcf", pattern: workload.PatternGraphFrontier, degree: 8},
		{label: "mcf/stencil", bench: "mcf", pattern: workload.PatternStencil, degree: 4},
	}
}

// mlpConfig builds one grid point. The miss window is coupled to the
// scheduling window (a W-entry machine has ~W MSHRs), so the sweep varies
// one machine-size axis: both the run-ahead depth past dependent loads and
// the independent-miss overlap grow with W.
func (r *Runner) mlpConfig(s core.Scheme, sc mlpScenario, window int) core.Config {
	return r.config(s, sc.bench, func(c *core.Config) {
		c.Pattern = sc.pattern
		c.PatternDegree = sc.degree
		c.CoreModel = core.CoreOoO
		c.WindowSize = window
		c.MaxOutstanding = window
		c.SchedulerLatency = mlpSchedulerLatency
	})
}

// MLPSweep is the memory-level-parallelism experiment (beyond the paper,
// ROADMAP item 2): sweep the OoO scheduling-window size across workload
// dependence shapes under I-FAM and DeACT-N, reporting IPC relative to the
// one-entry (in-order-equivalent) window. It separates what the paper's
// fixed core could not: how much of FAM's translation latency an OoO core
// hides depends on the workload's dependence structure, not just its miss
// rate — streams scale with the window while pointer chases stay pinned to
// the serialized chain.
func (r *Runner) MLPSweep(ctx context.Context) (stats.Table, error) {
	windows := mlpWindows()
	scenarios := mlpScenarios()
	t := stats.Table{
		Title: fmt.Sprintf("MLP: IPC relative to window=1 (OoO core, scheduler latency %d cycles, MaxOutstanding=window)",
			mlpSchedulerLatency),
		Format: "%.3f",
	}
	for _, w := range windows {
		t.XLabels = append(t.XLabels, fmt.Sprintf("W=%d", w))
	}

	schemes := []core.Scheme{core.IFAM, core.DeACTN}
	var cfgs []core.Config
	for _, s := range schemes {
		for _, sc := range scenarios {
			for _, w := range windows {
				cfgs = append(cfgs, r.mlpConfig(s, sc, w))
			}
		}
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return t, err
	}

	idx := 0
	for _, s := range schemes {
		for _, sc := range scenarios {
			vals := make([]float64, 0, len(windows))
			base := res[idx].IPC
			for range windows {
				vals = append(vals, res[idx].IPC/base)
				idx++
			}
			if err := t.AddSeries(fmt.Sprintf("%v %s", s, sc.label), vals); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// checkMLPSeparatesDependence pins the mechanism rather than a fragile perf
// delta: widening the window from 1 to 32 must speed the stencil streams up
// substantially while the degree-1 pointer chase — a pure dependence chain
// — stays within a few percent of flat. Dedup answers all four runs from
// the sweep's cache.
func checkMLPSeparatesDependence(ctx context.Context, r *Runner) (bool, string, error) {
	scs := mlpScenarios()
	chase, stencil := scs[0], scs[2]
	cfgs := []core.Config{
		r.mlpConfig(core.DeACTN, chase, 1), r.mlpConfig(core.DeACTN, chase, 32),
		r.mlpConfig(core.DeACTN, stencil, 1), r.mlpConfig(core.DeACTN, stencil, 32),
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return false, "", err
	}
	chaseGain := res[1].IPC / res[0].IPC
	stencilGain := res[3].IPC / res[2].IPC
	detail := fmt.Sprintf("W=1 to W=32 IPC gain: chase %.3fx, stencil %.3fx", chaseGain, stencilGain)
	return chaseGain < 1.05 && stencilGain > 1.5, detail, nil
}
