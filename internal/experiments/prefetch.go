package experiments

import (
	"context"
	"fmt"

	"deact/internal/core"
	"deact/internal/stats"
	"deact/internal/workload"
)

// prefetchDegrees is the sweep axis: 0 disables the prefetcher entirely
// (the baseline column), the rest are blocks fetched per confirmed-stream
// trigger.
func prefetchDegrees() []int { return []int{0, 1, 2, 4, 8} }

// prefetchStreams/prefetchThreshold fix the non-swept prefetcher shape:
// a 64-entry PC table (plenty for the generators' handful of PCs) and the
// classic 2-confirmation stream filter.
const (
	prefetchStreams   = 64
	prefetchThreshold = 2
)

// prefetchScenario is one workload column of the prefetch sweep: a
// catalog benchmark, optionally re-shaped by a v2 pattern generator.
type prefetchScenario struct {
	label   string
	bench   string
	pattern string
	degree  int // pattern degree, not prefetch degree
}

// prefetchScenarios spans the prefetch-friendliness spectrum: the
// streaming-heavy skew benchmark (sp), a chase-heavy skew benchmark
// (canl), and the three v2 generators on an mcf-sized footprint —
// stencil (pure strided streams, the best case), pointer-chase (payload
// bursts only) and graph-frontier (vertex scan only).
func (o Options) prefetchScenarios() []prefetchScenario {
	return []prefetchScenario{
		{label: o.steadyBenchmark() + "/skew", bench: o.steadyBenchmark()},
		{label: o.noisyBenchmark() + "/skew", bench: o.noisyBenchmark()},
		{label: "mcf/stencil", bench: "mcf", pattern: workload.PatternStencil, degree: 4},
		{label: "mcf/chase", bench: "mcf", pattern: workload.PatternPointerChase, degree: 4},
		{label: "mcf/frontier", bench: "mcf", pattern: workload.PatternGraphFrontier, degree: 8},
	}
}

// prefetchConfig builds one grid point: deg 0 leaves the prefetcher off
// (bit-identical to a build without it), deg > 0 enables the PC-keyed
// table at the fixed shape.
func (r *Runner) prefetchConfig(s core.Scheme, sc prefetchScenario, deg int) core.Config {
	return r.config(s, sc.bench, func(c *core.Config) {
		c.Pattern = sc.pattern
		c.PatternDegree = sc.degree
		if deg > 0 {
			c.PrefetchStreams = prefetchStreams
			c.PrefetchDegree = deg
			c.PrefetchThreshold = prefetchThreshold
		}
	})
}

// PrefetchSweep is the prefetch-interaction experiment (beyond the paper,
// ROADMAP item 3): sweep the stream prefetcher's degree across workload
// shapes under I-FAM and DeACT-N, reporting IPC relative to
// prefetcher-off. It answers the question the paper's fixed pipeline
// could not pose: does prefetching hide FAM translation latency (each
// prefetch amortizes one translation across several blocks) or amplify
// the AT traffic it rides on?
func (r *Runner) PrefetchSweep(ctx context.Context) (stats.Table, error) {
	degs := prefetchDegrees()
	scenarios := r.opts.prefetchScenarios()
	t := stats.Table{
		Title: fmt.Sprintf("Prefetch interaction: IPC relative to prefetch-off (streams=%d, threshold=%d)",
			prefetchStreams, prefetchThreshold),
		Format: "%.3f",
	}
	for _, d := range degs {
		if d == 0 {
			t.XLabels = append(t.XLabels, "off")
		} else {
			t.XLabels = append(t.XLabels, fmt.Sprintf("deg=%d", d))
		}
	}

	schemes := []core.Scheme{core.IFAM, core.DeACTN}
	var cfgs []core.Config
	for _, s := range schemes {
		for _, sc := range scenarios {
			for _, d := range degs {
				cfgs = append(cfgs, r.prefetchConfig(s, sc, d))
			}
		}
	}
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return t, err
	}

	idx := 0
	for _, s := range schemes {
		for _, sc := range scenarios {
			vals := make([]float64, 0, len(degs))
			base := res[idx].IPC
			for range degs {
				vals = append(vals, res[idx].IPC/base)
				idx++
			}
			if err := t.AddSeries(fmt.Sprintf("%v %s", s, sc.label), vals); err != nil {
				return t, err
			}
		}
	}
	return t, nil
}

// checkPrefetchDetectsStreams pins the mechanism rather than a fragile
// perf delta: on the stencil workload (pure strided streams) the PC-keyed
// table must confirm streams and issue prefetches, and with the
// prefetcher off the counters must stay exactly zero — the off
// configuration is the golden-compatible no-op. Dedup answers both runs
// from the sweep's cache.
func checkPrefetchDetectsStreams(ctx context.Context, r *Runner) (bool, string, error) {
	sc := prefetchScenario{bench: "mcf", pattern: workload.PatternStencil, degree: 4}
	on := r.prefetchConfig(core.DeACTN, sc, 4)
	off := r.prefetchConfig(core.DeACTN, sc, 0)
	res, err := r.RunAll(ctx, []core.Config{on, off})
	if err != nil {
		return false, "", err
	}
	var issuedOn, issuedOff uint64
	for _, ns := range res[0].NodeStats {
		issuedOn += ns.Prefetch.Issued
	}
	for _, ns := range res[1].NodeStats {
		issuedOff += ns.Prefetch.Issued
	}
	detail := fmt.Sprintf("stencil prefetches issued: %d on, %d off", issuedOn, issuedOff)
	return issuedOn > 0 && issuedOff == 0, detail, nil
}
