package experiments

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"deact/internal/core"
)

// checkNoGoroutineLeak is a goleak-style guard without the external
// dependency: the goroutine count must return to (near) the baseline once
// the runner reports idle. Retries absorb runtime bookkeeping goroutines
// that exit asynchronously.
func checkNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d alive, baseline %d", n, baseline)
}

// slowConfig is a run big enough to still be in flight when the test
// cancels it (uncancelled it would take many seconds).
func slowConfig(r *Runner) core.Config {
	return r.config(core.DeACTN, "canl", func(c *core.Config) {
		c.MeasureInstructions = 5_000_000
	})
}

// TestCancelMidRunReturnsPromptly: cancelling while the simulation drains
// must unblock the waiter with context.Canceled, reclaim the worker slot,
// and leave no goroutines behind.
func TestCancelMidRunReturnsPromptly(t *testing.T) {
	baseline := runtime.NumGoroutine()
	r := New(schedOptions(1)) // one slot: a leaked slot would wedge the retry

	ctx, cancel := context.WithCancel(context.Background())
	fut := r.Submit(ctx, slowConfig(r))
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := fut.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("waiter unblocked after %v, not promptly", elapsed)
	}

	// The in-flight simulation must abort and release its slot: a healthy
	// run under a live context still goes through the single slot.
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(context.Background(), r.config(core.EFAM, "mcf", nil))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("pool unusable after cancellation: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run leaked its pool slot")
	}

	r.WaitIdle()
	checkNoGoroutineLeak(t, baseline)
}

// TestCancelBeforeAdmission: runs queued behind a full pool must abort
// without ever starting when their context dies, and the cancelled entry
// must be evicted so a later submission under a live context retries it.
func TestCancelBeforeAdmission(t *testing.T) {
	r := New(schedOptions(1))
	hogCtx, stopHog := context.WithCancel(context.Background())
	defer stopHog()
	hog := r.Submit(hogCtx, slowConfig(r)) // occupies the only slot

	ctx, cancel := context.WithCancel(context.Background())
	queuedCfg := r.config(core.IFAM, "mcf", nil)
	queued := r.Submit(ctx, queuedCfg)
	cancel()
	if _, err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("queued run: want context.Canceled, got %v", err)
	}

	stopHog()
	if _, err := hog.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("hog: want context.Canceled, got %v", err)
	}
	r.WaitIdle()

	// Both entries were evicted: a fresh submission must simulate.
	if _, err := r.Run(context.Background(), queuedCfg); err != nil {
		t.Fatalf("evicted entry did not retry: %v", err)
	}
	if done, _ := r.Progress(); done != 1 {
		t.Fatalf("Progress completed = %d, want 1 (cancelled runs must not count)", done)
	}
}

// TestResubmitAfterCancelledWaitGetsFreshRun: once a cancelled waiter's
// Wait has returned, the entry is doomed under the same lock Submit
// attaches under — an immediate resubmission with a live context (no
// WaitIdle barrier) must land on a fresh entry and produce a real result,
// never a spurious context.Canceled from the dying run.
func TestResubmitAfterCancelledWaitGetsFreshRun(t *testing.T) {
	r := New(schedOptions(2))
	cfg := r.config(core.DeACTN, "canl", func(c *core.Config) {
		c.MeasureInstructions = 20_000 // fast enough to resimulate below
	})

	ctx, cancel := context.WithCancel(context.Background())
	fut := r.Submit(ctx, cfg)
	cancel()
	if _, err := fut.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// No WaitIdle: the doomed run may still be unwinding. A live-context
	// waiter must not be able to attach to it.
	quick := r.config(core.IFAM, "mcf", nil)
	if _, err := r.Run(context.Background(), quick); err != nil {
		t.Fatalf("fresh run after cancelled wait: %v", err)
	}
	res, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resubmitted cancelled config: %v", err)
	}
	if res.Instructions == 0 {
		t.Fatal("resubmission returned an empty result")
	}
	r.WaitIdle()
}

// TestSharedEntryDetachedFromSingleWaiter: one waiter cancelling must not
// abort a computation another waiter still wants — the in-flight run is
// detached from any single waiter's context.
func TestSharedEntryDetachedFromSingleWaiter(t *testing.T) {
	r := New(schedOptions(2))
	cfg := r.config(core.DeACTN, "mcf", nil)

	ctx1, cancel1 := context.WithCancel(context.Background())
	f1 := r.Submit(ctx1, cfg)
	f2 := r.Submit(context.Background(), cfg) // deduplicated onto the same entry

	cancel1()
	if _, err := f1.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: want context.Canceled, got %v", err)
	}
	res, err := f2.Wait()
	if err != nil {
		t.Fatalf("surviving waiter failed: %v", err)
	}
	if res.Instructions == 0 {
		t.Fatal("surviving waiter got an empty result")
	}
}

// TestReportCancelled: a report cancelled mid-flight returns promptly with
// context.Canceled and drains its worker pool before returning.
func TestReportCancelled(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	var buf bytes.Buffer
	o := Options{Warmup: 500_000, Measure: 500_000, Cores: 1, Seed: 42,
		Benchmarks: []string{"mcf", "canl", "dc"}, Parallelism: 2}
	start := time.Now()
	err := Report(ctx, &buf, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled report returned after %v", elapsed)
	}
	checkNoGoroutineLeak(t, baseline)
}
