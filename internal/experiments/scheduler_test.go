package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"deact/internal/core"
)

// schedOptions is a deliberately tiny scale: scheduler tests exercise
// concurrency and determinism, not simulation fidelity.
func schedOptions(parallelism int) Options {
	return Options{
		Warmup: 3_000, Measure: 3_000, Cores: 1, Seed: 42,
		Benchmarks:  []string{"mcf", "canl", "dc"},
		Parallelism: parallelism,
	}
}

// schedBatch is a request mix with deliberate duplicates (the Figure 3/12
// sharing pattern) and a mutated configuration.
func schedBatch() []runRequest {
	stu512 := func(c *core.Config) { c.STUEntries = 512 }
	return []runRequest{
		defaultReq(core.EFAM, "mcf"),
		defaultReq(core.IFAM, "mcf"),
		defaultReq(core.EFAM, "mcf"), // duplicate of request 0
		defaultReq(core.DeACTN, "canl"),
		{scheme: core.DeACTN, bench: "canl", key: "stu=512", mutate: stu512},
		{scheme: core.IFAM, bench: "canl", key: "stu=512", mutate: stu512},
		defaultReq(core.DeACTN, "canl"), // duplicate of request 3
		defaultReq(core.DeACTW, "dc"),
	}
}

// TestParallelMatchesSerial is the scheduler's core contract: a parallel
// harness produces the same core.Result values, in the same order, and the
// same CachedRuns() count as the serial (Parallelism = 1) harness.
func TestParallelMatchesSerial(t *testing.T) {
	serial := New(schedOptions(1))
	parallel := New(schedOptions(8))

	rs, err := serial.runAll(schedBatch())
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.runAll(schedBatch())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, rp) {
		t.Fatalf("parallel results differ from serial:\nserial:   %+v\nparallel: %+v", rs, rp)
	}
	if serial.CachedRuns() != parallel.CachedRuns() {
		t.Fatalf("CachedRuns: serial %d, parallel %d", serial.CachedRuns(), parallel.CachedRuns())
	}
}

// TestRunAllDeduplicates: duplicate requests — both within one batch and
// across batches — must simulate each distinct (scheme, bench, key)
// exactly once.
func TestRunAllDeduplicates(t *testing.T) {
	h := New(schedOptions(4))
	batch := schedBatch()
	res, err := h.runAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 6 // 8 requests, 2 duplicates
	if got := h.CachedRuns(); got != distinct {
		t.Fatalf("CachedRuns = %d, want %d", got, distinct)
	}
	if !reflect.DeepEqual(res[0], res[2]) || !reflect.DeepEqual(res[3], res[6]) {
		t.Fatal("duplicate requests returned different results")
	}
	// Resubmitting the whole batch must be pure cache hits.
	res2, err := h.runAll(batch)
	if err != nil {
		t.Fatal(err)
	}
	if h.CachedRuns() != distinct {
		t.Fatalf("resubmission grew CachedRuns to %d", h.CachedRuns())
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("resubmitted batch returned different results")
	}
}

// TestRunAllErrorDeterministic: the reported error is the first failing
// request in submission order, whatever the execution interleaving.
func TestRunAllErrorDeterministic(t *testing.T) {
	h := New(schedOptions(4))
	bad := func(c *core.Config) { c.CoresPerNode = -1 }
	reqs := []runRequest{
		defaultReq(core.EFAM, "mcf"),
		{scheme: core.IFAM, bench: "mcf", key: "bad", mutate: bad},
		{scheme: core.DeACTN, bench: "canl", key: "bad", mutate: bad},
	}
	_, err := h.runAll(reqs)
	if err == nil {
		t.Fatal("expected an error from the invalid configs")
	}
	want := "experiments: mcf under I-FAM (bad)"
	if !strings.HasPrefix(err.Error(), want) {
		t.Fatalf("error is not the first failing request in order: %v", err)
	}
}

// TestConcurrentGenerators drives two figure generators over one shared
// harness from separate goroutines with Parallelism > 1 — the -race
// exercise for the dedup map and worker pool.
func TestConcurrentGenerators(t *testing.T) {
	h := New(schedOptions(4))
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = h.Figure4() }()
	go func() { defer wg.Done(); _, errs[1] = h.Figure11() }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Figures 4 and 11 share the I-FAM default runs: 4 wants E-FAM +
	// I-FAM, 11 wants I-FAM + DeACT-W + DeACT-N → 4 schemes × 3 benches.
	if got := h.CachedRuns(); got != 12 {
		t.Fatalf("CachedRuns = %d, want 12 (shared runs must dedup)", got)
	}
}

// TestReportByteIdenticalAcrossParallelism is the acceptance check for
// cmd/deact-report: the full report must be byte-identical between the
// serial harness and a maximally parallel one at the same seed.
func TestReportByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	o := Options{Warmup: 8_000, Measure: 8_000, Cores: 1, Seed: 42,
		Benchmarks: []string{"canl", "sp", "pf", "dc"}}
	var serial, parallel bytes.Buffer
	o.Parallelism = 1
	if err := Report(&serial, o); err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 8
	if err := Report(&parallel, o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("report differs between Parallelism=1 and Parallelism=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}
