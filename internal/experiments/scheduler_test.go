package experiments

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"deact/internal/core"
)

// schedOptions is a deliberately tiny scale: scheduler tests exercise
// concurrency and determinism, not simulation fidelity.
func schedOptions(parallelism int) Options {
	return Options{
		Warmup: 3_000, Measure: 3_000, Cores: 1, Seed: 42,
		Benchmarks:  []string{"mcf", "canl", "dc"},
		Parallelism: parallelism,
	}
}

// schedBatch is a config mix with deliberate duplicates (the Figure 3/12
// sharing pattern) and mutated configurations.
func schedBatch(r *Runner) []core.Config {
	stu512 := func(c *core.Config) { c.STUEntries = 512 }
	return []core.Config{
		r.config(core.EFAM, "mcf", nil),
		r.config(core.IFAM, "mcf", nil),
		r.config(core.EFAM, "mcf", nil), // duplicate of request 0
		r.config(core.DeACTN, "canl", nil),
		r.config(core.DeACTN, "canl", stu512),
		r.config(core.IFAM, "canl", stu512),
		r.config(core.DeACTN, "canl", nil), // duplicate of request 3
		r.config(core.DeACTW, "dc", nil),
	}
}

// TestParallelMatchesSerial is the scheduler's core contract: a parallel
// runner produces the same core.Result values, in the same order, and the
// same CachedRuns() count as the serial (Parallelism = 1) runner.
func TestParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	serial := New(schedOptions(1))
	parallel := New(schedOptions(8))

	rs, err := serial.RunAll(ctx, schedBatch(serial))
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.RunAll(ctx, schedBatch(parallel))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, rp) {
		t.Fatalf("parallel results differ from serial:\nserial:   %+v\nparallel: %+v", rs, rp)
	}
	if serial.CachedRuns() != parallel.CachedRuns() {
		t.Fatalf("CachedRuns: serial %d, parallel %d", serial.CachedRuns(), parallel.CachedRuns())
	}
}

// TestRunAllDeduplicates: duplicate configurations — both within one batch
// and across batches — must simulate each distinct fingerprint exactly
// once.
func TestRunAllDeduplicates(t *testing.T) {
	ctx := context.Background()
	r := New(schedOptions(4))
	batch := schedBatch(r)
	res, err := r.RunAll(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	const distinct = 6 // 8 requests, 2 duplicates
	if got := r.CachedRuns(); got != distinct {
		t.Fatalf("CachedRuns = %d, want %d", got, distinct)
	}
	if !reflect.DeepEqual(res[0], res[2]) || !reflect.DeepEqual(res[3], res[6]) {
		t.Fatal("duplicate requests returned different results")
	}
	if done, sub := r.Progress(); done != distinct || sub != distinct {
		t.Fatalf("Progress = %d/%d, want %d/%d", done, sub, distinct, distinct)
	}
	// Resubmitting the whole batch must be pure cache hits.
	res2, err := r.RunAll(ctx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if r.CachedRuns() != distinct {
		t.Fatalf("resubmission grew CachedRuns to %d", r.CachedRuns())
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("resubmitted batch returned different results")
	}
}

// TestRunAllErrorDeterministic: the reported error is the first failing
// request in submission order, whatever the execution interleaving — and
// invalid-config failures surface core.ErrInvalidConfig.
func TestRunAllErrorDeterministic(t *testing.T) {
	r := New(schedOptions(4))
	bad := func(c *core.Config) { c.CoresPerNode = -1 }
	cfgs := []core.Config{
		r.config(core.EFAM, "mcf", nil),
		r.config(core.IFAM, "mcf", bad),
		r.config(core.DeACTN, "canl", bad),
	}
	_, err := r.RunAll(context.Background(), cfgs)
	if err == nil {
		t.Fatal("expected an error from the invalid configs")
	}
	want := "experiments: mcf under I-FAM"
	if !strings.HasPrefix(err.Error(), want) {
		t.Fatalf("error is not the first failing request in order: %v", err)
	}
}

// TestConcurrentGenerators drives two figure generators over one shared
// runner from separate goroutines with Parallelism > 1 — the -race
// exercise for the dedup map and worker pool.
func TestConcurrentGenerators(t *testing.T) {
	ctx := context.Background()
	r := New(schedOptions(4))
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = r.Figure4(ctx) }()
	go func() { defer wg.Done(); _, errs[1] = r.Figure11(ctx) }()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Figures 4 and 11 share the I-FAM default runs: 4 wants E-FAM +
	// I-FAM, 11 wants I-FAM + DeACT-W + DeACT-N → 4 schemes × 3 benches.
	if got := r.CachedRuns(); got != 12 {
		t.Fatalf("CachedRuns = %d, want 12 (shared runs must dedup)", got)
	}
}

// TestReportByteIdenticalAcrossParallelism is the acceptance check for
// cmd/deact-report: the full report must be byte-identical between the
// serial runner and a maximally parallel one at the same seed.
func TestReportByteIdenticalAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	ctx := context.Background()
	o := Options{Warmup: 8_000, Measure: 8_000, Cores: 1, Seed: 42,
		Benchmarks: []string{"canl", "sp", "pf", "dc"}}
	var serial, parallel bytes.Buffer
	o.Parallelism = 1
	if err := Report(ctx, &serial, o); err != nil {
		t.Fatal(err)
	}
	o.Parallelism = 8
	if err := Report(ctx, &parallel, o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Fatalf("report differs between Parallelism=1 and Parallelism=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}
