package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"deact/internal/core"
	"deact/internal/resultstore"
)

// storeSweepConfigs is a mini sweep: distinct configs across schemes,
// benchmarks and tenancy, small enough for the -short tier.
func storeSweepConfigs(r *Runner) []core.Config {
	cfgs := []core.Config{
		r.config(core.IFAM, "mcf", nil),
		r.config(core.DeACTN, "mcf", nil),
		r.config(core.DeACTN, "sp", nil),
		r.config(core.DeACTN, "mcf", func(c *core.Config) { c.STUEntries = 512 }),
		r.config(core.IFAM, "mcf", func(c *core.Config) { c.CoresPerNode = 2; c.Tenants = 2 }),
	}
	return cfgs
}

func storeOptions(t *testing.T, dir string) Options {
	t.Helper()
	st, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return Options{Warmup: 1_000, Measure: 2_000, Cores: 1, Seed: 42,
		Parallelism: 2, Store: st}
}

// TestRunnerWarmStoreRunsZeroSimulations is the acceptance gate for the
// persistent store: a repeated sweep against a warm store must perform
// zero simulations — proven by failing coreRun outright — with every
// progress-hook RunInfo marked Cached, and return results byte-identical
// to the cold run under the canonical encoding.
func TestRunnerWarmStoreRunsZeroSimulations(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	cold := New(storeOptions(t, dir))
	cfgs := storeSweepConfigs(cold)
	want, err := cold.RunAll(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	cold.WaitIdle()

	// Warm pass: a fresh Runner and a fresh Store handle, as a new process
	// would hold. Any attempt to simulate fails the run — and the test.
	orig := coreRun
	coreRun = func(context.Context, core.Config, ...core.RunOption) (core.Result, error) {
		return core.Result{}, errors.New("simulated on a warm store")
	}
	defer func() { coreRun = orig }()

	var mu sync.Mutex
	var infos []RunInfo
	opts := storeOptions(t, dir)
	opts.OnRunDone = func(ri RunInfo) {
		mu.Lock()
		infos = append(infos, ri)
		mu.Unlock()
	}
	warm := New(opts)
	got, err := warm.RunAll(ctx, cfgs)
	if err != nil {
		t.Fatalf("warm sweep simulated (or failed): %v", err)
	}
	warm.WaitIdle()

	if len(infos) != len(cfgs) {
		t.Fatalf("progress hook saw %d runs, want %d", len(infos), len(cfgs))
	}
	for _, ri := range infos {
		if !ri.Cached {
			t.Errorf("run %s/%v not served from the store", ri.Config.Benchmark, ri.Config.Scheme)
		}
	}
	for i := range want {
		we, err := json.Marshal(want[i])
		if err != nil {
			t.Fatal(err)
		}
		ge, err := json.Marshal(got[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(we, ge) {
			t.Errorf("config %d: warm result not byte-identical to cold run", i)
		}
	}
}

// TestRunnerColdStorePersists: a cold pass reports Cached=false and leaves
// every distinct result on disk.
func TestRunnerColdStorePersists(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	var mu sync.Mutex
	cachedSeen := false
	opts := storeOptions(t, dir)
	opts.OnRunDone = func(ri RunInfo) {
		mu.Lock()
		cachedSeen = cachedSeen || ri.Cached
		mu.Unlock()
	}
	r := New(opts)
	cfgs := storeSweepConfigs(r)
	if _, err := r.RunAll(ctx, cfgs); err != nil {
		t.Fatal(err)
	}
	r.WaitIdle()
	if cachedSeen {
		t.Fatal("cold pass reported a cached run")
	}
	st := opts.Store
	for i, cfg := range cfgs {
		if _, ok := st.Get(cfg); !ok {
			t.Errorf("config %d not persisted after the cold pass", i)
		}
	}
}

// TestRunnerStoreWithShareWarmup: the store hit path must bypass the
// warmup-sharing machinery without wedging groups — a mixed warm/cold
// sweep (one config's entry deleted) still completes and heals the gap.
func TestRunnerStoreWithShareWarmup(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	opts := storeOptions(t, dir)
	opts.ShareWarmup = true
	cold := New(opts)
	cfgs := storeSweepConfigs(cold)
	want, err := cold.RunAll(ctx, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	cold.WaitIdle()

	// Mixed pass: the cold pass's configs all hit; one config the cold
	// pass never ran must simulate (as a warmup-group leader with no
	// followers) alongside them. Hits bypass attachWarmGroup entirely, so
	// no group can wedge waiting for a leader that was served from disk.
	reopened := storeOptions(t, dir)
	reopened.ShareWarmup = true
	fresh := cold.config(core.DeACTW, "mcf", nil)
	mixed := append(append([]core.Config{}, cfgs...), fresh)
	mixedRunner := New(reopened)
	got, err := mixedRunner.RunAll(ctx, mixed)
	if err != nil {
		t.Fatal(err)
	}
	mixedRunner.WaitIdle()
	for i := range want {
		we, _ := json.Marshal(want[i])
		ge, _ := json.Marshal(got[i])
		if !bytes.Equal(we, ge) {
			t.Errorf("config %d drifted across the mixed warm/cold pass", i)
		}
	}
	// And the miss was persisted: a third pass over everything is all hits.
	if _, ok := reopened.Store.Get(fresh); !ok {
		t.Fatal("mixed pass did not persist its one cold run")
	}
}
