package experiments

import (
	"context"

	"deact/internal/core"
)

// RunAll submits every configuration and waits for the results in
// submission order. Duplicate configurations — within the batch or against
// previously executed runs — share one simulation (identity is
// Config.Fingerprint()). The error reported is the first failing request
// in submission order, so error behaviour is deterministic regardless of
// execution interleaving. On cancellation every future is still waited
// (and thereby detached), so the worker pool winds down instead of running
// the rest of the batch in the background.
func (r *Runner) RunAll(ctx context.Context, cfgs []core.Config) ([]core.Result, error) {
	futs := make([]*Future, len(cfgs))
	for i, cfg := range cfgs {
		futs[i] = r.Submit(ctx, cfg)
	}
	results := make([]core.Result, len(cfgs))
	errs := make([]error, len(cfgs))
	for i, f := range futs {
		results[i], errs[i] = f.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPaired executes an interleaved (a0, b0, a1, b1, …) batch and returns
// the results as pairs — the shape every "scheme vs its baseline"
// experiment consumes.
func (r *Runner) runPaired(ctx context.Context, cfgs []core.Config) ([][2]core.Result, error) {
	res, err := r.RunAll(ctx, cfgs)
	if err != nil {
		return nil, err
	}
	pairs := make([][2]core.Result, len(res)/2)
	for i := range pairs {
		pairs[i] = [2]core.Result{res[2*i], res[2*i+1]}
	}
	return pairs, nil
}

// pairedDefaults runs (a, b) defaults for every benchmark in one batch and
// returns the result pairs in benchmark order.
func (r *Runner) pairedDefaults(ctx context.Context, a, b core.Scheme, benches []string) ([][2]core.Result, error) {
	var cfgs []core.Config
	for _, bench := range benches {
		cfgs = append(cfgs, r.config(a, bench, nil), r.config(b, bench, nil))
	}
	return r.runPaired(ctx, cfgs)
}

// prefetchDefaults warms the run cache with the full scheme×benchmark grid
// of default-parameter simulations. Report calls it first so Table III and
// Figures 3, 4, 9–12 — which all draw on these runs — assemble from cache
// hits instead of each paying for its own subset serially.
func (r *Runner) prefetchDefaults(ctx context.Context) error {
	var cfgs []core.Config
	for _, s := range core.Schemes() {
		for _, b := range r.opts.benchmarks() {
			cfgs = append(cfgs, r.config(s, b, nil))
		}
	}
	_, err := r.RunAll(ctx, cfgs)
	return err
}
