package experiments

import (
	"sync"

	"deact/internal/core"
)

// runRequest declares one simulation: the scheme/benchmark pair plus the
// mutation (identified by key) applied to the base config. Generators build
// a batch of requests up front and submit it with runAll, so every
// independent simulation a figure needs can overlap with the others.
type runRequest struct {
	scheme core.Scheme
	bench  string
	key    string
	mutate func(*core.Config)
}

// defaultReq declares an unmutated (scheme, bench) run.
func defaultReq(scheme core.Scheme, bench string) runRequest {
	return runRequest{scheme: scheme, bench: bench, key: "default"}
}

// runAll executes every request through the worker pool and returns the
// results in request order. Duplicate requests — within the batch or
// against previously executed runs — share one simulation. The error
// reported is the first failing request in submission order, so error
// behaviour is deterministic regardless of execution interleaving.
func (h *Harness) runAll(reqs []runRequest) ([]core.Result, error) {
	results := make([]core.Result, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, rq := range reqs {
		wg.Add(1)
		go func(i int, rq runRequest) {
			defer wg.Done()
			results[i], errs[i] = h.run(rq.scheme, rq.bench, rq.key, rq.mutate)
		}(i, rq)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPaired executes an interleaved (a0, b0, a1, b1, …) batch through the
// pool and returns the results as pairs — the shape every "scheme vs its
// baseline" experiment consumes.
func (h *Harness) runPaired(reqs []runRequest) ([][2]core.Result, error) {
	res, err := h.runAll(reqs)
	if err != nil {
		return nil, err
	}
	pairs := make([][2]core.Result, len(res)/2)
	for i := range pairs {
		pairs[i] = [2]core.Result{res[2*i], res[2*i+1]}
	}
	return pairs, nil
}

// pairedDefaults runs (a, b) defaults for every benchmark in one batch and
// returns the result pairs in benchmark order.
func (h *Harness) pairedDefaults(a, b core.Scheme, benches []string) ([][2]core.Result, error) {
	var reqs []runRequest
	for _, bench := range benches {
		reqs = append(reqs, defaultReq(a, bench), defaultReq(b, bench))
	}
	return h.runPaired(reqs)
}

// prefetchDefaults warms the run cache with the full scheme×benchmark grid
// of default-parameter simulations. Report calls it first so Table III and
// Figures 3, 4, 9–12 — which all draw on these runs — assemble from cache
// hits instead of each paying for its own subset serially.
func (h *Harness) prefetchDefaults() error {
	var reqs []runRequest
	for _, s := range core.Schemes() {
		for _, b := range h.opts.benchmarks() {
			reqs = append(reqs, defaultReq(s, b))
		}
	}
	_, err := h.runAll(reqs)
	return err
}
