// Package experiments regenerates every table and figure of the paper's
// evaluation (§II-D motivation, §V results, §V-D sensitivity) from the
// simulator. Each experiment returns a stats.Table whose series mirror the
// corresponding figure's bars or lines; cmd/deact-report renders them all
// into EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"deact/internal/core"
	"deact/internal/sim"
	"deact/internal/stats"
	"deact/internal/workload"
)

// Options controls experiment scale. The defaults trade a little noise for
// tractable single-machine runtimes; raising Warmup/Measure sharpens every
// rate toward its steady-state value.
type Options struct {
	// Warmup and Measure are per-core instruction budgets.
	Warmup  uint64
	Measure uint64
	// Cores per node (the paper uses 4; 2 halves runtime with the same
	// qualitative behaviour).
	Cores int
	// Seed drives all randomness.
	Seed int64
	// Benchmarks restricts the benchmark set (default: all 14).
	Benchmarks []string
}

// DefaultOptions returns the scale used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Warmup: 80_000, Measure: 60_000, Cores: 2, Seed: 42}
}

// benchmarks returns the effective benchmark list.
func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

// Harness caches runs so figures sharing configurations (3, 4, 9–12 all
// reuse the default-parameter runs) do not recompute them.
type Harness struct {
	opts  Options
	cache map[string]core.Result
}

// New builds a harness.
func New(opts Options) *Harness {
	if opts.Cores <= 0 {
		opts.Cores = 2
	}
	if opts.Measure == 0 {
		opts.Measure = 60_000
	}
	return &Harness{opts: opts, cache: map[string]core.Result{}}
}

// baseConfig derives the core config for one benchmark/scheme pair.
func (h *Harness) baseConfig(scheme core.Scheme, bench string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = bench
	cfg.CoresPerNode = h.opts.Cores
	cfg.WarmupInstructions = h.opts.Warmup
	cfg.MeasureInstructions = h.opts.Measure
	cfg.Seed = h.opts.Seed
	return cfg
}

// run executes (with caching) the configuration produced by applying mutate
// to the base config.
func (h *Harness) run(scheme core.Scheme, bench string, key string, mutate func(*core.Config)) (core.Result, error) {
	cacheKey := fmt.Sprintf("%v|%s|%s", scheme, bench, key)
	if r, ok := h.cache[cacheKey]; ok {
		return r, nil
	}
	cfg := h.baseConfig(scheme, bench)
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := core.Run(cfg)
	if err != nil {
		return core.Result{}, fmt.Errorf("experiments: %s under %v (%s): %w", bench, scheme, key, err)
	}
	h.cache[cacheKey] = r
	return r, nil
}

// runDefault executes the unmutated config for (scheme, bench).
func (h *Harness) runDefault(scheme core.Scheme, bench string) (core.Result, error) {
	return h.run(scheme, bench, "default", nil)
}

// perBenchmark evaluates metric for every benchmark under scheme with the
// default parameters.
func (h *Harness) perBenchmark(scheme core.Scheme, metric func(core.Result) float64) ([]float64, error) {
	var out []float64
	for _, b := range h.opts.benchmarks() {
		r, err := h.runDefault(scheme, b)
		if err != nil {
			return nil, err
		}
		out = append(out, metric(r))
	}
	return out, nil
}

// sensitivityGroups returns the grouping the paper uses for §V-D: geomeans
// of the SPEC, PARSEC and GAP suites plus pf and dc individually (§V-D:
// "dc is the only [NPB] benchmark which has significant performance impact").
func (h *Harness) sensitivityGroups() []sensGroup {
	suites := workload.Suites()
	in := func(names []string) []string {
		set := map[string]bool{}
		for _, b := range h.opts.benchmarks() {
			set[b] = true
		}
		var out []string
		for _, n := range names {
			if set[n] {
				out = append(out, n)
			}
		}
		return out
	}
	return []sensGroup{
		{"SPEC", in(suites["SPEC 2006"])},
		{"PARSEC", in(suites["PARSEC"])},
		{"GAP", in(suites["GAP"])},
		{"pf", in([]string{"pf"})},
		{"dc", in([]string{"dc"})},
	}
}

type sensGroup struct {
	name    string
	members []string
}

// speedupOverIFAM computes geomean over group members of
// IPC(scheme,key)/IPC(I-FAM,key) under the same mutation — the y-axis of
// Figures 13–16.
func (h *Harness) speedupOverIFAM(g sensGroup, scheme core.Scheme, key string, mutate func(*core.Config)) (float64, error) {
	var ratios []float64
	for _, b := range g.members {
		rS, err := h.run(scheme, b, key, mutate)
		if err != nil {
			return 0, err
		}
		rI, err := h.run(core.IFAM, b, key, mutate)
		if err != nil {
			return 0, err
		}
		ratios = append(ratios, rS.Speedup(rI))
	}
	return stats.Geomean(ratios), nil
}

// Options returns the harness options.
func (h *Harness) Options() Options { return h.opts }

// CachedRuns reports how many distinct runs the harness has performed.
func (h *Harness) CachedRuns() int { return len(h.cache) }

// nsLabel formats a fabric latency for figure x-labels.
func nsLabel(t sim.Time) string {
	if t >= sim.US(1) {
		return fmt.Sprintf("%dus", uint64(t/sim.Microsecond))
	}
	return fmt.Sprintf("%dns", uint64(t/sim.Nanosecond))
}
