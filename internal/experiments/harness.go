// Package experiments regenerates every table and figure of the paper's
// evaluation (§II-D motivation, §V results, §V-D sensitivity) from the
// simulator. Each experiment returns a stats.Table whose series mirror the
// corresponding figure's bars or lines; cmd/deact-report renders them all
// into EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"deact/internal/core"
	"deact/internal/sim"
	"deact/internal/stats"
	"deact/internal/workload"
)

// Options controls experiment scale. The defaults trade a little noise for
// tractable single-machine runtimes; raising Warmup/Measure sharpens every
// rate toward its steady-state value.
type Options struct {
	// Warmup and Measure are per-core instruction budgets.
	Warmup  uint64
	Measure uint64
	// Cores per node (the paper uses 4; 2 halves runtime with the same
	// qualitative behaviour).
	Cores int
	// Seed drives all randomness.
	Seed int64
	// Benchmarks restricts the benchmark set (default: all 14).
	Benchmarks []string
	// Parallelism bounds how many core.Run simulations execute
	// concurrently. 0 (the default) means runtime.GOMAXPROCS(0); 1
	// reproduces the old strictly-serial harness. Results and
	// CachedRuns() are identical at every setting: runs are
	// deduplicated singleflight-style and assembled in submission
	// order, and each simulation is deterministic given its config.
	Parallelism int
}

// DefaultOptions returns the scale used for EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{Warmup: 80_000, Measure: 60_000, Cores: 2, Seed: 42}
}

// benchmarks returns the effective benchmark list.
func (o Options) benchmarks() []string {
	if len(o.Benchmarks) > 0 {
		return o.Benchmarks
	}
	return workload.Names()
}

// parallelism returns the effective worker-pool size.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// runEntry is the singleflight slot for one distinct (scheme, bench, key)
// configuration: the first requester computes, everyone else waits on done.
type runEntry struct {
	done chan struct{} // closed when res/err are valid
	res  core.Result
	err  error
}

// Harness schedules simulation runs for the figure and table generators.
// Requests are deduplicated so figures sharing configurations (3, 4, 9–12
// all reuse the default-parameter runs) compute each distinct
// (scheme, bench, key) exactly once, and executed by a worker pool of
// Options.Parallelism slots so independent runs overlap.
type Harness struct {
	opts Options
	sem  chan struct{} // worker-pool slots: at most cap(sem) core.Run calls in flight

	mu   sync.Mutex
	runs map[string]*runEntry
}

// New builds a harness.
func New(opts Options) *Harness {
	if opts.Cores <= 0 {
		opts.Cores = 2
	}
	if opts.Measure == 0 {
		opts.Measure = 60_000
	}
	return &Harness{
		opts: opts,
		sem:  make(chan struct{}, opts.parallelism()),
		runs: map[string]*runEntry{},
	}
}

// baseConfig derives the core config for one benchmark/scheme pair.
func (h *Harness) baseConfig(scheme core.Scheme, bench string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = bench
	cfg.CoresPerNode = h.opts.Cores
	cfg.WarmupInstructions = h.opts.Warmup
	cfg.MeasureInstructions = h.opts.Measure
	cfg.Seed = h.opts.Seed
	return cfg
}

// run executes (with singleflight deduplication) the configuration produced
// by applying mutate to the base config. Concurrent callers of the same
// (scheme, bench, key) share one simulation; distinct configurations run in
// parallel up to the pool size.
//
// The worker slot is released and the entry's done channel closed via
// defer: a panic anywhere in the mutate/simulate path (converted to an
// error for this and every deduplicated waiter) can neither leak a pool
// slot nor leave waiters blocked forever.
func (h *Harness) run(scheme core.Scheme, bench string, key string, mutate func(*core.Config)) (core.Result, error) {
	cacheKey := fmt.Sprintf("%v|%s|%s", scheme, bench, key)
	h.mu.Lock()
	if e, ok := h.runs[cacheKey]; ok {
		h.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	h.runs[cacheKey] = e
	h.mu.Unlock()

	h.sem <- struct{}{} // acquire a worker slot
	func() {
		defer func() {
			if p := recover(); p != nil {
				e.err = fmt.Errorf("experiments: %s under %v (%s): panic: %v", bench, scheme, key, p)
			}
			<-h.sem // release the worker slot
			close(e.done)
		}()
		cfg := h.baseConfig(scheme, bench)
		if mutate != nil {
			mutate(&cfg)
		}
		r, err := core.Run(cfg)
		if err != nil {
			e.err = fmt.Errorf("experiments: %s under %v (%s): %w", bench, scheme, key, err)
		} else {
			e.res = r
		}
	}()
	return e.res, e.err
}

// runDefault executes the unmutated config for (scheme, bench).
func (h *Harness) runDefault(scheme core.Scheme, bench string) (core.Result, error) {
	return h.run(scheme, bench, "default", nil)
}

// perBenchmark evaluates metric for every benchmark under scheme with the
// default parameters, running the simulations concurrently.
func (h *Harness) perBenchmark(scheme core.Scheme, metric func(core.Result) float64) ([]float64, error) {
	rows, err := h.perBenchmarkSchemes([]core.Scheme{scheme}, metric)
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// perBenchmarkSchemes evaluates metric for every benchmark under each
// scheme, submitting the whole scheme×benchmark grid as one batch so all
// runs overlap. Row i corresponds to schemes[i] in benchmark order.
func (h *Harness) perBenchmarkSchemes(schemes []core.Scheme, metric func(core.Result) float64) ([][]float64, error) {
	benches := h.opts.benchmarks()
	var reqs []runRequest
	for _, s := range schemes {
		for _, b := range benches {
			reqs = append(reqs, defaultReq(s, b))
		}
	}
	res, err := h.runAll(reqs)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(schemes))
	for i := range schemes {
		row := make([]float64, len(benches))
		for j := range benches {
			row[j] = metric(res[i*len(benches)+j])
		}
		out[i] = row
	}
	return out, nil
}

// sensitivityGroups returns the grouping the paper uses for §V-D: geomeans
// of the SPEC, PARSEC and GAP suites plus pf and dc individually (§V-D:
// "dc is the only [NPB] benchmark which has significant performance impact").
func (h *Harness) sensitivityGroups() []sensGroup {
	suites := workload.Suites()
	in := func(names []string) []string {
		set := map[string]bool{}
		for _, b := range h.opts.benchmarks() {
			set[b] = true
		}
		var out []string
		for _, n := range names {
			if set[n] {
				out = append(out, n)
			}
		}
		return out
	}
	return []sensGroup{
		{"SPEC", in(suites["SPEC 2006"])},
		{"PARSEC", in(suites["PARSEC"])},
		{"GAP", in(suites["GAP"])},
		{"pf", in([]string{"pf"})},
		{"dc", in([]string{"dc"})},
	}
}

type sensGroup struct {
	name    string
	members []string
}

// speedupOverIFAM computes geomean over group members of
// IPC(scheme,key)/IPC(I-FAM,key) under the same mutation — the y-axis of
// Figures 13–16. Both runs of every member pair are submitted together.
func (h *Harness) speedupOverIFAM(g sensGroup, scheme core.Scheme, key string, mutate func(*core.Config)) (float64, error) {
	var reqs []runRequest
	for _, b := range g.members {
		reqs = append(reqs,
			runRequest{scheme: scheme, bench: b, key: key, mutate: mutate},
			runRequest{scheme: core.IFAM, bench: b, key: key, mutate: mutate})
	}
	pairs, err := h.runPaired(reqs)
	if err != nil {
		return 0, err
	}
	var ratios []float64
	for _, p := range pairs {
		ratios = append(ratios, p[0].Speedup(p[1]))
	}
	return stats.Geomean(ratios), nil
}

// Options returns the harness options.
func (h *Harness) Options() Options { return h.opts }

// CachedRuns reports how many distinct simulations the harness has
// completed successfully — identical at every Parallelism setting thanks
// to the singleflight deduplication.
func (h *Harness) CachedRuns() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, e := range h.runs {
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default:
		}
	}
	return n
}

// nsLabel formats a fabric latency for figure x-labels. Non-integer values
// keep their fractional part (1500ns is "1.5us", not a truncated "1us").
func nsLabel(t sim.Time) string {
	if t >= sim.US(1) {
		return fmt.Sprintf("%gus", float64(t)/float64(sim.Microsecond))
	}
	return fmt.Sprintf("%gns", float64(t)/float64(sim.Nanosecond))
}
