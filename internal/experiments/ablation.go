package experiments

import (
	"fmt"

	"deact/internal/core"
	"deact/internal/stats"
)

// ReadTrustAblation quantifies the §III-A optional optimization for
// encrypted FAM: with per-node encryption keys, reads can skip access
// control entirely (a foreign reader only obtains ciphertext). The
// ablation runs DeACT-N with and without the optimization and reports the
// speedup it buys per benchmark — an upper bound on what ACM caching is
// worth for read traffic.
func (h *Harness) ReadTrustAblation() (stats.Table, error) {
	t := stats.Table{
		Title:   "§III-A ablation: DeACT-N with trusted reads (encrypted FAM) vs baseline",
		XLabels: h.opts.benchmarks(),
	}
	var speedups []float64
	for _, b := range h.opts.benchmarks() {
		base, err := h.runDefault(core.DeACTN, b)
		if err != nil {
			return t, err
		}
		trusted, err := h.run(core.DeACTN, b, "trust-reads", func(c *core.Config) { c.TrustReads = true })
		if err != nil {
			return t, err
		}
		speedups = append(speedups, trusted.Speedup(base))
	}
	err := t.AddSeries("trusted-read speedup", speedups)
	return t, err
}

// checkReadTrustNeverHurts: skipping read verification can only remove
// work, so the speedup must be ≥ ~1 everywhere.
func checkReadTrustNeverHurts(h *Harness) (bool, string, error) {
	tbl, err := h.ReadTrustAblation()
	if err != nil {
		return false, "", err
	}
	min := stats.Min(tbl.Series[0].Values)
	return min > 0.97, fmt.Sprintf("min speedup %.3f, geomean %.3f", min, stats.Geomean(tbl.Series[0].Values)), nil
}
