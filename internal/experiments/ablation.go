package experiments

import (
	"context"
	"fmt"

	"deact/internal/core"
	"deact/internal/stats"
)

// ReadTrustAblation quantifies the §III-A optional optimization for
// encrypted FAM: with per-node encryption keys, reads can skip access
// control entirely (a foreign reader only obtains ciphertext). The
// ablation runs DeACT-N with and without the optimization and reports the
// speedup it buys per benchmark — an upper bound on what ACM caching is
// worth for read traffic.
func (r *Runner) ReadTrustAblation(ctx context.Context) (stats.Table, error) {
	t := stats.Table{
		Title:   "§III-A ablation: DeACT-N with trusted reads (encrypted FAM) vs baseline",
		XLabels: r.opts.benchmarks(),
	}
	benches := r.opts.benchmarks()
	var cfgs []core.Config
	for _, b := range benches {
		cfgs = append(cfgs,
			r.config(core.DeACTN, b, nil),
			r.config(core.DeACTN, b, func(c *core.Config) { c.TrustReads = true }))
	}
	pairs, err := r.runPaired(ctx, cfgs)
	if err != nil {
		return t, err
	}
	var speedups []float64
	for _, p := range pairs {
		speedups = append(speedups, p[1].Speedup(p[0]))
	}
	err = t.AddSeries("trusted-read speedup", speedups)
	return t, err
}

// checkReadTrustNeverHurts: skipping read verification can only remove
// work, so the speedup must be ≥ ~1 everywhere.
func checkReadTrustNeverHurts(ctx context.Context, r *Runner) (bool, string, error) {
	tbl, err := r.ReadTrustAblation(ctx)
	if err != nil {
		return false, "", err
	}
	min := stats.Min(tbl.Series[0].Values)
	return min > 0.97, fmt.Sprintf("min speedup %.3f, geomean %.3f", min, stats.Geomean(tbl.Series[0].Values)), nil
}
