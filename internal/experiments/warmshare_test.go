package experiments

import (
	"context"
	"reflect"
	"testing"

	"deact/internal/core"
)

// warmShareBatch is a MeasureInstructions sweep — the shape warmup sharing
// exists for: every measure length of one (scheme, benchmark, warmup) point
// shares a warmup fingerprint, so one group leader warms up and the rest
// fork. Two schemes and a seed variant keep several distinct groups live.
func warmShareBatch(r *Runner) []core.Config {
	measure := func(n uint64) func(*core.Config) {
		return func(c *core.Config) { c.MeasureInstructions = n }
	}
	seed7 := func(c *core.Config) { c.Seed = 7; c.MeasureInstructions = 2_000 }
	return []core.Config{
		r.config(core.IFAM, "mcf", measure(2_000)),
		r.config(core.IFAM, "mcf", measure(3_000)),
		r.config(core.IFAM, "mcf", measure(4_000)),
		r.config(core.DeACTN, "canl", measure(2_000)),
		r.config(core.DeACTN, "canl", measure(3_000)),
		r.config(core.IFAM, "mcf", seed7),
		r.config(core.IFAM, "mcf", measure(2_000)), // duplicate of request 0
	}
}

// TestSharedWarmupByteIdentical: a ShareWarmup runner must return exactly
// the results of a cold runner — at every Parallelism setting, including
// the strictly serial one where the leader fully finishes before any
// follower forks, and the concurrent ones where followers fork while the
// leader's measured phase is still running.
func TestSharedWarmupByteIdentical(t *testing.T) {
	ctx := context.Background()
	cold := New(schedOptions(2))
	want, err := cold.RunAll(ctx, warmShareBatch(cold))
	if err != nil {
		t.Fatal(err)
	}

	for _, par := range []int{1, 2, 4} {
		o := schedOptions(par)
		o.ShareWarmup = true
		r := New(o)
		got, err := r.RunAll(ctx, warmShareBatch(r))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d: shared-warmup results diverged from cold runner", par)
		}
		// The sweep has 4 distinct warmup fingerprints (mcf/IFAM,
		// canl/DeACTN, mcf/IFAM/seed7 — and the duplicate config dedups
		// before grouping). Each group must have published a snapshot.
		r.warmMu.Lock()
		groups, published := len(r.warm), 0
		for _, g := range r.warm {
			if g.snap != nil {
				published++
			}
		}
		r.warmMu.Unlock()
		if groups != 3 || published != 3 {
			t.Fatalf("parallelism %d: %d groups / %d snapshots, want 3/3", par, groups, published)
		}
	}
}

// TestSharedWarmupCachedEvictionBounded: more distinct warmup groups than
// maxWarmSnapshots must evict down to the bound once runs detach, releasing
// snapshot storage back to the pool rather than accumulating it.
func TestSharedWarmupEvictionBounded(t *testing.T) {
	o := schedOptions(2)
	o.ShareWarmup = true
	r := New(o)
	var cfgs []core.Config
	for seed := int64(0); seed < int64(maxWarmSnapshots)+3; seed++ {
		s := seed
		cfgs = append(cfgs, r.config(core.IFAM, "mcf", func(c *core.Config) {
			c.Seed = s
			c.MeasureInstructions = 1_000
		}))
	}
	if _, err := r.RunAll(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}
	r.warmMu.Lock()
	live := 0
	for _, g := range r.warm {
		if g.snap != nil {
			live++
		}
	}
	freed := len(r.freeSnaps)
	r.warmMu.Unlock()
	if live > maxWarmSnapshots {
		t.Fatalf("%d live snapshots, bound is %d", live, maxWarmSnapshots)
	}
	if freed == 0 {
		t.Fatal("eviction released no snapshot storage to the pool")
	}
}
