package acm

import (
	"deact/internal/addr"
	"deact/internal/arena"
)

// StoreState is a Store's mutable state for core.System.Snapshot: deep
// copies of every materialized chunk (nil-ness preserved — an
// unmaterialized region stays unmaterialized after restore only in the
// sense that its contents are all-absent; see RestoreState), the nested
// shared-region grant maps, and the write counter.
type StoreState struct {
	chunks [][]slot
	shared map[uint64]map[uint16]Perm
	writes uint64
}

// CaptureState captures the store into st, reusing st's storage where it
// fits and drawing chunk copies from a (nil allocates normally).
func (s *Store) CaptureState(a *arena.Arena, st *StoreState) {
	if cap(st.chunks) < len(s.chunks) {
		grown := make([][]slot, len(s.chunks))
		copy(grown, st.chunks)
		st.chunks = grown
	}
	// Release copies for regions beyond the source's region count (a prior
	// capture from a larger store), then mirror each chunk.
	for i := len(s.chunks); i < len(st.chunks); i++ {
		arena.Release(a, "snap.acm.chunk", st.chunks[i])
		st.chunks[i] = nil
	}
	st.chunks = st.chunks[:len(s.chunks)]
	for i, c := range s.chunks {
		st.chunks[i] = arena.CopyInto(a, "snap.acm.chunk", st.chunks[i], c)
	}
	if st.shared == nil {
		st.shared = map[uint64]map[uint16]Perm{}
	}
	clear(st.shared)
	for huge, grants := range s.shared {
		m := make(map[uint16]Perm, len(grants))
		for n, p := range grants {
			m[n] = p
		}
		st.shared[huge] = m
	}
	st.writes = s.writes
}

// RestoreState rewinds the store to st. Chunks the store has materialized
// but st captured as absent are zeroed in place rather than released: an
// all-absent chunk is observationally identical to an unmaterialized one,
// and keeping the slab saves the next run's materialization.
func (s *Store) RestoreState(st *StoreState) {
	for i := len(st.chunks); i < len(s.chunks); i++ {
		clear(s.chunks[i])
	}
	if len(s.chunks) < len(st.chunks) {
		grown := make([][]slot, len(st.chunks))
		copy(grown, s.chunks)
		s.chunks = grown
	}
	s.chunks = s.chunks[:len(st.chunks)]
	for i, src := range st.chunks {
		if len(src) == 0 {
			clear(s.chunks[i])
			continue
		}
		if s.chunks[i] == nil {
			s.chunks[i] = arena.Slice[slot](s.a, "acm.chunk", addr.PagesPerHuge)
		}
		copy(s.chunks[i], src)
	}
	clear(s.shared)
	for huge, grants := range st.shared {
		m := make(map[uint16]Perm, len(grants))
		for n, p := range grants {
			m[n] = p
		}
		s.shared[huge] = m
	}
	s.writes = st.writes
}

// Release returns st's chunk copies to a for reuse by later captures.
func (st *StoreState) Release(a *arena.Arena) {
	for i, c := range st.chunks {
		arena.Release(a, "snap.acm.chunk", c)
		st.chunks[i] = nil
	}
	st.chunks = st.chunks[:0]
}
