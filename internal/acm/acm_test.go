package acm

import (
	"testing"
	"testing/quick"

	"deact/internal/addr"
)

func layout() addr.Layout {
	return addr.Layout{DRAMSize: 1 << 30, FAMZoneSize: 4 << 30, FAMSize: 16 << 30, ACMBits: 16}
}

func TestPermPredicates(t *testing.T) {
	cases := []struct {
		p       Perm
		r, w, x bool
		s       string
	}{
		{PermNone, false, false, false, "----"},
		{PermR, true, false, false, "r---"},
		{PermRW, true, true, false, "rw--"},
		{PermRWX, true, true, true, "rwx-"},
	}
	for _, c := range cases {
		if c.p.CanRead() != c.r || c.p.CanWrite() != c.w || c.p.CanExec() != c.x {
			t.Errorf("%v predicates wrong", c.p)
		}
		if c.p.String() != c.s {
			t.Errorf("%v String = %q", c.p, c.p.String())
		}
	}
	if Perm(9).String() != "Perm(9)" {
		t.Error("out-of-range Perm String wrong")
	}
}

func TestSharedOwnerWidths(t *testing.T) {
	// Paper §III-A: 16-bit metadata → 14 ID bits → up to 16383 nodes.
	if SharedOwner(16) != 0x3FFF || MaxNodes(16) != 16383 {
		t.Fatalf("16-bit marker %#x nodes %d", SharedOwner(16), MaxNodes(16))
	}
	// The paper quotes 8191 nodes for 8-bit metadata, which does not fit
	// the encoding it defines (width-2 ID bits); we implement the encoding:
	// 6 ID bits → 63 usable nodes.
	if SharedOwner(8) != 63 || MaxNodes(8) != 63 {
		t.Fatalf("8-bit marker %#x nodes %d", SharedOwner(8), MaxNodes(8))
	}
	// 32-bit ACM has a 30-bit ID field; node IDs are uint16 throughout the
	// simulator, so the marker saturates.
	if SharedOwner(32) != 0xFFFF {
		t.Fatalf("32-bit marker %#x", SharedOwner(32))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := Entry{Owner: 1234, Perm: PermRW}
	raw, err := Encode(e, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := Decode(raw, 16); got != e {
		t.Fatalf("round trip %+v → %+v", e, got)
	}
	if _, err := Encode(Entry{Owner: 20000}, 16); err == nil {
		t.Fatal("oversized owner accepted for 16-bit ACM")
	}
	if _, err := Encode(Entry{Owner: 100}, 8); err == nil {
		t.Fatal("owner 100 must not fit 6-bit ID space")
	}
}

func TestOwnerCheck(t *testing.T) {
	s := NewStore(layout())
	if err := s.Set(7, Entry{Owner: 3, Perm: PermRW}); err != nil {
		t.Fatal(err)
	}
	if d := s.Check(7, 3, PermR); !d.Allowed || d.Shared || d.BitmapFetch {
		t.Fatalf("owner read denied: %+v", d)
	}
	if d := s.Check(7, 3, PermRW); !d.Allowed {
		t.Fatal("owner write denied")
	}
	if d := s.Check(7, 3, PermRWX); d.Allowed {
		t.Fatal("exec allowed with rw-- entry")
	}
	if d := s.Check(7, 4, PermR); d.Allowed || d.DeniedReason == "" {
		t.Fatalf("foreign node allowed: %+v", d)
	}
	// Unallocated page denies everyone, including node 0.
	if d := s.Check(99, 0, PermR); d.Allowed {
		t.Fatal("unallocated page readable")
	}
}

func TestSharedRegionCheck(t *testing.T) {
	s := NewStore(layout())
	const huge = 2
	s.MarkShared(huge, PermR)
	s.Grant(huge, 5, PermRW)
	s.Grant(huge, 6, PermR)

	page := addr.FPage(huge*addr.PagesPerHuge + 17)
	if d := s.Check(page, 5, PermRW); !d.Allowed || !d.Shared || !d.BitmapFetch {
		t.Fatalf("granted writer denied: %+v", d)
	}
	if d := s.Check(page, 6, PermR); !d.Allowed {
		t.Fatal("granted reader denied")
	}
	if d := s.Check(page, 6, PermRW); d.Allowed {
		t.Fatal("reader allowed to write shared page")
	}
	if d := s.Check(page, 7, PermR); d.Allowed {
		t.Fatal("ungranted node allowed on shared page")
	}
	s.Revoke(huge, 5)
	if d := s.Check(page, 5, PermR); d.Allowed {
		t.Fatal("revoked node still allowed")
	}
}

func TestMarkSharedCoversWholeRegion(t *testing.T) {
	s := NewStore(layout())
	s.MarkShared(0, PermR)
	for _, off := range []uint64{0, 1, addr.PagesPerHuge - 1} {
		if !s.IsSharedMarker(s.Entry(addr.FPage(off))) {
			t.Fatalf("sub-page %d not marked shared", off)
		}
	}
	if s.IsSharedMarker(s.Entry(addr.FPage(addr.PagesPerHuge))) {
		t.Fatal("marker leaked into next region")
	}
}

func TestClear(t *testing.T) {
	s := NewStore(layout())
	s.Set(1, Entry{Owner: 2, Perm: PermRWX})
	s.Clear(1)
	if d := s.Check(1, 2, PermR); d.Allowed {
		t.Fatal("cleared page still accessible")
	}
	if s.Writes() == 0 {
		t.Fatal("writes not counted")
	}
}

// Property: only the owner (with sufficient perm) passes Check on
// non-shared pages, for arbitrary owners/requesters.
func TestOwnershipQuick(t *testing.T) {
	s := NewStore(layout())
	f := func(page uint16, owner, requester uint16, permBits uint8) bool {
		owner &= 0x3FFE // avoid the shared marker
		requester &= 0x3FFF
		perm := Perm(permBits % 4)
		p := addr.FPage(page)
		if err := s.Set(p, Entry{Owner: owner, Perm: perm}); err != nil {
			return false
		}
		d := s.Check(p, requester, PermR)
		if requester != owner {
			return !d.Allowed
		}
		return d.Allowed == perm.CanRead()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
