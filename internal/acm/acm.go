// Package acm implements the FAM access-control metadata of Figure 5: a
// per-4KB-page entry (owner node ID + R/W/E permissions) stored in a
// dedicated region at the top of the FAM pool, plus a 64K-bit sharing
// bitmap per 1GB region for pages shared by a subset of nodes.
//
// The package holds the *contents* of the metadata; the addresses of the
// blocks that timing models must fetch come from addr.Layout. The paper's
// bitmap stores one bit per node with the shared page's permissions encoded
// in the per-page metadata; we additionally keep a per-node permission so
// the "mixed access permissions for nodes sharing a page" case (§III-A) is
// enforceable. The timing is identical either way: one 64B bitmap-block
// fetch.
//
// The per-page Check sits on the per-FAM-access hot path of every scheme:
// entries live in dense per-1GB-region chunk slabs (no map on the lookup
// path, no allocation after a chunk materializes), and the slabs recycle
// through internal/arena across runs — zeroed on reuse, so a recycled
// store is indistinguishable from a fresh one.
package acm

import (
	"fmt"

	"deact/internal/addr"
	"deact/internal/arena"
)

// Perm is a permission set. The paper packs read/write/execute into two
// bits; we use the same two-bit encoding space.
type Perm uint8

// Permission values (two-bit encoding as in Figure 5).
const (
	PermNone Perm = iota // no access
	PermR                // read-only
	PermRW               // read + write
	PermRWX              // read + write + execute
)

// CanRead reports read permission.
func (p Perm) CanRead() bool { return p >= PermR }

// CanWrite reports write permission.
func (p Perm) CanWrite() bool { return p >= PermRW }

// CanExec reports execute permission.
func (p Perm) CanExec() bool { return p == PermRWX }

// String implements fmt.Stringer.
func (p Perm) String() string {
	switch p {
	case PermNone:
		return "----"
	case PermR:
		return "r---"
	case PermRW:
		return "rw--"
	case PermRWX:
		return "rwx-"
	default:
		return fmt.Sprintf("Perm(%d)", uint8(p))
	}
}

// Entry is the decoded per-page metadata.
type Entry struct {
	// Owner is the owning node ID, or the all-ones shared marker.
	Owner uint16
	// Perm is the access granted to the owner (or, for shared pages, the
	// default permission).
	Perm Perm
}

// SharedOwner returns the all-ones node-ID marker for a given ACM width
// (0x3FFF for 16-bit metadata: 14 ID bits; §III-A supports 16383 nodes).
// Widths whose ID field exceeds 16 bits saturate at 0xFFFF, since node IDs
// are uint16 throughout the simulator.
func SharedOwner(acmBits uint) uint16 {
	if acmBits-2 >= 16 {
		return 0xFFFF
	}
	return uint16(1<<(acmBits-2)) - 1
}

// MaxNodes returns the number of usable node IDs for an ACM width (the
// shared marker is reserved).
func MaxNodes(acmBits uint) int { return int(SharedOwner(acmBits)) }

// Encode packs an entry into its on-FAM representation.
func Encode(e Entry, acmBits uint) (uint32, error) {
	if e.Owner > SharedOwner(acmBits) {
		return 0, fmt.Errorf("acm: owner %d does not fit in %d-bit metadata", e.Owner, acmBits)
	}
	return uint32(e.Owner)<<2 | uint32(e.Perm&3), nil
}

// Decode unpacks an on-FAM entry.
func Decode(raw uint32, acmBits uint) Entry {
	return Entry{
		Owner: uint16(raw>>2) & SharedOwner(acmBits),
		Perm:  Perm(raw & 3),
	}
}

// slot is one stored per-page entry plus its presence marker (so a page
// explicitly set to the zero Entry is distinguishable from an unallocated
// page).
type slot struct {
	e  Entry
	ok bool
}

// Store holds the metadata contents for one FAM pool.
//
// Per-page entries are stored in dense per-1GB-region chunks rather than a
// map: the ACM check sits on the per-FAM-access hot path of every scheme,
// and a chunk index + array load is both allocation-free and an order of
// magnitude cheaper than hashing. Chunks materialize on first write, so
// memory scales with the regions actually touched.
type Store struct {
	layout addr.Layout
	chunks [][]slot // indexed [page/PagesPerHuge][page%PagesPerHuge]
	// shared[huge][node] = permission granted to node in the 1GB region.
	shared map[uint64]map[uint16]Perm

	// a recycles chunk slabs across runs; chunks materialize mid-run (on
	// first metadata write into a region), so the store keeps the arena it
	// was built in. nil allocates normally.
	a *arena.Arena

	writes uint64
}

// NewStore builds an empty metadata store for the pool described by layout.
func NewStore(layout addr.Layout) *Store {
	return NewStoreInArena(nil, layout)
}

// NewStoreInArena is NewStore drawing the per-region chunk slabs — at 1MB
// per touched region, the single largest allocation a run makes — from a.
// A nil arena allocates normally.
func NewStoreInArena(a *arena.Arena, layout addr.Layout) *Store {
	regions := (layout.FAMSize + addr.HugeSize - 1) / addr.HugeSize
	return &Store{
		layout: layout,
		chunks: make([][]slot, regions),
		shared: map[uint64]map[uint16]Perm{},
		a:      a,
	}
}

// Recycle returns the materialized chunk slabs to a for the next run's
// construction. The store must not be used afterwards.
func (s *Store) Recycle(a *arena.Arena) {
	for i, c := range s.chunks {
		arena.Release(a, "acm.chunk", c)
		s.chunks[i] = nil
	}
}

// chunkFor returns the chunk holding p, materializing it if create is set.
func (s *Store) chunkFor(p addr.FPage, create bool) []slot {
	idx := p.Huge()
	for idx >= uint64(len(s.chunks)) {
		// Out-of-pool pages (tests use synthetic layouts) grow the index.
		if !create {
			return nil
		}
		s.chunks = append(s.chunks, nil)
	}
	c := s.chunks[idx]
	if c == nil && create {
		c = arena.Slice[slot](s.a, "acm.chunk", addr.PagesPerHuge)
		s.chunks[idx] = c
	}
	return c
}

// Set installs the metadata entry for page p.
func (s *Store) Set(p addr.FPage, e Entry) error {
	if _, err := Encode(e, s.layout.ACMBits); err != nil {
		return err
	}
	s.chunkFor(p, true)[uint64(p)%addr.PagesPerHuge] = slot{e: e, ok: true}
	s.writes++
	return nil
}

// Clear removes the entry for p (page freed).
func (s *Store) Clear(p addr.FPage) {
	if c := s.chunkFor(p, false); c != nil {
		c[uint64(p)%addr.PagesPerHuge] = slot{}
	}
	s.writes++
}

// Entry returns the metadata for p; unallocated pages decode as
// {Owner:0, Perm:PermNone}, which denies everyone.
func (s *Store) Entry(p addr.FPage) Entry {
	if c := s.chunkFor(p, false); c != nil {
		return c[uint64(p)%addr.PagesPerHuge].e
	}
	return Entry{}
}

// Has reports whether p has an installed metadata entry.
func (s *Store) Has(p addr.FPage) bool {
	c := s.chunkFor(p, false)
	return c != nil && c[uint64(p)%addr.PagesPerHuge].ok
}

// MarkShared flags every 4KB sub-page of the 1GB region as shared (the
// paper sets all sub-page node-ID fields to the shared marker when a page
// becomes shared) with the given default permission.
func (s *Store) MarkShared(huge uint64, defaultPerm Perm) {
	marker := SharedOwner(s.layout.ACMBits)
	c := s.chunkFor(addr.FPage(huge*addr.PagesPerHuge), true)
	fill := slot{e: Entry{Owner: marker, Perm: defaultPerm}, ok: true}
	for i := range c {
		c[i] = fill
	}
	s.writes++
	if s.shared[huge] == nil {
		s.shared[huge] = map[uint16]Perm{}
	}
}

// Grant gives node the given permission in the shared 1GB region.
func (s *Store) Grant(huge uint64, node uint16, p Perm) {
	if s.shared[huge] == nil {
		s.shared[huge] = map[uint16]Perm{}
	}
	s.shared[huge][node] = p
	s.writes++
}

// Revoke removes node's access to the shared region.
func (s *Store) Revoke(huge uint64, node uint16) {
	delete(s.shared[huge], node)
	s.writes++
}

// SharedPerm returns the permission node holds in the region's bitmap.
func (s *Store) SharedPerm(huge uint64, node uint16) Perm {
	return s.shared[huge][node]
}

// IsSharedMarker reports whether e flags a shared page for this store's
// ACM width.
func (s *Store) IsSharedMarker(e Entry) bool {
	return e.Owner == SharedOwner(s.layout.ACMBits)
}

// Decision is the outcome of an access-control check, including how much
// metadata traffic the check required (the timing model charges a bitmap
// block fetch only when the page turned out to be shared, §III-A).
type Decision struct {
	Allowed      bool
	Shared       bool // the per-page entry carried the shared marker
	BitmapFetch  bool // the check had to read a bitmap block
	EntryPerm    Perm // effective permission found
	DeniedReason string
}

// Check vets an access by node to page p needing permission want. It is the
// pure policy function; the STU wraps it with caching and timing.
func (s *Store) Check(p addr.FPage, node uint16, want Perm) Decision {
	e := s.Entry(p)
	if s.IsSharedMarker(e) {
		perm := s.SharedPerm(p.Huge(), node)
		d := Decision{Shared: true, BitmapFetch: true, EntryPerm: perm}
		if !permits(perm, want) {
			d.DeniedReason = fmt.Sprintf("node %d holds %v on shared region %d, needs %v", node, perm, p.Huge(), want)
			return d
		}
		d.Allowed = true
		return d
	}
	d := Decision{EntryPerm: e.Perm}
	if e.Owner != node {
		d.DeniedReason = fmt.Sprintf("page %d owned by node %d, accessed by node %d", p, e.Owner, node)
		return d
	}
	if !permits(e.Perm, want) {
		d.DeniedReason = fmt.Sprintf("node %d holds %v on page %d, needs %v", node, e.Perm, p, want)
		return d
	}
	d.Allowed = true
	return d
}

func permits(have, want Perm) bool {
	switch want {
	case PermNone:
		return true
	case PermR:
		return have.CanRead()
	case PermRW:
		return have.CanWrite()
	case PermRWX:
		return have.CanExec()
	default:
		return false
	}
}

// Writes counts metadata mutations (used by migration-cost accounting).
func (s *Store) Writes() uint64 { return s.writes }

// Layout returns the pool layout the store was built for.
func (s *Store) Layout() addr.Layout { return s.layout }
