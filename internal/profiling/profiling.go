// Package profiling holds the pprof plumbing shared by the command-line
// tools (cmd/deact-report, cmd/deact-sweep), so the -cpuprofile and
// -memprofile flags behave identically everywhere.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns a stop function
// that flushes and closes it (reporting the close error on stderr under
// tool, the caller's name, since stops run in defers). An empty path is a
// no-op.
func StartCPU(tool, path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		}
	}, nil
}

// WriteHeap writes an allocation profile of the settled live heap to path.
// An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // settle the live heap before the snapshot
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
