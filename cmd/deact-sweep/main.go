// Command deact-sweep runs one of the paper's sensitivity sweeps (§V-D)
// and prints the resulting series as a text table.
//
// Usage:
//
//	deact-sweep -sweep stu        # Figure 13: STU cache size
//	deact-sweep -sweep assoc      # §V-D1:     STU associativity
//	deact-sweep -sweep acm        # Figure 14: metadata width
//	deact-sweep -sweep pairs      # §V-D2:     DeACT-N pairs per way
//	deact-sweep -sweep fabric     # Figure 15: fabric latency
//	deact-sweep -sweep nodes      # Figure 16: node count
//	deact-sweep -sweep capacity   # capacity planning: per-tenant p99 vs scale
//	deact-sweep -sweep prefetch   # prefetch interaction: IPC vs prefetch degree
//	deact-sweep -sweep mlp        # memory-level parallelism: IPC vs OoO window size
//	deact-sweep -sweep nodes -cpuprofile cpu.prof -memprofile mem.prof
//	deact-sweep -sweep stu -store .deact-store   # serve repeat points from the persistent result store
//
// The capacity sweep takes three extra knobs: -steady and -noisy name the
// benchmarks the steady tenants and the noisy tenant 0 run, and
// -broker-shards fixes how many shards the FAM broker's ownership state is
// split into (0 derives one shard per two nodes). Its grid
// (nodes × tenants) is fixed like the figure sweeps' points are.
//
// Every (scheme, benchmark, point) simulation of a sweep is independent;
// they run concurrently on a worker pool of -parallelism slots (default:
// GOMAXPROCS). Output is identical at every parallelism level.
// -cpuprofile/-memprofile profile the whole sweep, matching deact-report.
// Progress streams to stderr; SIGINT/SIGTERM cancel the sweep gracefully
// with a nonzero exit.
//
// Flag units match deact-sim: -warmup/-measure are instruction counts per
// core, not cycles. The defaults (60k/50k) are deliberately smaller than
// deact-report's (80k/60k): a sweep multiplies every point across schemes
// and benchmark groups, so it trades a little steady-state sharpness for
// tractable wall time. Sweep *points* (sizes, latencies, widths) are fixed
// by the corresponding figure and are not flags.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"deact/internal/cli"
	"deact/internal/experiments"
	"deact/internal/stats"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "deact-sweep:", err)
		os.Exit(1)
	}
}

// run carries the whole sweep so defers (profile flush) execute on error
// paths too, instead of being skipped by os.Exit.
func run(ctx context.Context) error {
	var (
		sweep  = flag.String("sweep", "stu", "sweep to run: stu, assoc, acm, pairs, fabric, nodes, capacity, prefetch, mlp")
		steady = flag.String("steady", "sp", "capacity sweep: benchmark the steady tenants run")
		noisy  = flag.String("noisy", "canl", "capacity sweep: benchmark the noisy tenant 0 runs on every node")
		shards = flag.Int("broker-shards", 0, "capacity sweep: FAM broker shards per point, clamped to the node count (0 = one shard per two nodes)")
	)
	// Warmup/measure default below deact-report's 80k/60k deliberately: a
	// sweep multiplies every point across schemes and benchmark groups.
	scale := cli.ScaleFlags(flag.CommandLine, 60_000, 50_000, 2)
	runnerFlags := cli.RunnerFlags(flag.CommandLine)
	prof := cli.ProfilingFlags(flag.CommandLine, "the full sweep")
	flag.Parse()

	// Usage errors exit 2 (before any profile is started), runtime
	// failures exit 1 — the same convention cmd/benchgate follows.
	switch *sweep {
	case "stu", "assoc", "acm", "pairs", "fabric", "nodes", "capacity", "prefetch", "mlp":
	default:
		fmt.Fprintf(os.Stderr, "deact-sweep: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}

	stopCPU, err := prof.Start("deact-sweep")
	if err != nil {
		return err
	}
	defer stopCPU()

	opts, err := runnerFlags.Options(scale)
	if err != nil {
		return err
	}
	opts.SteadyBenchmark, opts.NoisyBenchmark, opts.BrokerShards = *steady, *noisy, *shards
	opts.OnRunDone = cli.ProgressPrinter(os.Stderr)
	r := experiments.New(opts)
	defer r.WaitIdle()

	var tbl stats.Table
	switch *sweep {
	case "stu":
		tbl, err = r.Figure13(ctx)
	case "assoc":
		tbl, err = r.AssociativitySweep(ctx)
	case "acm":
		tbl, err = r.Figure14(ctx)
	case "pairs":
		tbl, err = r.PairsPerWaySweep(ctx)
	case "fabric":
		tbl, err = r.Figure15(ctx)
	case "nodes":
		tbl, err = r.Figure16(ctx)
	case "capacity":
		tbl, err = r.CapacitySweep(ctx)
	case "prefetch":
		tbl, err = r.PrefetchSweep(ctx)
	case "mlp":
		tbl, err = r.MLPSweep(ctx)
	}
	fmt.Fprintln(os.Stderr) // terminate the progress line
	if err != nil {
		return err
	}
	fmt.Print(tbl.Render())
	fmt.Printf("(%d simulation runs)\n", r.CachedRuns())

	return prof.WriteHeap()
}
