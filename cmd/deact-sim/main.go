// Command deact-sim runs one benchmark under one FAM virtual-memory scheme
// and prints the measured metrics.
//
// Usage:
//
//	deact-sim -scheme deact-n -bench canl -nodes 1 -cores 4
//	deact-sim -scheme i-fam -bench mcf -fabric-ns 1000 -v
//
// Flag units: -warmup and -measure are instruction counts per core (not
// cycles); -fabric-ns is one-way propagation latency in nanoseconds (not
// cycles); -stu is a capacity in entries (not bytes). Everything not
// exposed as a flag — cache geometry, device timings, ACM width — comes
// from core.DefaultConfig, the paper's Table II system scaled ~16× down.
//
// Record/replay: -trace-out PATH records the exact per-core access stream
// consumed by the run into a delta-encoded trace file; -trace-in PATH
// replays such a file as the workload (the benchmark name comes from the
// trace; -nodes and -cores must match the recording). A replayed run
// prints byte-identical output to the run that recorded it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"deact/internal/cli"
	"deact/internal/core"
	"deact/internal/sim"
	"deact/internal/trace"
	"deact/internal/workload"
)

func main() {
	var (
		schemeFlag = flag.String("scheme", "deact-n", "virtual-memory scheme: e-fam, i-fam, deact-w, deact-n")
		bench      = flag.String("bench", "mcf", "benchmark name ("+strings.Join(workload.Names(), ", ")+")")
		nodes      = flag.Int("nodes", 1, "compute nodes sharing the fabric")
		stuSize    = flag.Int("stu", 1024, "STU cache size in entries, not bytes (Figure 13 sweeps 256-8192)")
		fabricNS   = flag.Uint64("fabric-ns", 500, "fabric one-way propagation latency in nanoseconds, not cycles (Figure 15 sweeps 100-6000)")
		verbose    = flag.Bool("v", false, "print per-node counters")
		traceOut   = flag.String("trace-out", "", "record the run's access streams to this trace file")
		traceIn    = flag.String("trace-in", "", "replay the workload from this trace file instead of synthesizing (-bench is taken from the trace)")
	)
	scale := cli.ScaleFlags(flag.CommandLine, 80_000, 60_000, 4)
	flag.Parse()

	scheme, err := core.ParseScheme(*schemeFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deact-sim:", err)
		os.Exit(2)
	}
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Benchmark = *bench
	cfg.Nodes = *nodes
	cfg.CoresPerNode = scale.Cores
	cfg.WarmupInstructions = scale.Warmup
	cfg.MeasureInstructions = scale.Measure
	cfg.Seed = scale.Seed
	cfg.STUEntries = *stuSize
	cfg.FabricLatency = sim.NS(*fabricNS)

	var opts []core.RunOption
	var rec *trace.Recorder
	switch {
	case *traceIn != "" && *traceOut != "":
		fmt.Fprintln(os.Stderr, "deact-sim: -trace-in and -trace-out are mutually exclusive")
		os.Exit(2)
	case *traceIn != "":
		t, err := trace.Load(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, "deact-sim:", err)
			os.Exit(1)
		}
		// The trace dictates the workload identity; scheme and machine
		// shape stay free so one recording drives many what-if replays.
		cfg.Benchmark = t.Benchmark()
		cfg.TraceID = t.ID()
		opts = append(opts, core.WithTrace(t))
	case *traceOut != "":
		rec = trace.NewRecorder(cfg.Benchmark, cfg.Nodes*cfg.CoresPerNode)
		opts = append(opts, core.WithTraceRecorder(rec))
	}

	// SIGINT/SIGTERM cancel cooperatively: the event loop checks the
	// context at a coarse simulated-time stride and the run exits nonzero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	r, err := core.Run(ctx, cfg, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deact-sim:", err)
		stop()
		os.Exit(1)
	}
	if rec != nil {
		if err := rec.Save(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "deact-sim:", err)
			stop()
			os.Exit(1)
		}
		// Stderr, so recorded and replayed runs stay stdout-identical.
		fmt.Fprintf(os.Stderr, "deact-sim: wrote trace %s (%d streams)\n", *traceOut, rec.Streams())
	}
	fmt.Println(r)
	fmt.Printf("  duration           %.3f ms simulated\n", float64(r.Duration)/float64(sim.Millisecond))
	fmt.Printf("  instructions       %d (%d memory ops)\n", r.Instructions, r.MemOps)
	fmt.Printf("  FAM requests       %d AT + %d data (AT share %.1f%%)\n", r.FAMAT, r.FAMData, r.ATFraction*100)
	fmt.Printf("  FAM device         %d reads, %d writes\n", r.FAMReads, r.FAMWrites)
	fmt.Printf("  fabric packets     %d\n", r.FabricPackets)
	fmt.Printf("  translation hit    %.2f%%\n", r.TranslationHitRate*100)
	fmt.Printf("  ACM hit            %.2f%%\n", r.ACMHitRate*100)
	if *verbose {
		for i, ns := range r.NodeStats {
			fmt.Printf("  node %d: walks=%d faults=%d dram=%d wb=%d denied=%d\n",
				i+1, ns.NodePTWalks, ns.OSFaults, ns.DRAMData, ns.Writebacks, ns.Denied)
			st := r.STUStats[i]
			fmt.Printf("    stu: xlate %d/%d acm %d/%d ptw-steps=%d bitmap=%d\n",
				st.TranslationHits, st.TranslationHits+st.TranslationMisses,
				st.ACMHits, st.ACMHits+st.ACMMisses, st.PTWSteps, st.BitmapFetches)
			tr := r.TranslatorStats[i]
			fmt.Printf("    translator: hit %d/%d dram r/w %d/%d\n",
				tr.Hits, tr.Hits+tr.Misses, tr.DRAMReads, tr.DRAMWrites)
		}
	}
}
