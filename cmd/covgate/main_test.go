package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// profile: internal/cpu 8/10 statements covered (80%), internal/core 2/10
// (20%), cmd/deact-sim 0/4 (0%, advisory only under the default gate).
const sampleProfile = `mode: set
deact/internal/cpu/cpu.go:10.2,12.3 8 1
deact/internal/cpu/cpu.go:14.2,15.3 2 0
deact/internal/core/run.go:20.2,21.3 2 3
deact/internal/core/run.go:23.2,30.3 8 0
deact/cmd/deact-sim/main.go:5.2,9.3 4 0
`

func covOut(t *testing.T, args []string) (int, string) {
	t.Helper()
	var sb strings.Builder
	code := run(args, &sb)
	return code, sb.String()
}

func TestCovgateFloorPassAndFail(t *testing.T) {
	p := write(t, t.TempDir(), "cover.out", sampleProfile)
	// Floor 15: both internal packages clear it; cmd is advisory.
	code, out := covOut(t, []string{"-floor", "15", p})
	if code != 0 || !strings.Contains(out, "covgate: PASS") {
		t.Fatalf("floor 15 failed (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "info") {
		t.Fatalf("ungated package not reported as advisory:\n%s", out)
	}
	// Floor 50: internal/core's 20%% is below it.
	code, out = covOut(t, []string{"-floor", "50", p})
	if code != 1 || !strings.Contains(out, "covgate: FAIL") {
		t.Fatalf("floor 50 did not fail on internal/core (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "FAIL deact/internal/core") {
		t.Fatalf("failing package not named:\n%s", out)
	}
	if strings.Contains(out, "FAIL deact/internal/cpu") {
		t.Fatalf("80%%-covered package failed a 50%% floor:\n%s", out)
	}
}

func TestCovgateGateSelectsPackages(t *testing.T) {
	p := write(t, t.TempDir(), "cover.out", sampleProfile)
	// Gating only cpu exempts core's 20% from a high floor.
	code, out := covOut(t, []string{"-floor", "75", "-gate", `^deact/internal/cpu$`, p})
	if code != 0 {
		t.Fatalf("gated subset failed (code %d):\n%s", code, out)
	}
	// -exempt carves core's 20% out of the default gate.
	code, out = covOut(t, []string{"-floor", "75", "-exempt", `^deact/internal/core$`, p})
	if code != 0 {
		t.Fatalf("exempted package still enforced (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "info deact/internal/core") {
		t.Fatalf("exempted package not downgraded to advisory:\n%s", out)
	}
	// A gate matching nothing is an error, not a silent pass.
	code, out = covOut(t, []string{"-gate", `^nomatch$`, p})
	if code != 2 || !strings.Contains(out, "nothing enforced") {
		t.Fatalf("empty enforcement set not an error (code %d):\n%s", code, out)
	}
}

func TestCovgateMarkdownTable(t *testing.T) {
	p := write(t, t.TempDir(), "cover.out", sampleProfile)
	code, out := covOut(t, []string{"-floor", "15", "-md", p})
	if code != 0 {
		t.Fatalf("md mode failed (code %d):\n%s", code, out)
	}
	for _, want := range []string{"| package |", "| deact/internal/cpu | 80.0% |", "| **total** |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown output missing %q:\n%s", want, out)
		}
	}
}

// TestCovgateDeduplicatesCoverpkgBlocks: with -coverpkg, every test binary
// emits every block, count 0 where it never ran. A block covered by any
// binary is covered; repeats must not inflate the statement total.
func TestCovgateDeduplicatesCoverpkgBlocks(t *testing.T) {
	const dup = `mode: set
deact/internal/cpu/cpu.go:10.2,12.3 8 0
deact/internal/cpu/cpu.go:14.2,15.3 2 0
deact/internal/cpu/cpu.go:10.2,12.3 8 5
deact/internal/cpu/cpu.go:14.2,15.3 2 0
deact/internal/cpu/cpu.go:10.2,12.3 8 0
`
	p := write(t, t.TempDir(), "cover.out", dup)
	// Deduplicated: 8/10 covered = 80%. Double counting would read 8/30.
	code, out := covOut(t, []string{"-floor", "75", p})
	if code != 0 {
		t.Fatalf("deduplicated 80%% failed a 75%% floor (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "80.0%") {
		t.Fatalf("expected 80.0%% after dedup:\n%s", out)
	}
}

func TestCovgateRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	empty := write(t, dir, "empty.out", "mode: set\n")
	if code, _ := covOut(t, []string{empty}); code != 2 {
		t.Fatal("empty profile accepted")
	}
	malformed := write(t, dir, "bad.out", "mode: set\nnot a block\n")
	if code, _ := covOut(t, []string{malformed}); code != 2 {
		t.Fatal("malformed profile accepted")
	}
	if code, _ := covOut(t, []string{filepath.Join(dir, "missing.out")}); code != 2 {
		t.Fatal("missing file accepted")
	}
	if code, _ := covOut(t, nil); code != 2 {
		t.Fatal("missing argument accepted")
	}
}
