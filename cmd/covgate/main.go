// Command covgate enforces a per-package statement-coverage floor over a
// `go test -coverprofile` output file. It groups the profile's statement
// blocks by package, computes covered/total statements for each, prints a
// table (plain text, or a markdown table with -md for CI job summaries),
// and fails when a gated package falls below the floor:
//
//	covgate [-floor pct] [-gate regexp] [-exempt regexp] [-md] coverage.out
//
// Only packages matching -gate (and not -exempt) are enforced; everything
// else is reported as advisory ("info" rows). The default gate covers the
// simulator's internal packages — command mains are thin flag-parsing
// shells whose error paths are exercised end-to-end by the CI smoke steps
// instead, so holding them to the same floor would measure the wrong
// thing. -exempt carves named exceptions out of the gate (packages whose
// coverage comes from steps the profile cannot see) without widening the
// gate for everything else.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// pkgCov accumulates one package's statement counts.
type pkgCov struct {
	total   int
	covered int
}

func (p pkgCov) pct() float64 {
	if p.total == 0 {
		return 0
	}
	return 100 * float64(p.covered) / float64(p.total)
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("covgate", flag.ExitOnError)
	var (
		floor  = fs.Float64("floor", 50, "minimum statement coverage percent per gated package")
		gate   = fs.String("gate", `^deact/internal/`, "regexp selecting enforced packages")
		exempt = fs.String("exempt", "", "regexp exempting packages from the gate (advisory only; empty exempts none)")
		md     = fs.Bool("md", false, "emit a markdown table (for CI job summaries)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(out, "usage: covgate [-floor pct] [-gate regexp] [-exempt regexp] [-md] coverage.out")
		return 2
	}
	re, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintln(out, "covgate: bad -gate:", err)
		return 2
	}
	var exemptRe *regexp.Regexp
	if *exempt != "" {
		if exemptRe, err = regexp.Compile(*exempt); err != nil {
			fmt.Fprintln(out, "covgate: bad -exempt:", err)
			return 2
		}
	}
	pkgs, err := parseProfile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(out, "covgate:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(out, "covgate: profile contains no statement blocks — nothing enforced")
		return 2
	}

	names := make([]string, 0, len(pkgs))
	for name := range pkgs {
		names = append(names, name)
	}
	sort.Strings(names)

	if *md {
		fmt.Fprintf(out, "| package | coverage | floor | status |\n")
		fmt.Fprintf(out, "|---|---|---|---|\n")
	}
	failed := false
	enforced := 0
	var total pkgCov
	for _, name := range names {
		p := pkgs[name]
		total.total += p.total
		total.covered += p.covered
		gated := re.MatchString(name) && (exemptRe == nil || !exemptRe.MatchString(name))
		status := "info"
		if gated {
			enforced++
			status = "ok"
			if p.pct() < *floor {
				status = "FAIL"
				failed = true
			}
		}
		if *md {
			fmt.Fprintf(out, "| %s | %.1f%% | %s | %s |\n", name, p.pct(), floorCell(gated, *floor), status)
		} else {
			fmt.Fprintf(out, "%-4s %-40s %6.1f%%  (floor %s)\n", status, name, p.pct(), floorCell(gated, *floor))
		}
	}
	if *md {
		fmt.Fprintf(out, "| **total** | **%.1f%%** | | |\n", total.pct())
	} else {
		fmt.Fprintf(out, "     %-40s %6.1f%%\n", "total", total.pct())
	}
	if enforced == 0 {
		fmt.Fprintln(out, "covgate: no package matches the gate — nothing enforced")
		return 2
	}
	if failed {
		fmt.Fprintln(out, "covgate: FAIL")
		return 1
	}
	fmt.Fprintln(out, "covgate: PASS")
	return 0
}

func floorCell(gated bool, floor float64) string {
	if !gated {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", floor)
}

// parseProfile reads a coverprofile and aggregates statement counts by
// package (the directory part of each block's file path). Every mode —
// set, count, atomic — reduces to covered-vs-not per statement block.
// With -coverpkg, `go test ./...` emits each block once per test binary
// (count 0 in the binaries that never reach it), so blocks are first
// deduplicated by position — covered anywhere is covered — and only then
// aggregated.
func parseProfile(file string) (map[string]pkgCov, error) {
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type block struct {
		stmts   int
		covered bool
	}
	blocks := map[string]block{}
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		// file.go:startLine.startCol,endLine.endCol numStmts count
		colon := strings.LastIndex(line, ":")
		if colon < 0 {
			return nil, fmt.Errorf("%s:%d: malformed block %q", file, lineNo, line)
		}
		fields := strings.Fields(line[colon+1:])
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: malformed block %q", file, lineNo, line)
		}
		stmts, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad statement count: %w", file, lineNo, err)
		}
		count, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad hit count: %w", file, lineNo, err)
		}
		key := line[:colon] + ":" + fields[0]
		b := blocks[key]
		b.stmts = stmts
		b.covered = b.covered || count > 0
		blocks[key] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	pkgs := map[string]pkgCov{}
	for key, b := range blocks {
		// key is file.go:range; strip the range, then the file name.
		pkg := path.Dir(key[:strings.LastIndex(key, ":")])
		p := pkgs[pkg]
		p.total += b.stmts
		if b.covered {
			p.covered += b.stmts
		}
		pkgs[pkg] = p
	}
	return pkgs, nil
}
