// Command benchgate enforces a benchmark-regression budget between two
// `go test -bench` output files (typically the PR base and head runs of the
// CI bench smoke). It parses the standard benchmark output format, takes
// the median across repeated -count runs, and fails when a gated benchmark
// regresses:
//
//   - time/op worse than the -budget percent (default 20), or
//   - allocs/op worse at all (the hot paths are allocation-free by
//     construction; any new steady-state allocation is a bug).
//
// Usage:
//
//	benchgate [-gate regexp] [-budget pct] base.txt head.txt
//
// -budget is the regression budget in percent; a PR that knowingly trades
// time for a feature raises it explicitly in its CI invocation (and says so
// in the PR), rather than editing the gate's default. -max-time-regress is
// the deprecated spelling of the same knob, kept for existing invocations;
// when both are set, -budget wins.
//
// Only benchmarks matching -gate AND present in both files are enforced;
// benchmarks that exist on one side only (added or removed by the PR) are
// reported but never fail the gate. benchstat remains the human-readable
// comparison; this tool is the deterministic pass/fail criterion, so the
// gate does not depend on parsing benchstat's display format.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"

	"deact/internal/benchparse"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ExitOnError)
	var (
		gate    = fs.String("gate", `^(BenchmarkEngine|BenchmarkCoreRun)\b`, "regexp selecting enforced benchmarks")
		budget  = fs.Float64("budget", 20, "time/op regression budget in percent")
		oldPct  = fs.Float64("max-time-regress", 20, "deprecated alias for -budget (ignored when -budget is set)")
		minRuns = fs.Int("min-samples", 1, "minimum samples per side for a benchmark to be enforced")
	)
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(out, "usage: benchgate [-gate regexp] [-budget pct] base.txt head.txt")
		return 2
	}
	// Resolve the budget: -budget when set, else the deprecated alias, else
	// the shared default.
	maxPct := budget
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["budget"] && set["max-time-regress"] {
		maxPct = oldPct
	}
	re, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintln(out, "benchgate: bad -gate:", err)
		return 2
	}

	base, err := benchparse.ParseFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(out, "benchgate:", err)
		return 2
	}
	head, err := benchparse.ParseFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(out, "benchgate:", err)
		return 2
	}

	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	sort.Strings(names)

	// Gated benchmarks that existed in the base but vanished from the head
	// are reported too — a silently deleted guard must be visible in the
	// gate output even though it cannot be compared.
	removed := make([]string, 0, len(base))
	for name := range base {
		if _, ok := head[name]; !ok && re.MatchString(name) {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(out, "SKIP %-40s gated benchmark removed by this change\n", name)
	}

	failed := false
	enforced := 0
	for _, name := range names {
		if !re.MatchString(name) {
			continue
		}
		h := head[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(out, "SKIP %-40s new benchmark, no base to compare\n", name)
			continue
		}
		if len(h.TimeNS) < *minRuns || len(b.TimeNS) < *minRuns {
			fmt.Fprintf(out, "SKIP %-40s too few samples (base %d, head %d)\n", name, len(b.TimeNS), len(h.TimeNS))
			continue
		}
		enforced++
		bt, ht := benchparse.Median(b.TimeNS), benchparse.Median(h.TimeNS)
		delta := 100 * (ht - bt) / bt
		status := "ok  "
		if delta > *maxPct {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(out, "%s %-40s time/op %12.1f → %12.1f ns  (%+.1f%%, limit +%.0f%%)\n",
			status, name, bt, ht, delta, *maxPct)

		if len(b.AllocsPerOp) > 0 && len(h.AllocsPerOp) > 0 {
			ba, ha := benchparse.MedianInt(b.AllocsPerOp), benchparse.MedianInt(h.AllocsPerOp)
			status := "ok  "
			if ha > ba {
				status = "FAIL"
				failed = true
			}
			fmt.Fprintf(out, "%s %-40s allocs/op %10d → %10d      (any increase fails)\n", status, name, ba, ha)
		}
	}
	if enforced == 0 {
		fmt.Fprintln(out, "benchgate: no gated benchmark present in both files — nothing enforced")
		return 2
	}
	if failed {
		fmt.Fprintln(out, "benchgate: FAIL")
		return 1
	}
	fmt.Fprintln(out, "benchgate: PASS")
	return 0
}
