package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseBench = `
BenchmarkEngine/handler-8   1000000   10.0 ns/op   0 B/op   0 allocs/op
BenchmarkCoreRun/I-FAM-8        100   10000000 ns/op   5000000 B/op   700 allocs/op
BenchmarkCoreRun/I-FAM-8        100   10200000 ns/op   5000000 B/op   700 allocs/op
BenchmarkOther-8                100   50 ns/op
`

func gateOut(t *testing.T, args []string) (int, string) {
	t.Helper()
	var sb strings.Builder
	code := run(args, &sb)
	return code, sb.String()
}

func TestGatePassesWithinBudget(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseBench)
	head := write(t, dir, "head.txt", `
BenchmarkEngine/handler-8   1000000   11.0 ns/op   0 B/op   0 allocs/op
BenchmarkCoreRun/I-FAM-8        100   9000000 ns/op   4000000 B/op   400 allocs/op
`)
	code, out := gateOut(t, []string{base, head})
	if code != 0 {
		t.Fatalf("gate failed unexpectedly:\n%s", out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("missing PASS:\n%s", out)
	}
}

func TestGateFailsOnTimeRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseBench)
	head := write(t, dir, "head.txt", `
BenchmarkEngine/handler-8   1000000   10.0 ns/op   0 B/op   0 allocs/op
BenchmarkCoreRun/I-FAM-8        100   13000000 ns/op   5000000 B/op   700 allocs/op
`)
	code, out := gateOut(t, []string{base, head})
	if code != 1 {
		t.Fatalf("time regression not caught (code %d):\n%s", code, out)
	}
}

func TestGateFailsOnAnyAllocsRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseBench)
	head := write(t, dir, "head.txt", `
BenchmarkEngine/handler-8   1000000   10.0 ns/op   0 B/op   1 allocs/op
BenchmarkCoreRun/I-FAM-8        100   10000000 ns/op   5000000 B/op   700 allocs/op
`)
	code, out := gateOut(t, []string{base, head})
	if code != 1 {
		t.Fatalf("allocs regression not caught (code %d):\n%s", code, out)
	}
}

func TestGateIgnoresUngatedAndNewBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseBench)
	// BenchmarkOther regresses wildly and BenchmarkMemdevAccess is new —
	// neither may fail the gate.
	head := write(t, dir, "head.txt", `
BenchmarkEngine/handler-8   1000000   10.0 ns/op   0 B/op   0 allocs/op
BenchmarkCoreRun/I-FAM-8        100   10000000 ns/op   5000000 B/op   700 allocs/op
BenchmarkCoreRun/DeACT-N-8      100   10000000 ns/op   5000000 B/op   700 allocs/op
BenchmarkOther-8                100   5000 ns/op
BenchmarkMemdevAccess/inorder-8 100   18 ns/op 0 B/op 0 allocs/op
`)
	code, out := gateOut(t, []string{base, head})
	if code != 0 {
		t.Fatalf("gate failed on ungated/new benchmarks:\n%s", out)
	}
	if !strings.Contains(out, "SKIP BenchmarkCoreRun/DeACT-N") {
		t.Fatalf("new gated benchmark should be reported as skipped:\n%s", out)
	}
}

func TestGateReportsRemovedGatedBenchmarks(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseBench)
	// BenchmarkCoreRun disappears in head: still a PASS (Engine is intact),
	// but the removal must be visible in the output.
	head := write(t, dir, "head.txt", `
BenchmarkEngine/handler-8   1000000   10.0 ns/op   0 B/op   0 allocs/op
`)
	code, out := gateOut(t, []string{base, head})
	if code != 0 {
		t.Fatalf("removal alone must not fail the gate (code %d):\n%s", code, out)
	}
	if !strings.Contains(out, "SKIP BenchmarkCoreRun/I-FAM") || !strings.Contains(out, "removed") {
		t.Fatalf("removed gated benchmark not reported:\n%s", out)
	}
}

func TestGateErrorsWhenNothingToEnforce(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", "BenchmarkOther-8 100 50 ns/op\n")
	head := write(t, dir, "head.txt", "BenchmarkOther-8 100 50 ns/op\n")
	code, out := gateOut(t, []string{base, head})
	if code != 2 {
		t.Fatalf("empty enforcement set must be an error (code %d):\n%s", code, out)
	}
}

func TestGateCustomThreshold(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseBench)
	head := write(t, dir, "head.txt", `
BenchmarkEngine/handler-8   1000000   11.5 ns/op   0 B/op   0 allocs/op
BenchmarkCoreRun/I-FAM-8        100   10100000 ns/op   5000000 B/op   700 allocs/op
`)
	// 15% regression fails a 10% budget.
	code, _ := gateOut(t, []string{"-max-time-regress", "10", base, head})
	if code != 1 {
		t.Fatalf("custom threshold not applied (code %d)", code)
	}
}

func TestGateBudgetFlag(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseBench)
	// ~15% time regression on the gated CoreRun benchmark.
	head := write(t, dir, "head.txt", `
BenchmarkEngine/handler-8   1000000   10.0 ns/op   0 B/op   0 allocs/op
BenchmarkCoreRun/I-FAM-8        100   11600000 ns/op   5000000 B/op   700 allocs/op
`)
	if code, out := gateOut(t, []string{"-budget", "10", base, head}); code != 1 {
		t.Fatalf("-budget 10 did not fail a 15%% regression (code %d):\n%s", code, out)
	}
	if code, out := gateOut(t, []string{"-budget", "30", base, head}); code != 0 {
		t.Fatalf("-budget 30 failed a 15%% regression (code %d):\n%s", code, out)
	}
	// When both spellings are set, -budget wins over the deprecated alias.
	if code, out := gateOut(t, []string{"-budget", "30", "-max-time-regress", "10", base, head}); code != 0 {
		t.Fatalf("-budget did not take precedence over -max-time-regress (code %d):\n%s", code, out)
	}
	if code, out := gateOut(t, []string{"-max-time-regress", "30", "-budget", "10", base, head}); code != 1 {
		t.Fatalf("deprecated alias overrode -budget (code %d):\n%s", code, out)
	}
}
