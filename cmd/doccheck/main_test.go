package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestExtractGoSnippets(t *testing.T) {
	doc := "prose\n```go\npackage main\n\nfunc main() {}\n```\nmore\n```text\nnot go\n```\n```go\npackage x\n```\n"
	got := extractGoSnippets(doc)
	if len(got) != 2 {
		t.Fatalf("extracted %d snippets, want 2: %q", len(got), got)
	}
	if !strings.HasPrefix(got[0], "package main\n") || got[1] != "package x\n" {
		t.Fatalf("wrong snippet contents: %q", got)
	}
}

func TestExtractIgnoresUnterminatedFence(t *testing.T) {
	if got := extractGoSnippets("```go\npackage main\n"); len(got) != 0 {
		t.Fatalf("unterminated fence yielded %q", got)
	}
}

func TestCheckLinks(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "exists.md"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	doc := strings.Join([]string{
		"[ok](exists.md)",
		"[ok dir](sub/)",
		"[ok fragment](exists.md#section)",
		"[external](https://example.com/x)",
		"[anchor](#local)",
		"[broken](missing.md)",
		"```",
		"[inside fence](also-missing.md)",
		"```",
	}, "\n")
	errs := checkLinks(filepath.Join(dir, "doc.md"), doc)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "missing.md") {
		t.Fatalf("want exactly the missing.md error, got %v", errs)
	}
}

// TestRepoDocs runs the full doccheck over the repository's real docs,
// so `go test ./...` enforces what the CI docs job enforces: snippets
// vet clean, relative links resolve.
func TestRepoDocs(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go vet")
	}
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	docs := []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md", "CHANGES.md"}
	for i, d := range docs {
		docs[i] = filepath.Join(root, d)
	}
	if err := check(root, docs, os.Stderr); err != nil {
		t.Fatal(err)
	}
}
