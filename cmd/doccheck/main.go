// Command doccheck keeps the markdown documentation honest. For every
// file named on the command line it:
//
//   - extracts each fenced ```go code block, writes it into a throwaway
//     package directory under the module root (so deact/internal/...
//     imports resolve), and runs `go vet` over all of them — a doc
//     snippet that no longer builds against the current API fails the
//     check instead of rotting silently;
//   - verifies that every relative markdown link points at a file or
//     directory that exists in the repository (external http(s)/mailto
//     links and pure #anchors are skipped).
//
// Fenced blocks must be complete files (package clause and imports);
// blocks that are deliberately illustrative fragments should use a
// different info string (```text, or bare ```).
//
// Usage:
//
//	doccheck README.md ARCHITECTURE.md
//
// Exit status: 0 when all snippets vet clean and all links resolve,
// 1 otherwise, 2 on usage errors. The CI docs job runs this over the
// top-level markdown docs; TestRepoDocs runs the same check in `go test`.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck file.md ...")
		os.Exit(2)
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(2)
	}
	if err := check(root, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
}

// check runs the full document check: link resolution for every file,
// then one `go vet` pass over all extracted snippets.
func check(moduleRoot string, files []string, log *os.File) error {
	type snippet struct {
		origin string // "file.md snippet 2", for error messages
		src    string
	}
	var snippets []snippet
	bad := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		for _, e := range checkLinks(f, string(data)) {
			fmt.Fprintln(log, "doccheck:", e)
			bad++
		}
		for i, src := range extractGoSnippets(string(data)) {
			snippets = append(snippets, snippet{origin: fmt.Sprintf("%s snippet %d", f, i+1), src: src})
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d broken link(s)", bad)
	}
	if len(snippets) == 0 {
		return nil
	}

	// Snippets live under the module root so module-local imports
	// resolve; each gets its own directory (they are independent main
	// packages). The directory name must not start with "." or "_" —
	// the go tool would silently skip it and vet nothing.
	tmp, err := os.MkdirTemp(moduleRoot, "doccheck-snippets-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for i, s := range snippets {
		dir := filepath.Join(tmp, fmt.Sprintf("snippet%02d", i))
		if err := os.Mkdir(dir, 0o755); err != nil {
			return err
		}
		header := fmt.Sprintf("// Extracted from %s by doccheck; do not edit.\n", s.origin)
		if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(header+s.src), 0o644); err != nil {
			return err
		}
	}
	cmd := exec.Command("go", "vet", "./"+filepath.Base(tmp)+"/...")
	cmd.Dir = moduleRoot
	cmd.Stdout = log
	cmd.Stderr = log
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("snippets failed go vet (origins are recorded in the header comment of each reported file): %w", err)
	}
	return nil
}

// extractGoSnippets returns the contents of every fenced ```go block.
func extractGoSnippets(doc string) []string {
	var out []string
	var cur strings.Builder
	in := false
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case !in && strings.HasPrefix(trimmed, "```go"):
			in = true
			cur.Reset()
		case in && strings.HasPrefix(trimmed, "```"):
			in = false
			out = append(out, cur.String())
		case in:
			cur.WriteString(line)
			cur.WriteString("\n")
		}
	}
	return out
}

// linkRE matches inline markdown links [text](target). Reference-style
// links are rare enough here not to bother with.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks returns one error per relative link in doc that does not
// resolve to an existing file or directory. Targets are resolved
// against the markdown file's own directory.
func checkLinks(mdPath, doc string) []error {
	var errs []error
	// Fenced code blocks routinely contain )-adjacent syntax that the
	// regex would misread; strip them first.
	doc = stripFences(doc)
	for _, m := range linkRE.FindAllStringSubmatch(doc, -1) {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		target, _, _ = strings.Cut(target, "#") // drop any fragment
		if target == "" {
			continue
		}
		p := filepath.Join(filepath.Dir(mdPath), target)
		if _, err := os.Stat(p); err != nil {
			errs = append(errs, fmt.Errorf("%s: broken link %q (%s does not exist)", mdPath, m[1], p))
		}
	}
	return errs
}

// stripFences blanks out fenced code blocks, preserving line structure.
func stripFences(doc string) string {
	lines := strings.Split(doc, "\n")
	in := false
	for i, line := range lines {
		fence := strings.HasPrefix(strings.TrimSpace(line), "```")
		if fence {
			in = !in
			lines[i] = ""
			continue
		}
		if in {
			lines[i] = ""
		}
	}
	return strings.Join(lines, "\n")
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
