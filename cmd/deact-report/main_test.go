package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"deact/internal/experiments"
)

// TestGenerateCancelledWritesNothing: a SIGINT-style cancellation must
// surface context.Canceled (→ nonzero exit in main) and must not leave a
// partial output file behind.
func TestGenerateCancelledWritesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the SIGINT already happened
	out := filepath.Join(t.TempDir(), "EXPERIMENTS.md")
	opts := experiments.Options{Warmup: 1_000, Measure: 1_000, Cores: 1, Seed: 42,
		Benchmarks: []string{"mcf"}, Parallelism: 1}
	err := generate(ctx, opts, out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("cancelled run left an output file behind (stat err: %v)", statErr)
	}
}

// TestGenerateWritesOnSuccess: the buffered path still produces the file.
func TestGenerateWritesOnSuccess(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny report still simulates")
	}
	out := filepath.Join(t.TempDir(), "EXPERIMENTS.md")
	opts := experiments.Options{Warmup: 2_000, Measure: 2_000, Cores: 1, Seed: 42,
		Benchmarks: []string{"mcf", "canl", "dc"}, Parallelism: 2}
	if err := generate(context.Background(), opts, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty report written")
	}
}
