// Command deact-report regenerates every table and figure of the paper's
// evaluation and writes the paper-vs-measured report (EXPERIMENTS.md).
//
// Usage:
//
//	deact-report -out EXPERIMENTS.md
//	deact-report -capacity             # append the multi-tenant capacity section
//	deact-report -parallelism 8        # bound the simulation worker pool
//	deact-report -cpuprofile cpu.prof  # profile the hot simulation paths
//	deact-report -memprofile mem.prof  # allocation profile after the run
//
// Independent simulations run concurrently on a worker pool of
// -parallelism slots (default: GOMAXPROCS). The report is byte-identical
// at every parallelism level for a given seed and scale.
//
// Progress (completed/total distinct simulations) streams to stderr.
// SIGINT/SIGTERM cancel the run gracefully: in-flight simulations abort at
// the next event-loop stride, the process exits nonzero, and no partial
// output file is written — the report is staged in memory and only lands
// on disk after it generated completely.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"deact/internal/experiments"
	"deact/internal/profiling"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "deact-report:", err)
		os.Exit(1)
	}
}

// run carries the whole report generation so defers (profile flush, signal
// teardown) execute on error paths too, instead of being skipped by
// os.Exit.
func run(ctx context.Context) error {
	var (
		out     = flag.String("out", "EXPERIMENTS.md", "output file (- for stdout)")
		warmup  = flag.Uint64("warmup", 80_000, "warmup instructions per core (instruction count, not cycles)")
		measure = flag.Uint64("measure", 60_000, "measured instructions per core (instruction count, not cycles)")
		cores   = flag.Int("cores", 2, "cores per node")
		seed    = flag.Int64("seed", 42, "random seed")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 14)")
		par     = flag.Int("parallelism", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		share   = flag.Bool("share-warmup", false, "simulate shared warmup prefixes once and fork the measured phases (byte-identical output)")
		capSec  = flag.Bool("capacity", false, "append the multi-tenant capacity-planning section (per-tenant p99 latency under a noisy neighbor); strictly additive to the base report")
		profile = flag.String("cpuprofile", "", "write a CPU profile of the full report run to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU("deact-report", *profile)
	if err != nil {
		return err
	}
	defer stopCPU()

	opts := experiments.Options{Warmup: *warmup, Measure: *measure, Cores: *cores, Seed: *seed,
		Parallelism: *par, ShareWarmup: *share, Capacity: *capSec}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	opts.OnRunDone = progressPrinter(os.Stderr)

	if err := generate(ctx, opts, *out); err != nil {
		return err
	}
	return profiling.WriteHeap(*memProf)
}

// progressPrinter returns an OnRunDone hook that keeps one live
// completed/total line on w. The runner serializes calls.
func progressPrinter(w *os.File) func(experiments.RunInfo) {
	return func(ri experiments.RunInfo) {
		fmt.Fprintf(w, "\rruns: %d/%d completed", ri.Completed, ri.Submitted)
		if ri.Completed == ri.Submitted {
			fmt.Fprint(w, " ")
		}
	}
}

// generate stages the whole report in memory and writes the output file
// only on success, so a cancelled or failed run never leaves a partial
// EXPERIMENTS.md behind.
func generate(ctx context.Context, opts experiments.Options, outPath string) error {
	var buf bytes.Buffer
	err := experiments.Report(ctx, &buf, opts)
	if opts.OnRunDone != nil {
		fmt.Fprintln(os.Stderr) // terminate the progress line
	}
	if err != nil {
		return err
	}
	if outPath == "-" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
