// Command deact-report regenerates every table and figure of the paper's
// evaluation and writes the paper-vs-measured report (EXPERIMENTS.md).
//
// Usage:
//
//	deact-report -out EXPERIMENTS.md
//	deact-report -capacity             # append the multi-tenant capacity section
//	deact-report -prefetch             # append the prefetch-interaction section
//	deact-report -mlp                  # append the memory-level-parallelism section
//	deact-report -parallelism 8        # bound the simulation worker pool
//	deact-report -store .deact-store   # serve repeat runs from the persistent result store
//	deact-report -cpuprofile cpu.prof  # profile the hot simulation paths
//	deact-report -memprofile mem.prof  # allocation profile after the run
//
// Independent simulations run concurrently on a worker pool of
// -parallelism slots (default: GOMAXPROCS). The report is byte-identical
// at every parallelism level for a given seed and scale.
//
// Progress (completed/total distinct simulations) streams to stderr.
// SIGINT/SIGTERM cancel the run gracefully: in-flight simulations abort at
// the next event-loop stride, the process exits nonzero, and no partial
// output file is written — the report is staged in memory and only lands
// on disk after it generated completely.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"deact/internal/cli"
	"deact/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "deact-report:", err)
		os.Exit(1)
	}
}

// run carries the whole report generation so defers (profile flush, signal
// teardown) execute on error paths too, instead of being skipped by
// os.Exit.
func run(ctx context.Context) error {
	var (
		out    = flag.String("out", "EXPERIMENTS.md", "output file (- for stdout)")
		capSec = flag.Bool("capacity", false, "append the multi-tenant capacity-planning section (per-tenant p99 latency under a noisy neighbor); strictly additive to the base report")
		pfSec  = flag.Bool("prefetch", false, "append the prefetch-interaction section (IPC vs stream-prefetch degree across workload shapes); strictly additive to the base report")
		mlpSec = flag.Bool("mlp", false, "append the memory-level-parallelism section (IPC vs OoO scheduling-window size in ops, across workload dependence shapes); strictly additive to the base report")
	)
	scale := cli.ScaleFlags(flag.CommandLine, 80_000, 60_000, 2)
	runner := cli.RunnerFlags(flag.CommandLine)
	prof := cli.ProfilingFlags(flag.CommandLine, "the full report run")
	flag.Parse()

	stopCPU, err := prof.Start("deact-report")
	if err != nil {
		return err
	}
	defer stopCPU()

	opts, err := runner.Options(scale)
	if err != nil {
		return err
	}
	opts.Capacity = *capSec
	opts.Prefetch = *pfSec
	opts.MLP = *mlpSec
	opts.OnRunDone = cli.ProgressPrinter(os.Stderr)

	if err := generate(ctx, opts, *out); err != nil {
		return err
	}
	return prof.WriteHeap()
}

// generate stages the whole report in memory and writes the output file
// only on success, so a cancelled or failed run never leaves a partial
// EXPERIMENTS.md behind.
func generate(ctx context.Context, opts experiments.Options, outPath string) error {
	var buf bytes.Buffer
	err := experiments.Report(ctx, &buf, opts)
	if opts.OnRunDone != nil {
		fmt.Fprintln(os.Stderr) // terminate the progress line
	}
	if err != nil {
		return err
	}
	if outPath == "-" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	if err := os.WriteFile(outPath, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
