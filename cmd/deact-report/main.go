// Command deact-report regenerates every table and figure of the paper's
// evaluation and writes the paper-vs-measured report (EXPERIMENTS.md).
//
// Usage:
//
//	deact-report -out EXPERIMENTS.md
//	deact-report -parallelism 8        # bound the simulation worker pool
//	deact-report -cpuprofile cpu.prof  # profile the hot simulation paths
//	deact-report -memprofile mem.prof  # allocation profile after the run
//
// Independent simulations run concurrently on a worker pool of
// -parallelism slots (default: GOMAXPROCS). The report is byte-identical
// at every parallelism level for a given seed and scale.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"deact/internal/experiments"
	"deact/internal/profiling"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deact-report:", err)
		os.Exit(1)
	}
}

// run carries the whole report generation so defers (profile flush, file
// close) execute on error paths too, instead of being skipped by os.Exit.
func run() error {
	var (
		out     = flag.String("out", "EXPERIMENTS.md", "output file (- for stdout)")
		warmup  = flag.Uint64("warmup", 80_000, "warmup instructions per core")
		measure = flag.Uint64("measure", 60_000, "measured instructions per core")
		cores   = flag.Int("cores", 2, "cores per node")
		seed    = flag.Int64("seed", 42, "random seed")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 14)")
		par     = flag.Int("parallelism", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		profile = flag.String("cpuprofile", "", "write a CPU profile of the full report run to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()

	stopCPU, err := profiling.StartCPU("deact-report", *profile)
	if err != nil {
		return err
	}
	defer stopCPU()

	opts := experiments.Options{Warmup: *warmup, Measure: *measure, Cores: *cores, Seed: *seed, Parallelism: *par}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	w := bufio.NewWriter(os.Stdout)
	var f *os.File
	if *out != "-" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := experiments.Report(w, opts); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return profiling.WriteHeap(*memProf)
}
