package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"deact/internal/experiments"
	"deact/internal/resultstore"
)

// testServer builds the service at -short scale with a store in dir.
func testServer(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	st, err := resultstore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(experiments.Options{Warmup: 1_000, Measure: 2_000, Cores: 1, Seed: 42,
		Parallelism: 2, Store: st})
	ts := httptest.NewServer(s.mux())
	t.Cleanup(func() {
		ts.Close()
		s.runner.WaitIdle()
	})
	return ts
}

// line is the decoded shape of a /run response or /sweep NDJSON line; Result
// stays raw so byte-identity can be asserted.
type line struct {
	Fingerprint string
	Cached      bool
	Result      json.RawMessage
	Error       string
}

func postRun(t *testing.T, ts *httptest.Server, body string) line {
	t.Helper()
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run %s: %d: %s", body, resp.StatusCode, data)
	}
	var l line
	if err := json.Unmarshal(data, &l); err != nil {
		t.Fatalf("POST /run response: %v: %s", err, data)
	}
	return l
}

// TestServeRunSecondPostIsCacheHit is the service-mode acceptance gate:
// the second POST of the same configuration answers from the store with
// byte-identical result bytes.
func TestServeRunSecondPostIsCacheHit(t *testing.T) {
	ts := testServer(t, t.TempDir())
	const body = `{"Benchmark":"mcf","Scheme":"deact-n"}`
	first := postRun(t, ts, body)
	if first.Cached {
		t.Fatal("first POST served from an empty store")
	}
	if first.Fingerprint == "" || len(first.Result) == 0 {
		t.Fatalf("incomplete response: %+v", first)
	}
	second := postRun(t, ts, body)
	if !second.Cached {
		t.Fatal("second POST of the same config did not hit the store")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatal("fingerprint changed between identical POSTs")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cache hit not byte-identical to the computed result")
	}
}

// TestServeSparseOverlay: `{}` and an explicit default knob land on the
// same fingerprint; a changed knob lands on a different one.
func TestServeSparseOverlay(t *testing.T) {
	ts := testServer(t, t.TempDir())
	empty := postRun(t, ts, `{}`)
	same := postRun(t, ts, `{"Seed":42}`)
	if empty.Fingerprint != same.Fingerprint {
		t.Fatal("explicit default landed on a different fingerprint than {}")
	}
	if !same.Cached {
		t.Fatal("identity-preserving overlay missed the store")
	}
	other := postRun(t, ts, `{"Seed":7}`)
	if other.Fingerprint == empty.Fingerprint {
		t.Fatal("changed seed kept the fingerprint")
	}
}

// TestServeSweepStreamsInOrder: NDJSON lines come back in submission
// order, and a repeat sweep is all cache hits with identical bytes.
func TestServeSweepStreamsInOrder(t *testing.T) {
	ts := testServer(t, t.TempDir())
	const body = `{"Configs":[
		{"Benchmark":"mcf","Scheme":"i-fam"},
		{"Benchmark":"mcf","Scheme":"deact-n"},
		{"Benchmark":"sp","Scheme":"deact-n"}
	]}`
	sweep := func() []line {
		resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("POST /sweep: %d: %s", resp.StatusCode, data)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("sweep Content-Type = %q", ct)
		}
		var lines []line
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(nil, 1<<20)
		for sc.Scan() {
			var l line
			if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
				t.Fatalf("bad NDJSON line: %v: %s", err, sc.Text())
			}
			lines = append(lines, l)
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return lines
	}

	cold := sweep()
	if len(cold) != 3 {
		t.Fatalf("cold sweep returned %d lines, want 3", len(cold))
	}
	for i, l := range cold {
		if l.Error != "" || len(l.Result) == 0 {
			t.Fatalf("cold line %d incomplete: %+v", i, l)
		}
		if l.Cached {
			t.Fatalf("cold line %d claims a cache hit", i)
		}
	}
	if cold[0].Fingerprint == cold[1].Fingerprint || cold[1].Fingerprint == cold[2].Fingerprint {
		t.Fatal("distinct configs share a fingerprint")
	}

	warm := sweep()
	for i := range cold {
		if !warm[i].Cached {
			t.Errorf("warm line %d not served from the store", i)
		}
		if warm[i].Fingerprint != cold[i].Fingerprint {
			t.Errorf("line %d out of submission order on the warm pass", i)
		}
		if !bytes.Equal(warm[i].Result, cold[i].Result) {
			t.Errorf("warm line %d not byte-identical to the cold run", i)
		}
	}
}

// TestServeSweepClientDisconnectAbortsQueuedRuns pins the abandonment path
// of /sweep: when the client disconnects mid-stream, the handler's deferred
// releases must detach every unconsumed future, so the in-flight simulation
// aborts at its next event-loop stride, queued points never run, and no
// goroutine outlives the request.
func TestServeSweepClientDisconnectAbortsQueuedRuns(t *testing.T) {
	before := runtime.NumGoroutine()

	// No store; one worker slot so the later points queue behind the first,
	// and a measured phase long enough (seconds uncancelled) that the
	// disconnect lands mid-simulation.
	s := newServer(experiments.Options{Warmup: 0, Measure: 5_000_000, Cores: 1, Seed: 42, Parallelism: 1})
	ts := httptest.NewServer(s.mux())

	var cfgs []string
	for i := 0; i < 4; i++ {
		cfgs = append(cfgs, fmt.Sprintf(`{"Benchmark":"mcf","Scheme":"deact-n","Seed":%d}`, 100+i))
	}
	body := `{"Configs":[` + strings.Join(cfgs, ",") + `]}`

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	respc := make(chan struct{})
	go func() {
		defer close(respc)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the first simulation start
	cancel()                           // client disconnects mid-stream
	<-respc

	// The handler must return and the worker pool must drain promptly: the
	// admitted run aborts at the next stride, the queued ones at admission.
	start := time.Now()
	ts.Close() // waits for the handler
	s.runner.WaitIdle()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("worker pool took %v to drain after the disconnect", elapsed)
	}
	if completed, _ := s.runner.Progress(); completed != 0 {
		t.Fatalf("%d queued simulations ran to completion after the client disconnected", completed)
	}
	// Everything the request spawned — handler, simulation goroutines,
	// connection read loops — must be gone.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after disconnect: %d before, %d now\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeResultLookup: a computed fingerprint resolves to its stored
// envelope; unknown and malformed fingerprints are 404s.
func TestServeResultLookup(t *testing.T) {
	ts := testServer(t, t.TempDir())
	ran := postRun(t, ts, `{"Benchmark":"mcf","Scheme":"deact-n"}`)

	resp, err := http.Get(ts.URL + "/result/" + ran.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /result: %d", resp.StatusCode)
	}
	var e struct {
		Model, Fingerprint string
		Result             json.RawMessage
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Fingerprint != ran.Fingerprint || e.Model == "" {
		t.Fatalf("entry envelope incomplete: %+v", e)
	}
	if !bytes.Equal(e.Result, ran.Result) {
		t.Fatal("stored result differs from the served one")
	}

	for _, fp := range []string{strings.Repeat("0", 32), "not-a-fingerprint", "%2e%2e%2fescape"} {
		resp, err := http.Get(ts.URL + "/result/" + fp)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /result/%s: %d, want 404", fp, resp.StatusCode)
		}
	}
}

// TestServeRejectsBadRequests pins the strict decode contract at the HTTP
// boundary: misspelled fields, bad scheme names, invalid configs and wrong
// methods are client errors, not simulations of the wrong system.
func TestServeRejectsBadRequests(t *testing.T) {
	ts := testServer(t, t.TempDir())
	for _, tc := range []struct {
		name, body string
	}{
		{"unknown field", `{"Benchmrak":"mcf"}`},
		{"bad scheme", `{"Scheme":"fam-e"}`},
		{"invalid config", `{"Tenants":9999}`},
		{"trailing garbage", `{"Seed":1} {"Seed":2}`},
		{"not json", `seed=1`},
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST /run = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(`{"Configs":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty sweep = %d, want 400", resp.StatusCode)
	}
	getRun, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	getRun.Body.Close()
	if getRun.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run = %d, want 405", getRun.StatusCode)
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz = %d", health.StatusCode)
	}
}
