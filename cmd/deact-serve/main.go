// Command deact-serve exposes the simulator as a long-lived HTTP/JSON
// service in front of the persistent result store: repeat queries for a
// configuration are answered from disk without simulating, and misses are
// scheduled on the same experiments.Runner the batch commands use.
//
// Usage:
//
//	deact-serve -addr localhost:8371 -store .deact-store
//	curl -s localhost:8371/run -d '{"Benchmark":"mcf","Scheme":"deact-n"}'
//
// Endpoints:
//
//	POST /run                  one configuration → {Fingerprint, Cached, Result}
//	POST /sweep                {"Configs":[...]} → NDJSON, one line per config
//	                           in submission order, streamed as results land
//	GET  /result/{fingerprint} stored entry for a fingerprint (404 on miss)
//	GET  /healthz              liveness probe
//
// Request bodies are sparse configurations: absent fields keep the
// server's defaults (core.DefaultConfig overlaid with the -warmup,
// -measure, -cores and -seed flags), so `{}` runs the default system and
// `{"Scheme":"i-fam"}` changes exactly one knob. Unknown fields are
// rejected — a dropped field would simulate the wrong system under the
// wrong identity. Every response carries the configuration's fingerprint,
// the same identity the store, the Runner and the golden report use.
//
// Cached reports that the result was served from the -store directory
// without simulating. Cached or not, result bytes are identical — the
// store round-trips the canonical encoding exactly. Without -store the
// service still runs (and dedups in memory); it just recomputes across
// restarts and answers every /result lookup with 404.
//
// SIGINT/SIGTERM stop the listener, cancel in-flight simulations at the
// next event-loop stride and exit after the worker pool drains.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deact/internal/cli"
	"deact/internal/core"
	"deact/internal/experiments"
	"deact/internal/resultstore"
)

// maxRequestBytes bounds request bodies; the largest legitimate request —
// a full sweep of complete configs — is well under a megabyte.
const maxRequestBytes = 1 << 20

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "deact-serve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	addr := flag.String("addr", "localhost:8371", "listen address")
	scale := cli.ScaleFlags(flag.CommandLine, 80_000, 60_000, 2)
	runnerFlags := cli.RunnerFlags(flag.CommandLine)
	flag.Parse()

	opts, err := runnerFlags.Options(scale)
	if err != nil {
		return err
	}
	s := newServer(opts)
	srv := &http.Server{Addr: *addr, Handler: s.mux()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "deact-serve: listening on %s (store: %s)\n", *addr, storeLabel(runnerFlags.StoreDir))

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = srv.Shutdown(sctx) // stops the listener, waits for handlers
	s.runner.WaitIdle()
	return err
}

func storeLabel(dir string) string {
	if dir == "" {
		return "none"
	}
	return dir
}

// server answers the HTTP API from the store when it can and from the
// Runner when it must. base is the configuration sparse requests overlay.
type server struct {
	runner *experiments.Runner
	store  *resultstore.Store
	base   core.Config
}

// newServer builds the service from runner options: the same Options the
// batch commands assemble, including the opened store (may be nil).
func newServer(opts experiments.Options) *server {
	base := core.DefaultConfig()
	base.CoresPerNode = opts.Cores
	base.WarmupInstructions = opts.Warmup
	base.MeasureInstructions = opts.Measure
	base.Seed = opts.Seed
	return &server{runner: experiments.New(opts), store: opts.Store, base: base}
}

// mux routes the API.
func (s *server) mux() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /sweep", s.handleSweep)
	mux.HandleFunc("GET /result/{fingerprint}", s.handleResult)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// runResponse is one answered configuration — the /run response body and
// the /sweep line format.
type runResponse struct {
	// Fingerprint is the configuration's content address.
	Fingerprint string
	// Cached reports the result was served from the persistent store.
	Cached bool
	// Result is the simulation result; absent when Error is set.
	Result *core.Result `json:",omitempty"`
	// Error is the simulation failure, if any (sweep lines only; a /run
	// failure is an HTTP error instead).
	Error string `json:",omitempty"`
}

// config overlays one sparse request body on the server's base
// configuration and validates it.
func (s *server) config(raw []byte) (core.Config, error) {
	cfg := s.base
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return cfg, fmt.Errorf("config: %w", err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func (s *server) handleRun(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfg, err := s.config(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fp := cfg.Fingerprint()
	resp := runResponse{Fingerprint: fp}
	if s.store != nil {
		if e, ok := s.store.Lookup(fp); ok {
			resp.Cached, resp.Result = true, &e.Result
			writeJSON(w, resp)
			return
		}
	}
	res, err := s.runner.Run(req.Context(), cfg)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp.Result = &res
	writeJSON(w, resp)
}

// handleSweep validates every config up front (any bad one fails the whole
// request before work starts), submits them all to the Runner at once so
// distinct points overlap, and streams one NDJSON line per config in
// submission order as results land. A simulation failure becomes that
// line's Error field; the rest of the sweep keeps streaming.
func (s *server) handleSweep(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var sr struct{ Configs []json.RawMessage }
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(sr.Configs) == 0 {
		http.Error(w, "empty sweep: provide Configs", http.StatusBadRequest)
		return
	}
	cfgs := make([]core.Config, len(sr.Configs))
	for i, raw := range sr.Configs {
		cfg, err := s.config(raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("config %d: %v", i, err), http.StatusBadRequest)
			return
		}
		cfgs[i] = cfg
	}
	// Cached is decided before any run starts: entries a cold point of this
	// very sweep persists mid-request still count as computed, not cached.
	cached := make([]bool, len(cfgs))
	if s.store != nil {
		for i := range cfgs {
			_, cached[i] = s.store.Lookup(cfgs[i].Fingerprint())
		}
	}
	futures := make([]*experiments.Future, len(cfgs))
	for i := range cfgs {
		futures[i] = s.runner.Submit(req.Context(), cfgs[i])
	}
	// If the stream aborts mid-sweep (client disconnect), the unconsumed
	// futures must still detach: a future this handler never Waits would
	// otherwise keep its simulation attached forever, so queued points of an
	// abandoned sweep would all run to completion. Release is idempotent, so
	// double-detaching the ones Wait already released is free.
	defer func() {
		for _, f := range futures {
			f.Release()
		}
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i, f := range futures {
		res, err := f.Wait()
		line := runResponse{Fingerprint: cfgs[i].Fingerprint(), Cached: cached[i]}
		if err != nil {
			line.Error = err.Error()
		} else {
			line.Result = &res
		}
		if err := enc.Encode(line); err != nil {
			return // client went away; the deferred release detaches the rest
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *server) handleResult(w http.ResponseWriter, req *http.Request) {
	if s.store == nil {
		http.Error(w, "no result store configured (start with -store)", http.StatusNotFound)
		return
	}
	e, ok := s.store.Lookup(req.PathValue("fingerprint"))
	if !ok {
		http.Error(w, "unknown fingerprint", http.StatusNotFound)
		return
	}
	writeJSON(w, e)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
