// Package deact is a from-scratch Go reproduction of "DeACT:
// Architecture-Aware Virtual Memory Support for Fabric Attached Memory
// Systems" (Kommareddy, Hughes, Awad, Hammond — HPCA 2021).
//
// The library lives under internal/: a discrete-event architectural
// simulator (sim, memdev, cache, tlb, pagetable, cpu, fabric), the FAM
// system substrates the paper depends on (broker, acm, stu, translator,
// node), the assembled system and its four virtual-memory schemes (core),
// the synthetic Table III workload suite (workload), and the harness that
// regenerates every table and figure of the paper's evaluation
// (experiments).
//
// The experiment harness schedules its hundreds of independent simulations
// on a worker pool (experiments.Options.Parallelism; the cmds expose it as
// -parallelism, default GOMAXPROCS) with singleflight deduplication, so
// full-report regeneration scales with core count while staying
// byte-identical to serial execution at the same seed.
//
// The per-reference hot path is allocation-free in steady state: the sim
// engine stores events by value in an indexed 4-ary heap and offers a
// closure-free scheduling API (sim.Handler / Engine.ScheduleHandler) that
// self-rescheduling components like cpu.Core implement directly; resource
// calendars, page tables, ACM metadata and translation caches are all
// array-backed. One core.Run simulates roughly 8× faster than the
// pointer-heap/map-backed engine it replaced, with ~98% fewer allocations
// (see CHANGES.md for the measured trajectory; BenchmarkEngine and
// BenchmarkCoreRun are the guards).
//
// Entry points:
//
//   - cmd/deact-sim     — run one benchmark under one scheme
//   - cmd/deact-sweep   — run one sensitivity sweep (§V-D, -parallelism N)
//   - cmd/deact-report  — regenerate EXPERIMENTS.md (all tables/figures,
//     -parallelism N, -cpuprofile for the hot paths)
//   - examples/         — five runnable walkthroughs of the public API
//   - bench_test.go     — one testing.B benchmark per table and figure
//     (-short selects the CI smoke scale)
//
// CI (.github/workflows/ci.yml) runs go build, go vet, a gofmt check,
// go test -race, and a one-iteration -short -benchmem benchmark smoke
// (uploaded as a build artifact) on every push and pull request.
package deact
