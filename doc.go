// Package deact is a from-scratch Go reproduction of "DeACT:
// Architecture-Aware Virtual Memory Support for Fabric Attached Memory
// Systems" (Kommareddy, Hughes, Awad, Hammond — HPCA 2021).
//
// The library lives under internal/: a discrete-event architectural
// simulator (sim, memdev, cache, tlb, pagetable, cpu, fabric), the FAM
// system substrates the paper depends on (broker, acm, stu, translator,
// node), the assembled system and its four virtual-memory schemes (core),
// the synthetic Table III workload suite (workload), and the Runner that
// regenerates every table and figure of the paper's evaluation
// (experiments).
//
// Run orchestration is context-aware and identity-safe.
// core.Run(ctx, cfg, opts...) simulates one fully-built core.Config and
// observes cancellation cooperatively: the event loop runs in coarse
// simulated-time strides with a ctx check between them, so a SIGINT aborts
// a multi-minute report run in sub-second wall time without perturbing
// event order (results are byte-identical to an uncancelled drain). The
// construction/run surface is options-form: core.WithPool recycles
// construction memory, core.WithSnapshot forks a run from a warmup
// snapshot, core.WithWarmupHook observes the warmup/measure boundary. Run
// identity is core.Config.Fingerprint(): a canonical hash over every
// exported field (reflection-walked, so new fields cannot be silently
// omitted) after normalizing derived fields. experiments.Runner deduplicates on that
// fingerprint alone — callers Submit(ctx, cfg) and get a Future, or batch
// with RunAll(ctx, cfgs); identical configs share one simulation and
// distinct configs can never alias one cache slot the way hand-written
// string keys could. A deduplicated waiter that cancels unblocks with its
// own ctx.Err() while the shared computation keeps running for the
// remaining waiters; the last waiter detaching cancels it, and the worker
// pool stops admitting cancelled work. Options.OnRunDone streams
// completed/total progress (the cmds render it on stderr), and
// Config.Validate reports wrapped core.ErrInvalidConfig sentinel errors.
//
// The Runner schedules its hundreds of independent simulations on a
// worker pool (experiments.Options.Parallelism; the cmds expose it as
// -parallelism, default GOMAXPROCS), so full-report regeneration scales
// with core count while staying byte-identical to serial execution at the
// same seed.
//
// The per-reference hot path is allocation-free in steady state: the sim
// engine stores events by value in an indexed 4-ary heap and offers a
// closure-free scheduling API (sim.Handler / Engine.ScheduleHandler) that
// self-rescheduling components like cpu.Core implement directly; resource
// calendars, page tables, ACM metadata and translation caches are all
// array-backed. Cache replacement is exact LRU held in per-set rank words
// (one uint64 of 4-bit way indices at assoc ≤ 16, property-tested
// bit-identical to the per-way stamp fallback), so hit promotion and
// victim selection are constant-width bit operations. One core.Run
// simulates roughly 8× faster than the pointer-heap/map-backed engine it
// replaced, with ~98% fewer allocations (see CHANGES.md for the measured
// trajectory; BenchmarkEngine, BenchmarkCoreRun and BenchmarkCacheAccess
// are the guards).
//
// Construction memory is recycled: core.SystemPool (backed by
// internal/arena) hands the large zeroed arrays a System is built from —
// ACM chunk slabs, the broker owner table, translator lines, cache line
// arrays, page-table arenas, OS backing tables — from run to run,
// clearing instead of reallocating. The experiments Runner keeps one pool
// per worker slot, so a full report's hundreds of runs amortize
// construction down to the structures a config actually resizes; recycled
// runs are bit-identical to fresh ones (TestPooledRunMatchesUnpooled and
// the golden-report job hold this). The package-level Example in
// example_test.go is the compile-checked Runner tour.
//
// Warmup is shared across sweep points. core.System.Snapshot deep-copies
// all mutable simulation state at the warmup/measure boundary — the one
// quiescent point where the event queue is empty and every core has
// retired — and core.System.Restore rewinds a freshly built system to it,
// guarded by core.Config.WarmupFingerprint (the Fingerprint reflection
// walk minus MeasureInstructions, the only field that cannot shape warmup
// state). With experiments.Options.ShareWarmup (cmds: -share-warmup), the
// Runner groups distinct runs by warmup fingerprint: the first run of each
// group simulates the shared prefix once and publishes a snapshot from the
// boundary (while its own measured phase continues), every other run waits
// before taking a worker slot and forks from the snapshot, and a bounded
// LRU of snapshots recycles its storage through a dedicated SystemPool.
// Forked runs are bit-identical to cold runs (the randomized oracle test
// and a second golden-report CI pass with -share-warmup hold this);
// BenchmarkSnapshotFork measures the per-point saving — the measured phase
// alone instead of warmup+measure.
//
// Contention is modeled by a batched calendar engine (package sim): each
// memory-device bank, controller port and fabric link direction is a
// sim.Server whose in-order arrivals pay a tail compare and whose
// out-of-order arrivals book into a small gap calendar; sim.Resource keeps
// the general sorted-interval form for the STU port. Both retire state
// entirely in the simulated past against the engine clock (sim.Clock,
// wired by core.NewSystem) — exact, O(1)-amortized pruning that replaced
// the old lossy 512-entry calendar cap. Grants are bit-identical to the
// unpruned interval calendar (the sim package cross-checks them
// property-style), so reports at a fixed seed are byte-identical across
// the rewrite. BenchmarkMemdevAccess and BenchmarkFabricTraverse guard the
// device-level cost (~tens of ns and 0 allocs per access); the cache
// hierarchy adds a per-set MRU way cache so repeat hits skip the way scan.
//
// Entry points:
//
//   - cmd/deact-sim     — run one benchmark under one scheme (SIGINT
//     cancels cooperatively)
//   - cmd/deact-sweep   — run one sensitivity sweep (§V-D, -parallelism N,
//     -share-warmup, -cpuprofile/-memprofile, live progress on stderr)
//   - cmd/deact-report  — regenerate EXPERIMENTS.md (all tables/figures,
//     -parallelism N, -share-warmup, -cpuprofile/-memprofile, live
//     progress; a cancelled run exits nonzero and writes no partial
//     output)
//   - cmd/benchgate     — CI benchmark-regression gate (median time/op and
//     allocs/op budgets over `go test -bench` output)
//   - cmd/doccheck      — docs CI check (extracts fenced Go snippets from
//     the markdown docs and vets them; verifies relative links)
//   - examples/         — five runnable walkthroughs; quickstart tours the
//     Runner API (Submit, futures, OnRunDone progress)
//   - bench_test.go     — one testing.B benchmark per table and figure
//     (-short selects the CI smoke scale)
//
// CI (.github/workflows/ci.yml) runs go build, go vet, staticcheck (SA
// checks, pinned), a gofmt check, go test -race, an examples smoke run
// (quickstart at tiny scale, so API drift in the walkthroughs fails PRs),
// a docs job (cmd/doccheck over README.md/ARCHITECTURE.md/ROADMAP.md/
// CHANGES.md), a one-iteration -short -benchmem benchmark smoke (uploaded
// as a build artifact), a benchmark-regression gate that reruns
// BenchmarkEngine/BenchmarkCoreRun on the PR base and fails on >20%
// median time/op or any allocs/op growth (cmd/benchgate; benchstat
// renders the human-readable delta), and a golden-report determinism job
// that diffs a short-scale cmd/deact-report run against
// testdata/golden-report-short.md — twice: once cold and once with
// -share-warmup, so snapshot forking is held byte-identical on every push.
//
// README.md is the quickstart (the three cmds, the local smoke tier, the
// golden-file regeneration recipe); ARCHITECTURE.md maps the paper's
// pipeline onto the packages and walks the config → fingerprint → Runner
// → System → engine → stats → report dataflow.
package deact
