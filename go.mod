module deact

go 1.22
