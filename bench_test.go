// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus micro-benchmarks of the hot simulator paths.
//
//	go test -bench=. -benchmem
//
// Each figure benchmark regenerates the corresponding rows/series through
// internal/experiments and reports a headline figure metric via
// b.ReportMetric, so `go test -bench=Figure12` is the programmatic
// equivalent of re-plotting the paper's Figure 12.
package deact_test

import (
	"context"
	"testing"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/broker"
	"deact/internal/cache"
	"deact/internal/core"
	"deact/internal/experiments"
	"deact/internal/memdev"
	"deact/internal/sim"
	"deact/internal/stats"
	"deact/internal/tlb"
	"deact/internal/workload"
)

// benchOptions keeps figure benchmarks affordable on one machine while
// still running every benchmark and scheme the figure needs. Simulations
// run concurrently on the Runner worker pool (Parallelism 0 =
// GOMAXPROCS). Under -short (the CI smoke tier) the instruction budgets
// and benchmark list shrink so `-bench=. -benchtime=1x -short` finishes in
// seconds instead of paper-scale minutes.
func benchOptions() experiments.Options {
	o := experiments.Options{Warmup: 30_000, Measure: 25_000, Cores: 1, Seed: 42}
	if testing.Short() {
		o.Warmup, o.Measure = 4_000, 4_000
		o.Benchmarks = []string{"mcf", "canl", "sp", "dc"}
	}
	return o
}

// sweepOptions trims the benchmark list for the many-point sweeps the same
// way one would trim SST runs: both sensitivity classes stay represented.
func sweepOptions() experiments.Options {
	o := benchOptions()
	o.Benchmarks = []string{"mcf", "canl", "sssp", "bc", "pf", "dc"}
	if testing.Short() {
		o.Benchmarks = []string{"canl", "dc"}
	}
	return o
}

func reportSeries(b *testing.B, t stats.Table) {
	b.Helper()
	if len(t.Series) == 0 || len(t.Series[0].Values) == 0 {
		b.Fatal("empty series")
	}
	last := t.Series[len(t.Series)-1]
	b.ReportMetric(last.Values[len(last.Values)-1], "last_value")
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.TableI() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.TableII() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		t, err := h.TableIII(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		t, err := h.Figure3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		t, err := h.Figure4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		t, err := h.Figure9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		t, err := h.Figure10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		t, err := h.Figure11(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(benchOptions())
		t, err := h.Figure12(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(sweepOptions())
		t, err := h.Figure13(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkAssociativitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(sweepOptions())
		t, err := h.AssociativitySweep(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(sweepOptions())
		t, err := h.Figure14(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkPairsPerWaySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(sweepOptions())
		t, err := h.PairsPerWaySweep(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := experiments.New(sweepOptions())
		t, err := h.Figure15(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := sweepOptions()
		if !testing.Short() {
			o.Warmup, o.Measure = 15_000, 15_000
		}
		h := experiments.New(o)
		t, err := h.Figure16(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reportSeries(b, t)
	}
}

// ——— micro-benchmarks of the hot simulator paths ———

func BenchmarkSimEngine(b *testing.B) {
	e := sim.NewEngine()
	var fn func(now sim.Time)
	count := 0
	fn = func(now sim.Time) {
		count++
		if count < b.N {
			e.After(1, fn)
		}
	}
	b.ResetTimer()
	e.Schedule(0, fn)
	e.Run(0)
}

// BenchmarkCacheHierarchyAccess streams through the full three-level
// hierarchy; the per-level hit/miss/eviction mixes live in
// internal/cache's BenchmarkCacheAccess.
func BenchmarkCacheHierarchyAccess(b *testing.B) {
	h, err := cache.NewHierarchy(cache.HierarchyConfig{
		Cores: 1, L1Size: 8 << 10, L1Ways: 8, L2Size: 64 << 10, L2Ways: 8,
		L3Size: 256 << 10, L3Ways: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, uint64(i*64)%(1<<22), i%4 == 0)
	}
}

func BenchmarkTLBLookup(b *testing.B) {
	m, err := tlb.NewMMU("bench", tlb.MMUConfig{L1Entries: 32, L1Ways: 4, L2Entries: 256, L2Ways: 8, PTWEntries: 32})
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < 512; i++ {
		m.Insert(i, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(uint64(i) % 512)
	}
}

func BenchmarkBrokerAllocate(b *testing.B) {
	l := addr.Layout{DRAMSize: 64 << 20, FAMZoneSize: 448 << 20, FAMSize: 1 << 30, ACMBits: 16}
	brk, err := broker.New(l, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := brk.AllocatePage(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := brk.FreePage(1, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkACMCheck(b *testing.B) {
	l := addr.Layout{DRAMSize: 64 << 20, FAMZoneSize: 448 << 20, FAMSize: 1 << 30, ACMBits: 16}
	s := acm.NewStore(l)
	for p := addr.FPage(0); p < 4096; p++ {
		s.Set(p, acm.Entry{Owner: uint16(p) % 63, Perm: acm.PermRWX})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Check(addr.FPage(i)%4096, uint16(i)%63, acm.PermR)
	}
}

func BenchmarkMemDevAccess(b *testing.B) {
	d := memdev.New(memdev.Config{Name: "bench", Banks: 32,
		ReadLatency: sim.NS(60), WriteLatency: sim.NS(150), PortLatency: sim.NS(2)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(sim.Time(i)*100, uint64(i)*64, i%4 == 0)
	}
}

// BenchmarkEndToEnd measures whole-system simulation throughput
// (instructions simulated per wall second) for each scheme.
func BenchmarkEndToEnd(b *testing.B) {
	measure := uint64(50_000)
	if testing.Short() {
		measure = 10_000
	}
	for _, scheme := range core.Schemes() {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Scheme = scheme
				cfg.Benchmark = "mcf"
				cfg.CoresPerNode = 1
				cfg.WarmupInstructions = 0
				cfg.MeasureInstructions = measure
				r, err := core.Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.IPC, "sim_ipc")
			}
		})
	}
}

func BenchmarkWorkloadGen(b *testing.B) {
	g, err := workload.NewGenerator(workload.Catalog()["sssp"], 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
