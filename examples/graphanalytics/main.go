// Graph analytics on fabric-attached memory: the paper's motivating HPC
// use case. GAP benchmarks (bc, cc, ccsv, sssp) have enormous, irregular
// working sets — exactly the workloads whose address-translation traffic
// explodes under I-FAM indirection (Figures 3 and 4) and that DeACT was
// designed to rescue.
//
// The I-FAM/DeACT-N pair for every GAP benchmark is submitted to the
// Runner as one batch, so the whole comparison overlaps on the worker
// pool.
package main

import (
	"context"
	"fmt"
	"log"

	"deact/internal/core"
	"deact/internal/experiments"
	"deact/internal/workload"
)

func main() {
	fmt.Println("Graph analytics over FAM: I-FAM (secure baseline) vs DeACT-N")
	fmt.Println()
	fmt.Printf("%-6s  %6s  %12s  %12s  %14s  %12s\n",
		"bench", "MPKI", "I-FAM AT%", "DeACT AT%", "DeACT speedup", "blocked ops")

	// Scale lives on the configs below; Options only tunes the pool here.
	gap := workload.Suites()["GAP"]
	runner := experiments.New(experiments.Options{})
	var cfgs []core.Config
	for _, bench := range gap {
		for _, scheme := range []core.Scheme{core.IFAM, core.DeACTN} {
			cfg := core.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Benchmark = bench
			cfg.CoresPerNode = 2
			cfg.WarmupInstructions = 60_000
			cfg.MeasureInstructions = 40_000
			cfgs = append(cfgs, cfg)
		}
	}
	res, err := runner.RunAll(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	for i, bench := range gap {
		rI, rN := res[2*i], res[2*i+1]
		blockedPct := 0.0
		if rN.MemOps > 0 {
			// Pointer chases (dependent loads) cannot hide translation
			// latency — the structural reason graph codes suffer most.
			blockedPct = float64(rN.FAMData) / float64(rN.MemOps) * 100
		}
		fmt.Printf("%-6s  %6.0f  %11.1f%%  %11.1f%%  %13.2fx  %11.1f%%\n",
			bench, rN.MPKI, rI.ATFraction*100, rN.ATFraction*100,
			rN.Speedup(rI), blockedPct)
	}

	fmt.Println()
	fmt.Println("Reading: DeACT-N removes most translation requests from the fabric")
	fmt.Println("(AT% column) by caching unverified translations in node-local DRAM,")
	fmt.Println("while the STU still vets every access against FAM-resident metadata.")
}
