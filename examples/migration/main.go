// Job migration (§VI): hybrid cloud systems move jobs between nodes. With
// DeACT the system-level state that must move is (a) the ACM ownership of
// every page the job holds in FAM, (b) the job's FAM page table, and (c)
// the node-side caches — TLBs, the unverified FAM translation cache in
// DRAM, and the STU's ACM cache — which must all be shot down.
//
// This example runs a job on node 1, migrates it to node 9, and accounts
// for the §VI costs: ACM rewrites in global memory and the DRAM writes
// needed to invalidate the in-memory translation cache. It then verifies
// the security outcome: the old node is denied, the new node is allowed.
package main

import (
	"context"
	"fmt"
	"log"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/core"
	"deact/internal/sim"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Scheme = core.DeACTN
	cfg.Benchmark = "dc"
	cfg.Nodes = 1
	cfg.CoresPerNode = 1
	cfg.WarmupInstructions = 0
	cfg.MeasureInstructions = 40_000

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	brk := sys.Broker()

	fmt.Println("Before migration:")
	fmt.Printf("  node 1 owns %d FAM pages, node 9 owns %d\n",
		brk.OwnedPages(1), brk.OwnedPages(9))

	// Grab one page the job owns so we can check access control afterwards.
	tbl, err := brk.NodeTable(1)
	if err != nil {
		log.Fatal(err)
	}
	var sample addr.FPage
	found := false
	for np := uint64(0); np < 0x100000 && !found; np++ {
		if fp, ok := tbl.Lookup(np); ok {
			sample, found = addr.FPage(fp), true
		}
	}
	if !found {
		log.Fatal("job owns no FAM pages")
	}

	// 1. Node-side shootdown: TLBs, PTW caches, translation cache, STU.
	dirtyLines := sys.Node(0).FlushTranslations()

	// 2. System-side move: rewrite ACM ownership, re-home the FAM table.
	cost, err := brk.MigrateJob(1, 9)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nMigration node 1 → node 9:")
	fmt.Printf("  ACM entries rewritten in FAM:   %d\n", cost.ACMRewrites)
	fmt.Printf("  system translations moved:      %d\n", cost.TranslationsMoved)
	fmt.Printf("  dirty translation-cache lines:  %d (DRAM writes to invalidate)\n", dirtyLines)

	// Convert the bookkeeping to time the way §VI describes: one FAM write
	// per ACM rewrite, one DRAM write per invalidated line.
	famWrite := sim.NS(150 + 2*500) // NVM write + fabric round trip
	dramWrite := sim.NS(60)
	downtime := sim.Time(cost.ACMRewrites)*famWrite + sim.Time(dirtyLines)*dramWrite
	fmt.Printf("  estimated shootdown cost:       %.2f µs\n",
		float64(downtime)/float64(sim.Microsecond))

	fmt.Println("\nAfter migration:")
	fmt.Printf("  node 1 owns %d FAM pages, node 9 owns %d\n",
		brk.OwnedPages(1), brk.OwnedPages(9))

	oldRead := brk.Meta().Check(sample, 1, acm.PermR)
	newRead := brk.Meta().Check(sample, 9, acm.PermR)
	fmt.Printf("\naccess to migrated page %#x:\n", uint64(sample))
	fmt.Printf("  old node 1: allowed=%v (%s)\n", oldRead.Allowed, oldRead.DeniedReason)
	fmt.Printf("  new node 9: allowed=%v\n", newRead.Allowed)
	if oldRead.Allowed || !newRead.Allowed {
		log.Fatal("migration broke access control")
	}
	fmt.Println("\nWith logical node IDs (§VI) the ACM rewrites disappear: only the")
	fmt.Println("logical→physical node binding changes at the resource manager.")
}
