// Multi-node scaling (Figure 16): several compute nodes share one fabric
// and one FAM pool. Contention at the shared link and at the FAM banks
// inflates every translation round trip, so I-FAM's page-table walks get
// progressively more expensive — and DeACT's advantage grows with scale.
//
// This example runs the dc benchmark on 1, 2, 4 and 8 nodes under I-FAM
// and DeACT-N and prints the speedup curve. The whole grid goes to the
// Runner as one RunAll batch, so the eight simulations overlap on the
// worker pool instead of running back to back.
package main

import (
	"context"
	"fmt"
	"log"

	"deact/internal/core"
	"deact/internal/experiments"
)

func main() {
	const bench = "dc"
	fmt.Printf("Scaling %s across nodes sharing one Gen-Z-like fabric\n\n", bench)
	fmt.Printf("%5s  %12s  %12s  %14s  %16s\n",
		"nodes", "I-FAM IPC", "DeACT IPC", "DeACT speedup", "fabric packets")

	// Scale lives on the configs below; Options only tunes the pool here.
	counts := []int{1, 2, 4, 8}
	runner := experiments.New(experiments.Options{})
	var cfgs []core.Config
	for _, nodes := range counts {
		for _, scheme := range []core.Scheme{core.IFAM, core.DeACTN} {
			cfg := core.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Benchmark = bench
			cfg.Nodes = nodes
			cfg.CoresPerNode = 1
			cfg.WarmupInstructions = 30_000
			cfg.MeasureInstructions = 25_000
			cfgs = append(cfgs, cfg)
		}
	}
	res, err := runner.RunAll(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	for i, nodes := range counts {
		rI, rN := res[2*i], res[2*i+1]
		fmt.Printf("%5d  %12.4f  %12.4f  %13.2fx  %16d\n",
			nodes, rI.IPC, rN.IPC, rN.Speedup(rI), rI.FabricPackets)
	}

	fmt.Println("\nReading: per-node IPC drops as the fabric saturates, but it drops")
	fmt.Println("faster for I-FAM because every page-table walk crosses the shared")
	fmt.Println("link four times; DeACT keeps translations in node-local DRAM.")
}
