// Multi-node scaling (Figure 16): several compute nodes share one fabric
// and one FAM pool. Contention at the shared link and at the FAM banks
// inflates every translation round trip, so I-FAM's page-table walks get
// progressively more expensive — and DeACT's advantage grows with scale.
//
// This example runs a steady benchmark on 1, 2, 4 and 8 nodes under I-FAM
// and DeACT-N and prints the speedup curve. With -tenants N (N ≥ 2) every
// node also hosts a noisy neighbor: tenant 0 runs the -noisy workload while
// the other tenants keep the steady one, and two extra columns report the
// steady tenants' and the noisy tenant's p99 FAM access latency — the
// noisy-neighbor tax each scheme passes on to well-behaved tenants.
//
// The whole grid goes to the Runner as one RunAll batch, so the
// simulations overlap on the worker pool instead of running back to back.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"deact/internal/core"
	"deact/internal/experiments"
	"deact/internal/sim"
)

func main() {
	var (
		bench   = flag.String("bench", "dc", "steady benchmark to scale")
		warmup  = flag.Uint64("warmup", 30_000, "warmup instructions per core (instruction count, not cycles)")
		measure = flag.Uint64("measure", 25_000, "measured instructions per core (instruction count, not cycles)")
		tenants = flag.Int("tenants", 1, "tenants per deployment; ≥2 adds a noisy neighbor (tenant 0) and per-tenant p99 columns")
		noisy   = flag.String("noisy", "canl", "benchmark the noisy tenant 0 runs (only with -tenants ≥ 2)")
	)
	flag.Parse()

	multi := *tenants >= 2
	if multi {
		fmt.Printf("Scaling %s across nodes sharing one Gen-Z-like fabric (%d tenants, tenant 0 runs %s)\n\n",
			*bench, *tenants, *noisy)
		fmt.Printf("%5s  %12s  %12s  %14s  %18s  %18s\n",
			"nodes", "I-FAM IPC", "DeACT IPC", "DeACT speedup", "steady p99 N/I", "noisy p99 N/I")
	} else {
		fmt.Printf("Scaling %s across nodes sharing one Gen-Z-like fabric\n\n", *bench)
		fmt.Printf("%5s  %12s  %12s  %14s  %16s\n",
			"nodes", "I-FAM IPC", "DeACT IPC", "DeACT speedup", "fabric packets")
	}

	// Scale lives on the configs below; Options only tunes the pool here.
	// Every node hosts one core per tenant, so each deployment size carries
	// the full tenant mix (and the single-tenant shape stays the classic
	// one-core-per-node Figure 16 setup).
	counts := []int{1, 2, 4, 8}
	runner := experiments.New(experiments.Options{})
	var cfgs []core.Config
	for _, nodes := range counts {
		for _, scheme := range []core.Scheme{core.IFAM, core.DeACTN} {
			cfg := core.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Benchmark = *bench
			cfg.Nodes = nodes
			cfg.CoresPerNode = 1
			cfg.WarmupInstructions = *warmup
			cfg.MeasureInstructions = *measure
			if multi {
				cfg.CoresPerNode = *tenants
				cfg.Tenants = *tenants
				cfg.NoisyBenchmark = *noisy
			}
			cfgs = append(cfgs, cfg)
		}
	}
	res, err := runner.RunAll(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}
	const us = float64(sim.Microsecond) // histogram samples are picoseconds
	for i, nodes := range counts {
		rI, rN := res[2*i], res[2*i+1]
		if multi {
			stI, stN := rI.SteadyLatency(*tenants), rN.SteadyLatency(*tenants)
			nzI, nzN := rI.TenantLatency(0), rN.TenantLatency(0)
			fmt.Printf("%5d  %12.4f  %12.4f  %13.2fx  %7.2f /%7.2fus  %7.2f /%7.2fus\n",
				nodes, rI.IPC, rN.IPC, rN.Speedup(rI),
				stN.FAM.P99()/us, stI.FAM.P99()/us,
				nzN.FAM.P99()/us, nzI.FAM.P99()/us)
		} else {
			fmt.Printf("%5d  %12.4f  %12.4f  %13.2fx  %16d\n",
				nodes, rI.IPC, rN.IPC, rN.Speedup(rI), rI.FabricPackets)
		}
	}

	fmt.Println("\nReading: per-node IPC drops as the fabric saturates, but it drops")
	fmt.Println("faster for I-FAM because every page-table walk crosses the shared")
	fmt.Println("link four times; DeACT keeps translations in node-local DRAM.")
	if multi {
		fmt.Println("The p99 columns (DeACT-N / I-FAM) show where that shows up for")
		fmt.Println("tenants: the noisy neighbor inflates I-FAM's steady-tenant tail")
		fmt.Println("far more, because its translations queue on the shared fabric.")
	}
}
