// Multi-node scaling (Figure 16): several compute nodes share one fabric
// and one FAM pool. Contention at the shared link and at the FAM banks
// inflates every translation round trip, so I-FAM's page-table walks get
// progressively more expensive — and DeACT's advantage grows with scale.
//
// This example runs the dc benchmark on 1, 2, 4 and 8 nodes under I-FAM
// and DeACT-N and prints the speedup curve.
package main

import (
	"fmt"
	"log"

	"deact/internal/core"
)

func main() {
	const bench = "dc"
	fmt.Printf("Scaling %s across nodes sharing one Gen-Z-like fabric\n\n", bench)
	fmt.Printf("%5s  %12s  %12s  %14s  %16s\n",
		"nodes", "I-FAM IPC", "DeACT IPC", "DeACT speedup", "fabric packets")

	for _, nodes := range []int{1, 2, 4, 8} {
		run := func(scheme core.Scheme) core.Result {
			cfg := core.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Benchmark = bench
			cfg.Nodes = nodes
			cfg.CoresPerNode = 1
			cfg.WarmupInstructions = 30_000
			cfg.MeasureInstructions = 25_000
			r, err := core.Run(cfg)
			if err != nil {
				log.Fatalf("%d nodes under %v: %v", nodes, scheme, err)
			}
			return r
		}
		rI := run(core.IFAM)
		rN := run(core.DeACTN)
		fmt.Printf("%5d  %12.4f  %12.4f  %13.2fx  %16d\n",
			nodes, rI.IPC, rN.IPC, rN.Speedup(rI), rI.FabricPackets)
	}

	fmt.Println("\nReading: per-node IPC drops as the fabric saturates, but it drops")
	fmt.Println("faster for I-FAM because every page-table walk crosses the shared")
	fmt.Println("link four times; DeACT keeps translations in node-local DRAM.")
}
