// Quickstart: run one memory-intensive benchmark under all four FAM
// virtual-memory schemes and compare them the way the paper's Figure 12
// does — performance normalized to the insecure E-FAM upper bound.
//
// This is also the Runner API tour: build core.Config values, Submit them
// (identical configs deduplicate by Config.Fingerprint()), watch progress
// through Options.OnRunDone, and wait on the returned futures. Ctrl-C
// cancels the in-flight simulations gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"deact/internal/core"
	"deact/internal/experiments"
)

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark to run")
		warmup  = flag.Uint64("warmup", 60_000, "warmup instructions per core")
		measure = flag.Uint64("measure", 50_000, "measured instructions per core")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("DeACT quickstart — %s on a scaled Table II system\n\n", *bench)

	// The Runner schedules simulations on a worker pool (default:
	// GOMAXPROCS) and reports progress as each distinct run completes.
	// Scale lives on the configs below; Options only wires the hook here.
	// ShareWarmup simulates each distinct warmup prefix once and forks the
	// measured phases from a snapshot of it — free here (each scheme warms
	// up differently, so every group has one member), a large wall-clock
	// win when sweep points differ only in measured length.
	runner := experiments.New(experiments.Options{
		ShareWarmup: true,
		OnRunDone: func(ri experiments.RunInfo) {
			fmt.Fprintf(os.Stderr, "\rsimulated %d/%d", ri.Completed, ri.Submitted)
		},
	})
	defer runner.WaitIdle()

	// Submit all four schemes at once; the futures resolve as the pool
	// drains. Run identity is the config fingerprint — submitting the same
	// config twice would share one simulation.
	futures := map[core.Scheme]*experiments.Future{}
	for _, scheme := range core.Schemes() {
		cfg := core.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Benchmark = *bench
		cfg.CoresPerNode = 2
		cfg.WarmupInstructions = *warmup
		cfg.MeasureInstructions = *measure
		futures[scheme] = runner.Submit(ctx, cfg)
	}
	results := map[core.Scheme]core.Result{}
	for scheme, fut := range futures {
		r, err := fut.Wait()
		if err != nil {
			log.Fatalf("\n%v: %v", scheme, err)
		}
		results[scheme] = r
	}
	fmt.Fprintln(os.Stderr)

	base := results[core.EFAM]
	fmt.Printf("%-8s  %8s  %12s  %10s  %10s  %10s\n",
		"scheme", "IPC", "vs E-FAM", "AT@FAM", "xlate-hit", "acm-hit")
	for _, scheme := range core.Schemes() {
		r := results[scheme]
		fmt.Printf("%-8s  %8.4f  %11.2fx  %9.1f%%  %9.1f%%  %9.1f%%\n",
			scheme, r.IPC, r.Speedup(base), r.ATFraction*100,
			r.TranslationHitRate*100, r.ACMHitRate*100)
	}

	n := results[core.DeACTN]
	i := results[core.IFAM]
	fmt.Printf("\nDeACT-N speeds up the secure baseline (I-FAM) by %.2fx on %s\n",
		n.Speedup(i), *bench)
	fmt.Println("while keeping system-level access control (unlike E-FAM).")
}
