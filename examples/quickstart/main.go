// Quickstart: run one memory-intensive benchmark under all four FAM
// virtual-memory schemes and compare them the way the paper's Figure 12
// does — performance normalized to the insecure E-FAM upper bound.
package main

import (
	"fmt"
	"log"

	"deact/internal/core"
)

func main() {
	const bench = "mcf"

	fmt.Printf("DeACT quickstart — %s on a scaled Table II system\n\n", bench)

	results := map[core.Scheme]core.Result{}
	for _, scheme := range core.Schemes() {
		cfg := core.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Benchmark = bench
		cfg.CoresPerNode = 2
		cfg.WarmupInstructions = 60_000
		cfg.MeasureInstructions = 50_000

		r, err := core.Run(cfg)
		if err != nil {
			log.Fatalf("%v: %v", scheme, err)
		}
		results[scheme] = r
	}

	base := results[core.EFAM]
	fmt.Printf("%-8s  %8s  %12s  %10s  %10s  %10s\n",
		"scheme", "IPC", "vs E-FAM", "AT@FAM", "xlate-hit", "acm-hit")
	for _, scheme := range core.Schemes() {
		r := results[scheme]
		fmt.Printf("%-8s  %8.4f  %11.2fx  %9.1f%%  %9.1f%%  %9.1f%%\n",
			scheme, r.IPC, r.Speedup(base), r.ATFraction*100,
			r.TranslationHitRate*100, r.ACMHitRate*100)
	}

	n := results[core.DeACTN]
	i := results[core.IFAM]
	fmt.Printf("\nDeACT-N speeds up the secure baseline (I-FAM) by %.2fx on %s\n",
		n.Speedup(i), bench)
	fmt.Println("while keeping system-level access control (unlike E-FAM).")
}
