// Shared pages: FAM's headline capability is letting multiple nodes share
// physical memory, and §III-A/§VI of the paper define how access control
// works for it — 1GB shared regions whose per-node rights live in a 64K-bit
// bitmap in FAM, with the per-page metadata carrying the all-ones "shared"
// marker.
//
// This example builds a two-node DeACT system, publishes a shared region
// with mixed permissions (node 1: read-write, node 2: read-only), and shows
// the STU enforcing exactly that policy — including the bitmap-fetch
// traffic the checks cost.
package main

import (
	"fmt"
	"log"

	"deact/internal/acm"
	"deact/internal/addr"
	"deact/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Scheme = core.DeACTN
	cfg.Benchmark = "pf"
	cfg.Nodes = 2
	cfg.CoresPerNode = 1
	// Shared regions are fixed at 1GB (§III-A), so give the pool room for
	// one: the scaled default pool is exactly 1GB and the metadata carve-out
	// leaves no whole region free.
	cfg.Layout.FAMSize = 4 << 30

	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	brk := sys.Broker()

	// The broker (Opal's role) carves a shared 1GB region. Default
	// permission applies to nobody until a grant lands in the bitmap.
	huge, err := brk.AllocateSharedRegion(acm.PermR)
	if err != nil {
		log.Fatal(err)
	}
	brk.Grant(huge, 1, acm.PermRW) // node 1 may read and write
	brk.Grant(huge, 2, acm.PermR)  // node 2 may only read
	fmt.Printf("shared 1GB region #%d: node 1 rw--, node 2 r---, node 3 ----\n\n", huge)

	// Both nodes map the same shared page into their FAM page tables.
	page1, err := brk.SharedPageFor(1, 0x40000, huge, 7)
	if err != nil {
		log.Fatal(err)
	}
	page2, err := brk.SharedPageFor(2, 0x50000, huge, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 1 NP page 0x40000 and node 2 NP page 0x50000 → same FAM page %#x\n\n", page1)
	if page1 != page2 {
		log.Fatal("shared mapping broken")
	}

	// Exercise the STUs directly: this is the verification step every FAM
	// access takes in DeACT (Figure 6, step 3).
	type attempt struct {
		node int
		want acm.Perm
		desc string
	}
	attempts := []attempt{
		{0, acm.PermR, "node 1 read"},
		{0, acm.PermRW, "node 1 write"},
		{1, acm.PermR, "node 2 read"},
		{1, acm.PermRW, "node 2 write (should be denied)"},
	}
	for _, a := range attempts {
		stu := sys.Node(a.node).STU()
		_, d := stu.VerifyMapped(0, page1, a.want)
		verdict := "ALLOWED"
		if !d.Allowed {
			verdict = "DENIED "
		}
		fmt.Printf("%s  %-32s shared=%v bitmap-fetch=%v\n", verdict, a.desc, d.Shared, d.BitmapFetch)
	}

	// A third party that was never granted access gets nothing, even for
	// reads — the bitmap is authoritative.
	fmt.Println()
	if _, err := brk.NodeTable(3); err != nil {
		log.Fatal(err)
	}
	st := sys.Node(0).STU() // reuse node 1's STU config against node 3's ID via broker policy
	_ = st
	dec := brk.Meta().Check(page1, 3, acm.PermR)
	fmt.Printf("node 3 read: allowed=%v (%s)\n", dec.Allowed, dec.DeniedReason)

	// Revocation takes effect immediately at the metadata store.
	brk.Revoke(huge, 2)
	dec = brk.Meta().Check(page1, 2, acm.PermR)
	fmt.Printf("after revoke, node 2 read: allowed=%v\n", dec.Allowed)

	s := sys.Node(0).STU().Stats()
	fmt.Printf("\nnode 1 STU: %d bitmap fetches, %d denials recorded\n", s.BitmapFetches, s.Denied)
	fmt.Println("\nEvery shared-page check cost one 64B bitmap-block fetch from the FAM")
	fmt.Printf("metadata region at %#x — the overhead §III-A budgets at <0.0001%%.\n",
		uint64(cfg.Layout.BitmapBlockAddr(huge, 1)))
	_ = addr.PageSize
}
