package deact_test

import (
	"context"
	"fmt"
	"os"

	"deact/internal/core"
	"deact/internal/experiments"
)

// Example is the Runner tour the package documentation describes: build
// fully-specified core.Config values, submit them (identity and
// deduplication come from Config.Fingerprint()), stream progress through
// Options.OnRunDone, and wait on the futures. It compiles against the
// current experiments.Options and core.Config fields, so the documented
// API cannot drift from the real one. (No Output comment: a simulation
// at documentation scale is deliberately not run on every test
// invocation; examples/quickstart is the runnable version, executed by
// the CI examples-smoke step.)
func Example() {
	ctx := context.Background()
	runner := experiments.New(experiments.Options{
		Warmup:      80_000, // per-core instructions before measurement
		Measure:     60_000, // per-core measured instructions
		Cores:       2,      // cores per node
		Seed:        42,     // drives all randomness, end to end
		Parallelism: 0,      // worker-pool slots; 0 = GOMAXPROCS, 1 = serial
		ShareWarmup: true,   // fork measured phases from shared warmup snapshots
		OnRunDone: func(ri experiments.RunInfo) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", ri.Completed, ri.Submitted)
		},
	})
	defer runner.WaitIdle()

	// Submit both schemes at once; equal fingerprints would share one
	// simulation, and each worker slot recycles construction memory
	// (core.SystemPool) across the runs it executes.
	var futures []*experiments.Future
	for _, scheme := range []core.Scheme{core.IFAM, core.DeACTN} {
		cfg := core.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Benchmark = "mcf"
		futures = append(futures, runner.Submit(ctx, cfg))
	}
	var results []core.Result
	for _, fut := range futures {
		r, err := fut.Wait() // returns this waiter's ctx.Err() if cancelled
		if err != nil {
			panic(err)
		}
		results = append(results, r)
	}
	fmt.Printf("DeACT-N speedup over I-FAM: %.2fx\n", results[1].Speedup(results[0]))
}
